//! The MASQUE two-hop session model (§2).
//!
//! iCloud Private Relay establishes a QUIC connection to the ingress,
//! authenticates with per-user tokens ("a limited number of issued tokens
//! to access the service per user and day" — the fraud-prevention measure
//! §2 mentions), then proxies an HTTP/3 `CONNECT` through the ingress to
//! the egress, which opens the real connection to the target. When QUIC
//! fails (UDP-hostile networks), the client falls back to HTTP/2 over
//! TLS 1.3/TCP via `mask-h2.icloud.com`.
//!
//! The model is wire-honest where the paper's analysis touches the wire
//! (the CONNECT framing crosses the simplified HTTP/3 codec) and
//! *visibility-honest* everywhere: each hop's view is an explicit struct,
//! so the privacy invariants — ingress never learns the target, egress
//! never learns the client — are type-checked and tested rather than
//! asserted in prose.

use std::net::IpAddr;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use tectonic_geo::geohash;
use tectonic_net::SimTime;
use tectonic_quic::h3::{self, FrameType, Headers};

use crate::egress::EgressSelection;

/// Which transport carried the session.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Transport {
    /// QUIC / HTTP-3 via `mask.icloud.com`.
    Quic,
    /// The TCP / TLS 1.3 / HTTP-2 fallback via `mask-h2.icloud.com`.
    TcpFallback,
}

/// A per-user access token (opaque to the relays beyond validity).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct AccessToken {
    /// Blinded user identifier (the issuer knows it; relays cannot link it).
    pub user: u64,
    /// Day the token is valid for (days since the epoch).
    pub day: u64,
    /// Serial within the day's budget.
    pub serial: u32,
}

/// Errors from token issuance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokenError {
    /// The user exhausted the daily budget (§2's fraud prevention).
    DailyBudgetExhausted,
}

impl std::fmt::Display for TokenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenError::DailyBudgetExhausted => write!(f, "daily token budget exhausted"),
        }
    }
}

impl std::error::Error for TokenError {}

/// Milliseconds per token-validity day.
const DAY_MS: u64 = 86_400_000;

/// Per-day issuance ledger; entries for past days are pruned when the day
/// rolls over so the map stays bounded across `SimTime` rollover.
#[derive(Debug, Default)]
struct IssuerLedger {
    /// The most recent day the issuer has seen.
    latest_day: u64,
    /// Tokens issued per `(user, day)`; only days `>= latest_day` survive.
    counts: std::collections::HashMap<(u64, u64), u32>,
}

/// Issues a bounded number of tokens per user and day.
#[derive(Debug)]
pub struct TokenIssuer {
    per_day: u32,
    ledger: Mutex<IssuerLedger>,
}

impl TokenIssuer {
    /// An issuer with the given per-user daily budget.
    pub fn new(per_day: u32) -> TokenIssuer {
        TokenIssuer {
            per_day,
            ledger: Mutex::new(IssuerLedger::default()),
        }
    }

    /// The per-user daily budget.
    pub fn per_day(&self) -> u32 {
        self.per_day
    }

    /// Issues a token for `user` at `now`, or fails when the budget is
    /// spent. When the day advances, budgets reset and the ledger drops
    /// entries from past days — tokens from those days are already invalid.
    pub fn issue(&self, user: u64, now: SimTime) -> Result<AccessToken, TokenError> {
        let day = now.as_millis() / DAY_MS;
        let mut ledger = self.ledger.lock();
        if day > ledger.latest_day {
            ledger.latest_day = day;
            ledger.counts.retain(|(_, d), _| *d >= day);
        }
        let count = ledger.counts.entry((user, day)).or_insert(0);
        if *count >= self.per_day {
            return Err(TokenError::DailyBudgetExhausted);
        }
        *count += 1;
        Ok(AccessToken {
            user,
            day,
            serial: *count,
        })
    }

    /// Validates a token at `now`.
    ///
    /// A token is valid only on the day it was issued for (a token issued
    /// at 23:59:59.999 expires exactly at the next midnight), only with a
    /// serial the issuer actually handed out — forged serials above the
    /// per-day budget, or above this user's issued count, are rejected.
    pub fn validate(&self, token: &AccessToken, now: SimTime) -> bool {
        if token.day != now.as_millis() / DAY_MS {
            return false;
        }
        if token.serial == 0 || token.serial > self.per_day {
            return false;
        }
        let ledger = self.ledger.lock();
        ledger
            .counts
            .get(&(token.user, token.day))
            .is_some_and(|issued| token.serial <= *issued)
    }

    /// How many `(user, day)` entries the ledger currently tracks (pruning
    /// observability for tests).
    pub fn tracked_entries(&self) -> usize {
        self.ledger.lock().counts.len()
    }
}

/// What the ingress hop can observe.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct IngressView {
    /// The client's real address (the ingress authenticates it).
    pub client_addr: IpAddr,
    /// The egress relay the tunnel goes to.
    pub egress_addr: IpAddr,
    /// Token validity (not identity — tokens are blinded).
    pub token_valid: bool,
    /// The inner CONNECT is encrypted to the egress; the ingress forwards
    /// opaque bytes only.
    pub inner_ciphertext_len: usize,
}

/// What the egress hop can observe.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct EgressView {
    /// The ingress the tunnel arrived from (never the client).
    pub ingress_addr: IpAddr,
    /// The target authority requested in the CONNECT.
    pub target_authority: String,
    /// The client's approximate location as a geohash (§6: derived from IP
    /// geolocation and visible to the egress operator).
    pub client_geohash: String,
}

/// An established two-hop session.
#[derive(Clone, PartialEq, Debug)]
pub struct MasqueSession {
    /// Transport used.
    pub transport: Transport,
    /// The ingress hop's view.
    pub ingress_view: IngressView,
    /// The egress hop's view.
    pub egress_view: EgressView,
    /// The address the target server logs.
    pub server_observed: IpAddr,
}

/// Errors from session establishment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MasqueError {
    /// Token issuance failed.
    Token(TokenError),
    /// The inner CONNECT failed to parse at the egress.
    BadConnect,
}

impl std::fmt::Display for MasqueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MasqueError::Token(e) => write!(f, "token: {e}"),
            MasqueError::BadConnect => write!(f, "malformed CONNECT"),
        }
    }
}

impl std::error::Error for MasqueError {}

/// Geohash precision the service exposes to the egress (city-ish).
const GEOHASH_PRECISION: usize = 4;

/// Builds the inner CONNECT request the client encrypts to the egress.
pub fn build_connect(target_authority: &str, geohash: &str) -> Vec<u8> {
    let headers: Headers = vec![
        (":method".into(), "CONNECT".into()),
        (":protocol".into(), "connect-udp".into()),
        (":authority".into(), target_authority.into()),
        ("geohash".into(), geohash.into()),
    ];
    h3::encode_frame(&h3::headers_frame(&headers))
}

/// Parses the inner CONNECT at the egress.
pub fn parse_connect(wire: &[u8]) -> Result<(String, String), MasqueError> {
    let (frame, _) = h3::decode_frame(wire).map_err(|_| MasqueError::BadConnect)?;
    if frame.frame_type != FrameType::Headers {
        return Err(MasqueError::BadConnect);
    }
    let headers = h3::decode_headers(&frame.payload).map_err(|_| MasqueError::BadConnect)?;
    if h3::header(&headers, ":method") != Some("CONNECT") {
        return Err(MasqueError::BadConnect);
    }
    let authority = h3::header(&headers, ":authority")
        .ok_or(MasqueError::BadConnect)?
        .to_string();
    let geohash = h3::header(&headers, "geohash").unwrap_or("").to_string();
    Ok((authority, geohash))
}

/// Establishes a two-hop session.
///
/// `client_location` is the client's IP-geolocation coordinates from which
/// the service derives the egress-visible geohash. `udp_blocked` forces
/// the TCP fallback (§2: "the service uses the fallback to HTTP/2 and
/// TLS 1.3 over TCP when the QUIC connection fails").
#[allow(clippy::too_many_arguments)]
pub fn establish(
    issuer: &TokenIssuer,
    user: u64,
    client_addr: IpAddr,
    client_location: (f64, f64),
    ingress_addr: IpAddr,
    egress: &EgressSelection,
    target_authority: &str,
    udp_blocked: bool,
    now: SimTime,
) -> Result<MasqueSession, MasqueError> {
    let token = issuer.issue(user, now).map_err(MasqueError::Token)?;
    let client_geohash = geohash::encode(client_location.0, client_location.1, GEOHASH_PRECISION);
    // The inner request is encrypted to the egress; the ingress only sees
    // its length.
    let inner = build_connect(target_authority, &client_geohash);
    let ingress_view = IngressView {
        client_addr,
        egress_addr: egress.addr,
        token_valid: issuer.validate(&token, now),
        inner_ciphertext_len: inner.len(),
    };
    // The egress decrypts and parses the CONNECT off the wire.
    let (authority, geohash) = parse_connect(&inner)?;
    let egress_view = EgressView {
        ingress_addr,
        target_authority: authority,
        client_geohash: geohash,
    };
    Ok(MasqueSession {
        transport: if udp_blocked {
            Transport::TcpFallback
        } else {
            Transport::Quic
        },
        ingress_view,
        egress_view,
        server_observed: egress.addr,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tectonic_net::{Asn, IpNet};
    use tectonic_quic::h3::Frame;

    fn egress_selection() -> EgressSelection {
        EgressSelection {
            operator: Asn::CLOUDFLARE,
            subnet: "104.0.16.0/32".parse::<IpNet>().unwrap(),
            addr: "104.0.16.0".parse().unwrap(),
        }
    }

    fn session(udp_blocked: bool) -> MasqueSession {
        let issuer = TokenIssuer::new(100);
        establish(
            &issuer,
            7,
            "84.113.20.5".parse().unwrap(),
            (48.137, 11.575), // Munich
            "172.240.0.1".parse().unwrap(),
            &egress_selection(),
            "ipecho.example.net:80",
            udp_blocked,
            SimTime::from_ymd(2022, 5, 10),
        )
        .unwrap()
    }

    #[test]
    fn visibility_separation_holds() {
        let s = session(false);
        // The ingress never sees the target authority…
        let ingress_json = serde_json::to_string(&s.ingress_view).unwrap();
        assert!(!ingress_json.contains("ipecho"));
        // …and the egress never sees the client address.
        let egress_json = serde_json::to_string(&s.egress_view).unwrap();
        assert!(!egress_json.contains("84.113.20.5"));
        assert_eq!(s.egress_view.target_authority, "ipecho.example.net:80");
        assert_eq!(s.server_observed, s.ingress_view.egress_addr);
    }

    #[test]
    fn geohash_is_coarse_but_near_client() {
        let s = session(false);
        assert_eq!(s.egress_view.client_geohash.len(), 4);
        // Munich's geohash starts with "u28" at this precision.
        assert!(s.egress_view.client_geohash.starts_with("u28"));
        let cell = tectonic_geo::geohash::decode(&s.egress_view.client_geohash).unwrap();
        // Coarse: the cell is tens of kilometres, not metres.
        assert!(cell.lat_err > 0.05);
    }

    #[test]
    fn udp_blocked_falls_back_to_tcp() {
        assert_eq!(session(false).transport, Transport::Quic);
        assert_eq!(session(true).transport, Transport::TcpFallback);
    }

    #[test]
    fn token_budget_limits_sessions() {
        let issuer = TokenIssuer::new(3);
        let now = SimTime::from_ymd(2022, 5, 10);
        for _ in 0..3 {
            assert!(issuer.issue(42, now).is_ok());
        }
        assert_eq!(issuer.issue(42, now), Err(TokenError::DailyBudgetExhausted));
        // Another user is unaffected.
        assert!(issuer.issue(43, now).is_ok());
        // The next day resets the budget.
        let tomorrow = SimTime::from_ymd(2022, 5, 11);
        assert!(issuer.issue(42, tomorrow).is_ok());
    }

    #[test]
    fn stale_tokens_fail_validation() {
        let issuer = TokenIssuer::new(10);
        let day1 = SimTime::from_ymd(2022, 5, 10);
        let token = issuer.issue(1, day1).unwrap();
        assert!(issuer.validate(&token, day1));
        assert!(!issuer.validate(&token, SimTime::from_ymd(2022, 5, 11)));
    }

    #[test]
    fn token_expires_exactly_at_the_day_boundary() {
        let issuer = TokenIssuer::new(10);
        let midnight = SimTime::from_ymd(2022, 5, 11);
        let last_ms = SimTime(midnight.as_millis() - 1); // 23:59:59.999
        let token = issuer.issue(7, last_ms).unwrap();
        // Valid for every remaining instant of its issue day…
        assert!(issuer.validate(&token, last_ms));
        // …and invalid from the first millisecond of the next day.
        assert!(!issuer.validate(&token, midnight));
        assert!(!issuer.validate(&token, SimTime(midnight.as_millis() + 1)));
    }

    #[test]
    fn budget_resets_exactly_at_the_day_boundary() {
        let issuer = TokenIssuer::new(2);
        let midnight = SimTime::from_ymd(2022, 5, 11);
        let before = SimTime(midnight.as_millis() - 1);
        assert!(issuer.issue(7, before).is_ok());
        assert!(issuer.issue(7, before).is_ok());
        assert_eq!(
            issuer.issue(7, before),
            Err(TokenError::DailyBudgetExhausted)
        );
        // The very first millisecond of the new day starts a fresh budget.
        let fresh = issuer.issue(7, midnight).unwrap();
        assert_eq!(fresh.serial, 1);
        assert!(issuer.validate(&fresh, midnight));
    }

    #[test]
    fn day_rollover_prunes_the_ledger() {
        let issuer = TokenIssuer::new(5);
        let day1 = SimTime::from_ymd(2022, 5, 10);
        for user in 0..4 {
            issuer.issue(user, day1).unwrap();
        }
        assert_eq!(issuer.tracked_entries(), 4);
        // Rolling to the next day drops all of day 1's accounting.
        let day2 = SimTime::from_ymd(2022, 5, 11);
        issuer.issue(9, day2).unwrap();
        assert_eq!(issuer.tracked_entries(), 1);
    }

    #[test]
    fn forged_serials_fail_validation() {
        let issuer = TokenIssuer::new(5);
        let now = SimTime::from_ymd(2022, 5, 10);
        let token = issuer.issue(7, now).unwrap();
        assert!(issuer.validate(&token, now));
        // Serial 0 was never handed out.
        let zero = AccessToken {
            serial: 0,
            ..token.clone()
        };
        assert!(!issuer.validate(&zero, now));
        // A serial above this user's issued count was never handed out…
        let ahead = AccessToken {
            serial: 2,
            ..token.clone()
        };
        assert!(!issuer.validate(&ahead, now));
        // …nor was one above the per-day budget, for any user.
        let over = AccessToken { serial: 6, ..token };
        assert!(!issuer.validate(&over, now));
        // A user the issuer never saw has no valid serials at all.
        let ghost = AccessToken {
            user: 99,
            day: now.as_millis() / 86_400_000,
            serial: 1,
        };
        assert!(!issuer.validate(&ghost, now));
    }

    #[test]
    fn connect_round_trips_on_the_wire() {
        let wire = build_connect("example.org:443", "u281");
        let (authority, geohash) = parse_connect(&wire).unwrap();
        assert_eq!(authority, "example.org:443");
        assert_eq!(geohash, "u281");
        // Garbage is rejected, not panicked on.
        assert_eq!(parse_connect(&[0xFF, 0x00]), Err(MasqueError::BadConnect));
        let data_frame = h3::encode_frame(&Frame {
            frame_type: FrameType::Data,
            payload: vec![1],
        });
        assert_eq!(parse_connect(&data_frame), Err(MasqueError::BadConnect));
    }

    #[test]
    fn exhausted_budget_propagates() {
        let issuer = TokenIssuer::new(0);
        let err = establish(
            &issuer,
            7,
            "84.113.20.5".parse().unwrap(),
            (48.1, 11.5),
            "172.240.0.1".parse().unwrap(),
            &egress_selection(),
            "x:80",
            false,
            SimTime::from_ymd(2022, 5, 10),
        )
        .unwrap_err();
        assert_eq!(err, MasqueError::Token(TokenError::DailyBudgetExhausted));
    }
}
