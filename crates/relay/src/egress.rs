//! Egress operator and address selection.
//!
//! §4.3's findings, implemented from the service side:
//!
//! * the egress *operator* for a client location is sticky — over a scan
//!   day only a handful of changes appear (Figure 3),
//! * the egress *address* rotates per connection, drawn from a small pool
//!   of subnets representing the client's city/country (the authors saw
//!   six addresses from four subnets over 48 h, >66 % change rate),
//! * parallel connections (curl + Safari) get independent draws,
//! * operators without presence at the client's location (Fastly at the
//!   authors' vantage point) are never selected.

use std::collections::HashMap;
use std::net::IpAddr;

use tectonic_net::{Asn, IpNet, PrefixTrie, SimDuration, SimTime};

use tectonic_geo::country::CountryCode;
use tectonic_geo::egress::{EgressList, OperatorFootprint};

/// The outcome of one egress selection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EgressSelection {
    /// The operator whose relay egresses the connection.
    pub operator: Asn,
    /// The egress subnet the address was drawn from.
    pub subnet: IpNet,
    /// The concrete egress address the target server observes.
    pub addr: IpAddr,
}

/// Per-client-location egress pools with rotation.
#[derive(Debug, Clone)]
pub struct EgressSelector {
    /// `(operator, cc)` → candidate subnets for that location.
    pools: HashMap<(Asn, CountryCode), Vec<IpNet>>,
    /// Operator → all subnets, the fallback pool when an operator has no
    /// presence at the client's country in a (scaled-down) list.
    global_pools: HashMap<Asn, Vec<IpNet>>,
    operators: Vec<Asn>,
    /// How many subnets a single client location draws from.
    subnets_per_location: usize,
    /// Addresses drawn per subnet before wrapping.
    addrs_per_subnet: u64,
    /// Mean time between operator switches.
    operator_stickiness: SimDuration,
    seed: u64,
}

impl EgressSelector {
    /// Builds per-location pools from the egress list and footprints.
    pub fn build(list: &EgressList, footprints: &[OperatorFootprint], seed: u64) -> EgressSelector {
        let mut pools: HashMap<(Asn, CountryCode), Vec<IpNet>> = HashMap::new();
        let mut global_pools: HashMap<Asn, Vec<IpNet>> = HashMap::new();
        // Index the footprints once and compile the index; per-entry
        // attribution is then a flat longest-prefix match instead of a
        // linear scan (the full list has ~240 k subnets against ~1.5 k
        // prefixes).
        let mut trie: PrefixTrie<Asn> = PrefixTrie::new();
        for f in footprints {
            for p in &f.bgp_v4 {
                trie.insert(*p, f.asn);
            }
            for p in &f.bgp_v6 {
                trie.insert(*p, f.asn);
            }
        }
        let index = trie.freeze();
        for entry in list.entries() {
            let Some((_, op)) = index.longest_match_net(&entry.subnet) else {
                continue;
            };
            let op = *op;
            pools.entry((op, entry.cc)).or_default().push(entry.subnet);
            global_pools.entry(op).or_default().push(entry.subnet);
        }
        let mut operators: Vec<Asn> = footprints.iter().map(|f| f.asn).collect();
        operators.sort();
        EgressSelector {
            pools,
            global_pools,
            operators,
            subnets_per_location: 4,
            addrs_per_subnet: 2,
            operator_stickiness: SimDuration::from_hours(3),
            seed,
        }
    }

    /// Operators with any presence for clients in `cc` (IPv4).
    pub fn operators_at(&self, cc: CountryCode) -> Vec<Asn> {
        self.operators
            .iter()
            .copied()
            .filter(|op| {
                self.pools
                    .get(&(*op, cc))
                    .is_some_and(|subnets| subnets.iter().any(|s| s.is_v4()))
            })
            .collect()
    }

    /// Restricts which operators can be chosen (models the paper's vantage
    /// point where Fastly had no presence).
    pub fn with_operators(mut self, operators: Vec<Asn>) -> EgressSelector {
        self.operators = operators;
        self
    }

    fn mix(&self, key: u64) -> u64 {
        let mut h = self.seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^ (h >> 31)
    }

    /// The sticky operator for `(client, now)`: changes only when the
    /// stickiness window rolls over, and only among operators present at
    /// the client's country.
    pub fn operator_for(&self, client_key: u64, cc: CountryCode, now: SimTime) -> Option<Asn> {
        let mut present: Vec<Asn> = self
            .operators
            .iter()
            .copied()
            .filter(|op| self.pools.contains_key(&(*op, cc)))
            .collect();
        if present.is_empty() {
            // No operator represents this country (possible in scaled-down
            // lists): any operator with subnets at all can still serve,
            // preserving only the country/time zone (§4.2's no-region mode).
            present = self
                .operators
                .iter()
                .copied()
                .filter(|op| self.global_pools.contains_key(op))
                .collect();
        }
        if present.is_empty() {
            return None;
        }
        let window = now.as_millis() / self.operator_stickiness.as_millis().max(1);
        let h = self.mix(client_key ^ window.wrapping_mul(0x1000_0000_01b3));
        present.get((h as usize) % present.len()).copied()
    }

    /// Selects an egress address for one fresh connection.
    ///
    /// `connection_id` must differ per connection (the per-connection
    /// rotation); `v6` picks the address family the egress uses toward the
    /// target.
    pub fn select(
        &self,
        client_key: u64,
        cc: CountryCode,
        now: SimTime,
        connection_id: u64,
        v6: bool,
    ) -> Option<EgressSelection> {
        let operator = self.operator_for(client_key, cc, now)?;
        let local = self.pools.get(&(operator, cc));
        let mut family: Vec<&IpNet> = local
            .into_iter()
            .flatten()
            .filter(|s| s.is_v6() == v6)
            .collect();
        if family.is_empty() {
            // Fall back to the operator's whole footprint for the family.
            family = self
                .global_pools
                .get(&operator)
                .into_iter()
                .flatten()
                .filter(|s| s.is_v6() == v6)
                .collect();
        }
        if family.is_empty() {
            return None;
        }
        // The client location maps to a stable, small pool of subnets…
        let pool_base = self.mix(client_key ^ 0xE6E6) as usize;
        let pool_size = self.subnets_per_location.min(family.len());
        // …and each connection draws a fresh (subnet, address) pair.
        let draw = self.mix(client_key ^ connection_id.rotate_left(17));
        let subnet = *family.get((pool_base + (draw as usize % pool_size)) % family.len())?;
        let addr_index = (draw >> 32) % self.addrs_per_subnet.max(1);
        let addr = match subnet {
            IpNet::V4(n) => {
                // Skip the network address when the subnet has room.
                let host = if n.addr_count() > 2 {
                    1 + addr_index
                } else {
                    addr_index
                };
                IpAddr::V4(n.nth_addr(host))
            }
            IpNet::V6(n) => IpAddr::V6(n.nth_addr(1 + addr_index as u128)),
        };
        Some(EgressSelection {
            operator,
            subnet: *subnet,
            addr,
        })
    }

    /// The expected number of distinct addresses a single client location
    /// can observe per operator (pool size × addresses per subnet).
    pub fn location_pool_size(&self) -> u64 {
        self.subnets_per_location as u64 * self.addrs_per_subnet
    }

    /// The small, stable pool of egress addresses representing one client
    /// geohash cell at one operator (§4.3: the authors saw six addresses
    /// from four subnets over 48 h at a fixed vantage point).
    ///
    /// The pool is a pure function of `(seed, operator, cc, geohash)` — no
    /// interior state — so every engine shard derives the identical pool
    /// and per-connection draws from it stay worker-invariant. Prefers the
    /// operator's footprint at the client's country, topping up from the
    /// operator-wide footprint when the local one is too small (a client
    /// in a one-`/32` country still sees the paper's small multi-address
    /// pool). Returns up to `pool_size` distinct IPv4 addresses; fewer
    /// only when the operator's entire footprint is smaller than that.
    pub fn geohash_pool(
        &self,
        operator: Asn,
        cc: CountryCode,
        geohash: &str,
        pool_size: usize,
    ) -> Vec<IpAddr> {
        let local: Vec<&IpNet> = self
            .pools
            .get(&(operator, cc))
            .into_iter()
            .flatten()
            .filter(|s| s.is_v4())
            .collect();
        let global: Vec<&IpNet> = self
            .global_pools
            .get(&operator)
            .into_iter()
            .flatten()
            .filter(|s| s.is_v4())
            .collect();
        // FNV over the geohash, then the selector's mixer, anchors the
        // pool to the cell rather than to any single client.
        let mut key = 0xCBF2_9CE4_8422_2325u64;
        for b in geohash.bytes() {
            key = (key ^ u64::from(b)).wrapping_mul(0x1_0000_01B3);
        }
        let base = self.mix(key ^ u64::from(operator.value()).rotate_left(23)) as usize;
        // Hosts to walk per subnet: at least the configured rotation span,
        // and enough that even a single-subnet footprint can fill the pool
        // — capped by the subnet's usable host span so the walk never
        // revisits an address within one subnet.
        let span = |subnet: &IpNet| -> u64 {
            let usable = match subnet {
                IpNet::V4(n) => {
                    let count = n.addr_count();
                    if count > 2 {
                        count - 2
                    } else {
                        count.max(1)
                    }
                }
                // v6 footprints are astronomically wide; bound the walk.
                IpNet::V6(_) => 1 << 16,
            };
            self.addrs_per_subnet.max(pool_size as u64).min(usable)
        };
        let mut pool = Vec::with_capacity(pool_size);
        for family in [local, global] {
            if family.is_empty() || pool.len() >= pool_size {
                continue;
            }
            // Walk (subnet, host) pairs in a cell-deterministic order until
            // the pool is full; distinct pairs yield distinct addresses
            // because the egress-list subnets do not overlap, and the
            // global top-up pass dedups anything the local pass already
            // picked.
            let candidates: u64 = family.iter().map(|s| span(s)).sum();
            for i in 0..candidates {
                if pool.len() >= pool_size {
                    break;
                }
                let Some(subnet) = family.get((base + i as usize) % family.len()).copied() else {
                    break;
                };
                let host = (base as u64 / family.len().max(1) as u64 + i / family.len() as u64)
                    % span(subnet);
                let addr = match subnet {
                    IpNet::V4(n) => {
                        let host = if n.addr_count() > 2 { 1 + host } else { host };
                        IpAddr::V4(n.nth_addr(host))
                    }
                    IpNet::V6(n) => IpAddr::V6(n.nth_addr(1 + u128::from(host))),
                };
                if !pool.contains(&addr) {
                    pool.push(addr);
                }
            }
        }
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use tectonic_geo::city::CityUniverse;
    use tectonic_geo::egress::{generate, OperatorEgressSpec};
    use tectonic_net::SimRng;

    fn selector() -> EgressSelector {
        let mut specs = OperatorEgressSpec::paper_defaults();
        for s in &mut specs {
            for (_, c) in &mut s.v4_mask_plan {
                *c /= 40;
            }
            s.v6_subnets /= 40;
            s.cities_v4 /= 20;
            s.cities_v6 /= 20;
        }
        let universe = CityUniverse::generate(&mut SimRng::new(1), 8_000);
        let (list, footprints) = generate(&SimRng::new(2), &universe, &specs, 1.0);
        EgressSelector::build(&list, &footprints, 77)
    }

    #[test]
    fn selection_returns_address_inside_subnet() {
        let s = selector();
        let now = SimTime::from_ymd(2022, 5, 10);
        for conn in 0..50 {
            let sel = s
                .select(42, CountryCode::US, now, conn, false)
                .expect("US always has presence");
            assert!(
                sel.subnet.contains(sel.addr),
                "{} ∉ {}",
                sel.addr,
                sel.subnet
            );
            assert!(sel.subnet.is_v4());
        }
    }

    #[test]
    fn rotation_changes_addresses_per_connection() {
        let s = selector();
        let now = SimTime::from_ymd(2022, 5, 10);
        let addrs: Vec<IpAddr> = (0..200)
            .map(|conn| {
                s.select(42, CountryCode::US, now, conn, false)
                    .unwrap()
                    .addr
            })
            .collect();
        let distinct: HashSet<_> = addrs.iter().collect();
        // Small pool (≤ subnets_per_location × addrs_per_subnet)…
        assert!(distinct.len() > 2, "pool too small: {}", distinct.len());
        assert!(
            distinct.len() as u64 <= s.location_pool_size(),
            "{} > pool {}",
            distinct.len(),
            s.location_pool_size()
        );
        // …with a high change rate between consecutive requests (>66 %).
        let changes = addrs.windows(2).filter(|w| w[0] != w[1]).count();
        let rate = changes as f64 / (addrs.len() - 1) as f64;
        assert!(rate > 0.66, "change rate {rate:.3}");
    }

    #[test]
    fn same_connection_id_is_deterministic() {
        let s = selector();
        let now = SimTime::from_ymd(2022, 5, 10);
        let a = s.select(42, CountryCode::US, now, 7, false);
        let b = s.select(42, CountryCode::US, now, 7, false);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_clients_get_independent_draws() {
        let s = selector();
        let now = SimTime::from_ymd(2022, 5, 10);
        // Two agents at the same location with different connection IDs —
        // usually different addresses.
        let diff = (0..100)
            .filter(|i| {
                let a = s.select(42, CountryCode::US, now, *i * 2, false).unwrap();
                let b = s
                    .select(42, CountryCode::US, now, *i * 2 + 1, false)
                    .unwrap();
                a.addr != b.addr
            })
            .count();
        assert!(diff > 50, "parallel draws too correlated: {diff}/100");
    }

    #[test]
    fn operator_is_sticky_within_window() {
        let s = selector();
        let start = SimTime::from_ymd(2022, 5, 10);
        let op0 = s.operator_for(42, CountryCode::US, start).unwrap();
        // Five minutes later: same operator (window is hours long).
        let later = start + SimDuration::from_mins(5);
        assert_eq!(s.operator_for(42, CountryCode::US, later).unwrap(), op0);
        // Over a full day, changes are rare.
        let mut changes = 0;
        let mut prev = op0;
        for round in 0..288 {
            let t = start + SimDuration::from_mins(5).times(round);
            let op = s.operator_for(42, CountryCode::US, t).unwrap();
            if op != prev {
                changes += 1;
            }
            prev = op;
        }
        assert!(changes <= 8, "too many operator changes: {changes}");
    }

    #[test]
    fn restricted_operators_exclude_fastly() {
        let s = selector().with_operators(vec![Asn::CLOUDFLARE, Asn::AKAMAI_PR]);
        let now = SimTime::from_ymd(2022, 5, 10);
        for conn in 0..100 {
            let sel = s.select(9, CountryCode::DE, now, conn, false).unwrap();
            assert_ne!(sel.operator, Asn::FASTLY);
            assert_ne!(sel.operator, Asn::AKAMAI_EG);
        }
    }

    #[test]
    fn v6_selection_draws_v6_subnets() {
        let s = selector();
        let now = SimTime::from_ymd(2022, 5, 10);
        let sel = s.select(42, CountryCode::US, now, 0, true).unwrap();
        assert!(sel.subnet.is_v6());
        assert!(sel.subnet.contains(sel.addr));
    }

    #[test]
    fn unknown_location_yields_none() {
        let s = selector().with_operators(vec![]);
        assert!(s
            .select(1, CountryCode::US, SimTime::EPOCH, 0, false)
            .is_none());
    }

    #[test]
    fn geohash_pool_is_stable_small_and_distinct() {
        let s = selector();
        let pool = s.geohash_pool(Asn::CLOUDFLARE, CountryCode::US, "9q8y", 3);
        assert_eq!(pool.len(), 3, "US footprint supports a full pool");
        let distinct: HashSet<_> = pool.iter().collect();
        assert_eq!(
            distinct.len(),
            pool.len(),
            "pool addresses must be distinct"
        );
        // Pure function of (seed, operator, cc, geohash): identical on
        // every recomputation, as the sharded engine requires.
        assert_eq!(
            pool,
            s.geohash_pool(Asn::CLOUDFLARE, CountryCode::US, "9q8y", 3)
        );
        // A different cell gets a different pool (overwhelmingly likely).
        let other = s.geohash_pool(Asn::CLOUDFLARE, CountryCode::US, "u281", 3);
        assert_ne!(pool, other);
        // An operator with no footprint at all yields an empty pool.
        assert!(s
            .geohash_pool(Asn(64_512), CountryCode::US, "9q8y", 3)
            .is_empty());
    }

    #[test]
    fn operators_at_reports_presence() {
        let s = selector();
        let at_us = s.operators_at(CountryCode::US);
        assert!(at_us.contains(&Asn::CLOUDFLARE));
        assert!(at_us.contains(&Asn::AKAMAI_PR));
    }
}
