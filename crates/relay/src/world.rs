//! The client-side Internet: eyeball ASes and the service split.
//!
//! Table 2 of the paper classifies client ASes by which ingress operator
//! serves them: ~34.6 k ASes exclusively by Akamai&#8239;PR (1.1 M /24s,
//! 994 M users), ~20.8 k exclusively by Apple (0.2 M /24s, 105 M users),
//! and ~17.3 k — the large eyeball networks — by *both*, split per subnet
//! with Apple taking 76 % of their /24s. [`ClientWorld::generate`] builds a
//! synthetic Internet with exactly that structure; the ECS zone consults it
//! to decide which operator answers a given client subnet.

use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr};

use serde::{Deserialize, Serialize};
use tectonic_net::{Asn, FrozenLpm, Ipv4Net, PrefixTrie, SimRng};

use tectonic_geo::country::{all_countries, CountryCode};

use crate::config::ClientWorldConfig;

/// Which ingress operator serves an AS.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ServiceSplit {
    /// All the AS's subnets are served by Akamai&#8239;PR relays.
    AkamaiOnly,
    /// All the AS's subnets are served by Apple relays.
    AppleOnly,
    /// Subnets are split between the operators (Apple ≈ 76 %).
    Both,
}

/// One client (eyeball) AS.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClientAs {
    /// The AS number (synthetic, from 100 000 upward).
    pub asn: Asn,
    /// Service-split category.
    pub category: ServiceSplit,
    /// Country the AS predominantly serves.
    pub cc: CountryCode,
    /// Number of routed /24 subnets.
    pub slash24_count: u64,
    /// Estimated users (APNIC-style).
    pub users: u64,
    /// The announced CIDRs covering exactly `slash24_count` /24s.
    pub prefixes: Vec<Ipv4Net>,
}

impl ClientAs {
    /// Iterates the AS's /24 subnets, in address order.
    pub fn slash24s(&self) -> impl Iterator<Item = Ipv4Net> + '_ {
        self.prefixes
            .iter()
            .flat_map(|p| p.subnets(24).into_iter().flatten())
    }

    /// A representative host address (used for resolvers and probes).
    pub fn host_addr(&self, n: u64) -> Ipv4Addr {
        // Generated ASes always carry at least one prefix; an empty one
        // falls back to TEST-NET-1 rather than panicking.
        let first = self
            .prefixes
            .first()
            .copied()
            .unwrap_or_else(|| Ipv4Net::slash24_of(Ipv4Addr::new(192, 0, 2, 0)));
        // Skip .0 so the address does not collide with a subnet base.
        first.nth_addr(1 + n)
    }
}

/// /8 blocks available for client allocation: everything unicast except
/// reserved ranges and the /8s hosting relay/egress pools.
const CLIENT_SLASH8S: &[u8] = &[
    1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12, 13, 14, 15, 16, 18, 19, 20, 21, 22, 24, 25, 26, 27, 28, 29,
    30, 31, 32, 33, 34, 35, 36, 37, 38, 39, 40, 41, 42, 43, 44, 45, 46, 47, 48, 49, 50, 51, 52, 53,
    54, 55, 56, 57, 58, 59, 60, 61, 62, 63, 64, 65, 66, 67, 68, 69, 70, 71, 72, 73, 74, 75, 76, 77,
    78, 79, 80, 81, 82, 83, 84, 85, 86, 87, 88, 89, 90, 91, 92, 93, 94, 95, 96, 97, 98, 99, 101,
    102, 103, 105, 106, 107, 108, 109, 110, 111, 112, 113, 114, 115, 116, 117, 118, 119, 120, 121,
    122, 123, 124, 125, 126, 128, 129, 130, 131, 132, 133, 134, 135, 136, 137, 138, 139, 140, 141,
    142, 143, 144, 145, 147, 148, 149, 150, 151, 152, 153, 154, 155, 156, 157, 158, 159, 160, 161,
    162, 163, 164, 165, 166, 167, 168, 170, 171, 173, 174, 175, 176, 177, 178, 179, 180, 181, 182,
    183, 184, 185, 186, 187, 188, 189, 190, 191, 193, 194, 195, 196, 197, 199, 200, 201, 202, 204,
    205, 206, 207, 208, 209, 210, 211, 212, 213, 214, 215, 216, 217, 218, 219, 220, 221, 222, 223,
];

/// Maps a global /24 index to its network address.
fn slash24_for_index(idx: u64) -> Option<Ipv4Net> {
    let slash8 = CLIENT_SLASH8S.get((idx / 65_536) as usize)?;
    let within = (idx % 65_536) as u32;
    let bits = (u32::from(*slash8) << 24) | (within << 8);
    Some(Ipv4Net::slash24_of(Ipv4Addr::from(bits)))
}

/// Decomposes a /24-index range `[start, start+count)` into minimal CIDRs.
fn range_to_cidrs(start: u64, count: u64) -> Vec<Ipv4Net> {
    let mut out = Vec::new();
    let mut cur = start;
    let mut remaining = count;
    while remaining > 0 {
        // Largest aligned power-of-two block at `cur` not exceeding
        // `remaining` and not crossing a /8 boundary of the index space.
        let align = if cur == 0 { 64 } else { cur.trailing_zeros() };
        let mut block_log = align.min(63 - remaining.leading_zeros());
        // Do not cross the 65 536-/24 boundary of one /8 slot.
        let to_boundary = 65_536 - (cur % 65_536);
        while (1u64 << block_log) > to_boundary {
            block_log -= 1;
        }
        let block = 1u64 << block_log;
        let Some(base) = slash24_for_index(cur) else {
            break; // caller asked past the allocatable space; asserted above
        };
        let len = 24 - block_log as u8;
        out.push(Ipv4Net::clamped(base.network(), len));
        cur += block;
        remaining -= block;
    }
    out
}

/// The synthesised client Internet.
#[derive(Debug)]
pub struct ClientWorld {
    ases: Vec<ClientAs>,
    by_asn: HashMap<Asn, usize>,
    /// Maps announced client CIDRs to indices into `ases`. The world is
    /// immutable once generated, so the index is built as a trie and kept
    /// only in compiled form.
    lpm: FrozenLpm<usize>,
    apple_share_in_both: f64,
    split_seed: u64,
}

impl ClientWorld {
    /// Generates the client world from a config.
    ///
    /// Subnet counts per AS are heavy-tailed within each category and then
    /// adjusted so the category totals are met exactly. Address space is
    /// assigned contiguously per AS from the non-reserved /8 pool.
    pub fn generate(rng: &SimRng, config: &ClientWorldConfig) -> ClientWorld {
        let mut gen_rng = rng.fork("client-world");
        let countries = all_countries();
        let cc_weights: Vec<f64> = countries.iter().map(|c| c.weight).collect();

        let capacity = CLIENT_SLASH8S.len() as u64 * 65_536;
        assert!(
            config.total_slash24() <= capacity,
            "client world ({} /24s) exceeds allocatable space ({capacity})",
            config.total_slash24()
        );

        let mut ases = Vec::with_capacity(config.total_ases());
        let mut cursor: u64 = 0;
        let mut next_asn: u32 = 100_000;

        let mut build_category = |category: ServiceSplit,
                                  as_count: usize,
                                  slash24_total: u64,
                                  user_total: u64,
                                  rng: &mut SimRng,
                                  ases: &mut Vec<ClientAs>,
                                  cursor: &mut u64| {
            if as_count == 0 {
                return;
            }
            // Heavy-tailed subnet counts per AS, normalised to the total.
            let raw: Vec<f64> = (0..as_count).map(|_| rng.pareto(1.0, 1.1)).collect();
            let raw_total: f64 = raw.iter().sum();
            let mut counts: Vec<u64> = raw
                .iter()
                .map(|r| ((r / raw_total) * slash24_total as f64).floor().max(1.0) as u64)
                .collect();
            // Fix rounding drift on the largest AS.
            let assigned: u64 = counts.iter().sum();
            let largest = (0..as_count)
                .max_by(|a, b| raw[*a].total_cmp(&raw[*b]))
                .unwrap_or(0);
            if assigned < slash24_total {
                counts[largest] += slash24_total - assigned;
            } else if assigned > slash24_total {
                let excess = assigned - slash24_total;
                counts[largest] = counts[largest].saturating_sub(excess).max(1);
            }
            // Users proportional to subnet counts within the category.
            let count_total: u64 = counts.iter().sum();
            for count in counts {
                let cc_idx = rng.pick_weighted(&cc_weights).unwrap_or(0);
                let users = ((count as f64 / count_total as f64) * user_total as f64)
                    .round()
                    .max(1.0) as u64;
                let prefixes = range_to_cidrs(*cursor, count);
                ases.push(ClientAs {
                    asn: Asn(next_asn),
                    category,
                    cc: countries[cc_idx].code,
                    slash24_count: count,
                    users,
                    prefixes,
                });
                next_asn += 1;
                *cursor += count;
            }
        };

        build_category(
            ServiceSplit::AkamaiOnly,
            config.akamai_only_ases,
            config.akamai_only_slash24,
            config.akamai_only_users,
            &mut gen_rng,
            &mut ases,
            &mut cursor,
        );
        build_category(
            ServiceSplit::AppleOnly,
            config.apple_only_ases,
            config.apple_only_slash24,
            config.apple_only_users,
            &mut gen_rng,
            &mut ases,
            &mut cursor,
        );
        build_category(
            ServiceSplit::Both,
            config.both_ases,
            config.both_slash24,
            config.both_users,
            &mut gen_rng,
            &mut ases,
            &mut cursor,
        );

        let mut trie = PrefixTrie::new();
        let mut by_asn = HashMap::with_capacity(ases.len());
        for (i, client_as) in ases.iter().enumerate() {
            by_asn.insert(client_as.asn, i);
            for p in &client_as.prefixes {
                trie.insert(*p, i);
            }
        }
        ClientWorld {
            ases,
            by_asn,
            lpm: trie.freeze(),
            apple_share_in_both: config.both_apple_subnet_share,
            split_seed: gen_rng.next_u64_raw(),
        }
    }

    /// All client ASes.
    pub fn ases(&self) -> &[ClientAs] {
        &self.ases
    }

    /// A client AS by number.
    pub fn by_asn(&self, asn: Asn) -> Option<&ClientAs> {
        self.by_asn.get(&asn).and_then(|i| self.ases.get(*i))
    }

    /// The client AS owning an address, if any.
    pub fn as_of_addr(&self, addr: IpAddr) -> Option<&ClientAs> {
        self.lpm
            .longest_match(addr)
            .and_then(|(_, i)| self.ases.get(*i))
    }

    /// The announced client CIDR covering `addr`, if any.
    pub fn covering_prefix(&self, addr: IpAddr) -> Option<Ipv4Net> {
        self.lpm
            .longest_match(addr)
            .and_then(|(net, _)| net.as_v4().copied())
    }

    /// Which ingress operator serves this client /24 — the quantity Table 2
    /// aggregates. `None` for addresses outside the client world.
    pub fn serving_operator(&self, subnet: Ipv4Net) -> Option<Asn> {
        let client_as = self.as_of_addr(IpAddr::V4(subnet.network()))?;
        Some(match client_as.category {
            ServiceSplit::AkamaiOnly => Asn::AKAMAI_PR,
            ServiceSplit::AppleOnly => Asn::APPLE,
            ServiceSplit::Both => self.split_operator(subnet),
        })
    }

    /// The per-subnet operator inside a "both" AS: a keyed hash of the /24
    /// lands on Apple with probability ≈ 76 %.
    pub fn split_operator(&self, subnet: Ipv4Net) -> Asn {
        let key = u32::from(subnet.network()) as u64 ^ self.split_seed;
        let mut h = key;
        // SplitMix64 finaliser as a stateless hash.
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        if unit < self.apple_share_in_both {
            Asn::APPLE
        } else {
            Asn::AKAMAI_PR
        }
    }

    /// Total /24 subnets across the world.
    pub fn total_slash24(&self) -> u64 {
        self.ases.iter().map(|a| a.slash24_count).sum()
    }

    /// All announced client CIDRs with their AS, for RIB population.
    pub fn announcements(&self) -> impl Iterator<Item = (Ipv4Net, Asn)> + '_ {
        self.ases
            .iter()
            .flat_map(|a| a.prefixes.iter().map(move |p| (*p, a.asn)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ClientWorldConfig {
        ClientWorldConfig::paper().scaled_down(256)
    }

    fn world() -> ClientWorld {
        ClientWorld::generate(&SimRng::new(42), &small_config())
    }

    #[test]
    fn range_to_cidrs_covers_exactly() {
        for (start, count) in [(0u64, 1u64), (3, 5), (0, 256), (100, 613), (65_530, 12)] {
            let cidrs = range_to_cidrs(start, count);
            let total: u64 = cidrs.iter().map(|c| 1u64 << (24 - c.len() as u32)).sum();
            assert_eq!(total, count, "range ({start},{count})");
            // No overlaps: successive CIDRs are strictly increasing.
            for w in cidrs.windows(2) {
                assert!(w[0] < w[1]);
                assert!(!w[0].contains_net(&w[1]));
            }
        }
    }

    #[test]
    fn range_to_cidrs_is_minimal_for_aligned_ranges() {
        assert_eq!(range_to_cidrs(0, 256).len(), 1);
        assert_eq!(range_to_cidrs(0, 256)[0].len(), 16);
        assert_eq!(range_to_cidrs(0, 1)[0].len(), 24);
    }

    #[test]
    fn slash24_index_mapping_skips_reserved() {
        let first = slash24_for_index(0).unwrap();
        assert_eq!(first.to_string(), "1.0.0.0/24");
        // Index 9 × 65536 lands in the 11.0.0.0/8 slot (10/8 is skipped).
        let net = slash24_for_index(9 * 65_536).unwrap();
        assert_eq!(net.to_string(), "11.0.0.0/24");
        assert!(slash24_for_index(u64::MAX / 2).is_none());
    }

    #[test]
    fn category_totals_match_config() {
        let cfg = small_config();
        let w = world();
        let total_for = |cat: ServiceSplit| -> (usize, u64) {
            let ases: Vec<_> = w.ases().iter().filter(|a| a.category == cat).collect();
            (ases.len(), ases.iter().map(|a| a.slash24_count).sum())
        };
        let (n_ak, s_ak) = total_for(ServiceSplit::AkamaiOnly);
        assert_eq!(n_ak, cfg.akamai_only_ases);
        assert_eq!(s_ak, cfg.akamai_only_slash24);
        let (n_ap, s_ap) = total_for(ServiceSplit::AppleOnly);
        assert_eq!(n_ap, cfg.apple_only_ases);
        assert_eq!(s_ap, cfg.apple_only_slash24);
        let (n_b, s_b) = total_for(ServiceSplit::Both);
        assert_eq!(n_b, cfg.both_ases);
        assert_eq!(s_b, cfg.both_slash24);
        assert_eq!(w.total_slash24(), cfg.total_slash24());
    }

    #[test]
    fn prefixes_are_disjoint_across_ases() {
        let w = world();
        let mut all: Vec<Ipv4Net> = w.announcements().map(|(p, _)| p).collect();
        all.sort();
        for pair in all.windows(2) {
            assert!(
                !pair[0].contains_net(&pair[1]) && pair[0] != pair[1],
                "overlap: {} and {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn addr_resolution_round_trips() {
        let w = world();
        for client_as in w.ases().iter().step_by(37) {
            let addr = client_as.host_addr(5);
            let found = w.as_of_addr(IpAddr::V4(addr)).unwrap();
            assert_eq!(found.asn, client_as.asn);
            assert_eq!(w.by_asn(client_as.asn).unwrap().asn, client_as.asn);
        }
        assert!(w.as_of_addr("192.0.2.1".parse().unwrap()).is_none());
    }

    #[test]
    fn serving_operator_respects_categories() {
        let w = world();
        for client_as in w.ases() {
            let subnet = client_as.slash24s().next().unwrap();
            let op = w.serving_operator(subnet).unwrap();
            match client_as.category {
                ServiceSplit::AkamaiOnly => assert_eq!(op, Asn::AKAMAI_PR),
                ServiceSplit::AppleOnly => assert_eq!(op, Asn::APPLE),
                ServiceSplit::Both => {
                    assert!(op == Asn::APPLE || op == Asn::AKAMAI_PR)
                }
            }
        }
    }

    #[test]
    fn both_split_is_near_76_percent_apple() {
        let w = world();
        let mut apple = 0u64;
        let mut total = 0u64;
        for client_as in w.ases().iter().filter(|a| a.category == ServiceSplit::Both) {
            for subnet in client_as.slash24s() {
                total += 1;
                if w.split_operator(subnet) == Asn::APPLE {
                    apple += 1;
                }
            }
        }
        let share = apple as f64 / total as f64;
        assert!(
            (0.74..0.78).contains(&share),
            "Apple share in both-ASes: {share:.4}"
        );
    }

    #[test]
    fn subnet_counts_are_heavy_tailed() {
        let w = world();
        let mut counts: Vec<u64> = w.ases().iter().map(|a| a.slash24_count).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().sum();
        let top_decile: u64 = counts.iter().take(counts.len() / 10).sum();
        assert!(
            top_decile as f64 / total as f64 > 0.5,
            "top-decile share {:.3}",
            top_decile as f64 / total as f64
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ClientWorld::generate(&SimRng::new(7), &small_config());
        let b = ClientWorld::generate(&SimRng::new(7), &small_config());
        assert_eq!(a.ases().len(), b.ases().len());
        assert_eq!(a.ases()[3].prefixes, b.ases()[3].prefixes);
        assert_eq!(a.ases()[3].cc, b.ases()[3].cc);
        let subnet = a.ases().last().unwrap().slash24s().next().unwrap();
        assert_eq!(a.serving_operator(subnet), b.serving_operator(subnet));
    }

    #[test]
    fn covering_prefix_contains_addr() {
        let w = world();
        let client_as = &w.ases()[0];
        let addr = client_as.host_addr(0);
        let covering = w.covering_prefix(IpAddr::V4(addr)).unwrap();
        assert!(covering.contains(addr));
        assert!(client_as.prefixes.contains(&covering));
    }
}
