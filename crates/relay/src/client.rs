//! The client-device model (the authors' MacBook).
//!
//! §3's through-relay scans run two agents — Safari and curl — every five
//! minutes (later 30 s) from a macOS device, in two DNS configurations:
//!
//! * **open** — the ingress address comes from a live resolution of
//!   `mask.icloud.com` against the authoritative server,
//! * **fixed** — a local unbound zone pins the ingress to a chosen address
//!   (used to test arbitrary addresses from the ECS scan results).
//!
//! A [`Device`] issues [`ClientRequest`]s that record what each observer
//! sees: the ingress address (visible to the client's ISP) and the egress
//! address (visible to the target server). Appendix B's extra *management
//! connection* into the configured ingress prefix is modelled too.

use std::net::{IpAddr, Ipv4Addr};
use std::sync::Arc;

use parking_lot::Mutex;
use tectonic_dns::server::{NameServer, QueryContext};
use tectonic_dns::{decode_message, encode_message, Message, QType};
use tectonic_net::{Asn, Ipv4Net, SimTime};

use tectonic_geo::country::CountryCode;

use crate::config::Domain;
use crate::egress::{EgressSelection, EgressSelector};
use crate::ingress::IngressFleets;
use crate::masque::{self, MasqueError, MasqueSession, TokenIssuer};

/// How the device resolves the mask domains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DnsMode {
    /// Live resolution against the authoritative servers.
    Open,
    /// A local zone pins the ingress to this address (the unbound setup).
    Fixed(Ipv4Addr),
}

/// Which user agent issued the request (the paper runs both in parallel).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RequestAgent {
    /// `curl http://ipecho.net/plain`-style fetch.
    Curl,
    /// Safari opening the observation web server.
    Safari,
}

/// One request through the relay, with everything each vantage point sees.
#[derive(Clone, Debug, PartialEq)]
pub struct ClientRequest {
    /// The agent that issued the request.
    pub agent: RequestAgent,
    /// When it was issued.
    pub time: SimTime,
    /// Ingress address the connection entered through (ISP-visible).
    pub ingress: IpAddr,
    /// Operator of the ingress address.
    pub ingress_asn: Option<Asn>,
    /// The egress selection (target-server-visible).
    pub egress: EgressSelection,
    /// The established MASQUE session (per-hop views, transport).
    pub session: MasqueSession,
}

/// Errors a relay connection attempt can hit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConnectError {
    /// DNS resolution for the mask domain failed or timed out.
    DnsFailed,
    /// The configured/resolved address is not an ingress relay.
    NotAnIngress(IpAddr),
    /// No egress operator has presence for the client's location.
    NoEgressAvailable,
    /// The MASQUE layer refused the session (token budget, bad CONNECT).
    Masque(MasqueError),
}

impl std::fmt::Display for ConnectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnectError::DnsFailed => write!(f, "mask domain resolution failed"),
            ConnectError::NotAnIngress(a) => write!(f, "{a} is not an ingress relay"),
            ConnectError::NoEgressAvailable => write!(f, "no egress presence at location"),
            ConnectError::Masque(e) => write!(f, "MASQUE: {e}"),
        }
    }
}

impl std::error::Error for ConnectError {}

/// The resolver the relay's oblivious DoH uses (Appendix B identifies
/// Cloudflare's public resolver).
pub const ODOH_RESOLVER: Ipv4Addr = Ipv4Addr::new(1, 1, 1, 1);

/// A macOS-like device with iCloud Private Relay enabled.
pub struct Device {
    addr: Ipv4Addr,
    cc: CountryCode,
    dns_mode: DnsMode,
    fleets: Arc<IngressFleets>,
    selector: Arc<EgressSelector>,
    issuer: Arc<TokenIssuer>,
    /// Whether the network blocks UDP (forces the HTTP/2 fallback).
    udp_blocked: bool,
    connection_counter: Mutex<u64>,
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("addr", &self.addr)
            .field("cc", &self.cc)
            .field("dns_mode", &self.dns_mode)
            .finish()
    }
}

impl Device {
    /// Creates a device at `addr` (country `cc`).
    pub fn new(
        addr: Ipv4Addr,
        cc: CountryCode,
        dns_mode: DnsMode,
        fleets: Arc<IngressFleets>,
        selector: Arc<EgressSelector>,
    ) -> Device {
        Device {
            addr,
            cc,
            dns_mode,
            fleets,
            selector,
            // A generous per-user budget: the §2 fraud prevention exists
            // but must not throttle a day of 30-second scan rounds.
            issuer: Arc::new(TokenIssuer::new(20_000)),
            udp_blocked: false,
            connection_counter: Mutex::new(0),
        }
    }

    /// Shares a token issuer (e.g. several devices of one iCloud account).
    pub fn with_token_issuer(mut self, issuer: Arc<TokenIssuer>) -> Device {
        self.issuer = issuer;
        self
    }

    /// Marks the network as UDP-hostile, forcing the TCP fallback (§2).
    pub fn with_udp_blocked(mut self, blocked: bool) -> Device {
        self.udp_blocked = blocked;
        self
    }

    /// The device's public address.
    pub fn addr(&self) -> Ipv4Addr {
        self.addr
    }

    /// The device's country.
    pub fn cc(&self) -> CountryCode {
        self.cc
    }

    /// The stable key identifying this client to the egress layer.
    fn client_key(&self) -> u64 {
        u32::from(self.addr) as u64 ^ 0x00C1_1E17
    }

    /// Resolves the ingress address per the DNS mode.
    fn resolve_ingress(
        &self,
        auth: &dyn NameServer,
        now: SimTime,
    ) -> Result<Ipv4Addr, ConnectError> {
        match self.dns_mode {
            DnsMode::Fixed(addr) => Ok(addr),
            DnsMode::Open => {
                // The device's stub queries through its local resolver; the
                // authoritative sees the resolver's in-network source.
                let query = Message::query(0x1E55, Domain::MaskQuic.name(), QType::A);
                let ctx = QueryContext {
                    src: IpAddr::V4(self.addr),
                    now,
                };
                match auth.handle_query(&encode_message(&query), &ctx) {
                    tectonic_dns::server::ServerReply::Response(bytes) => {
                        let response =
                            decode_message(&bytes).map_err(|_| ConnectError::DnsFailed)?;
                        response
                            .a_answers()
                            .first()
                            .copied()
                            .ok_or(ConnectError::DnsFailed)
                    }
                    tectonic_dns::server::ServerReply::Dropped => Err(ConnectError::DnsFailed),
                }
            }
        }
    }

    /// Issues one request through the relay.
    ///
    /// The returned [`ClientRequest`] records the ingress the connection
    /// used and the egress address the destination server logged. Each call
    /// is a fresh connection, so the egress address rotates (§4.3).
    pub fn request(
        &self,
        agent: RequestAgent,
        auth: &dyn NameServer,
        now: SimTime,
    ) -> Result<ClientRequest, ConnectError> {
        let ingress = self.resolve_ingress(auth, now)?;
        if !self.fleets.is_ingress(IpAddr::V4(ingress)) {
            return Err(ConnectError::NotAnIngress(IpAddr::V4(ingress)));
        }
        // The counter advances only for requests that reach connection
        // establishment — a failed resolution consumes no id.
        let connection_id = {
            let mut counter = self.connection_counter.lock();
            *counter += 1;
            *counter
        };
        self.connect(agent, now, ingress, connection_id)
    }

    /// [`Device::request`] with an explicit connection id, bypassing the
    /// device's internal counter.
    ///
    /// The discrete-event engine runs a device's rounds across shards, so
    /// callers assign each round's ids up front (round `i` of a fresh
    /// device uses ids `2i + 1` and `2i + 2` via
    /// [`Device::request_pair_with_ids`]) instead of racing a shared
    /// counter. The id feeds egress selection only; for a device whose
    /// requests all succeed this reproduces the counter's sequence
    /// exactly. (Under failures the counter path skips ids for failed
    /// resolutions while explicit ids stay fixed per round — deterministic
    /// either way, but not bit-equal to each other.)
    pub fn request_with_id(
        &self,
        agent: RequestAgent,
        auth: &dyn NameServer,
        now: SimTime,
        connection_id: u64,
    ) -> Result<ClientRequest, ConnectError> {
        let ingress = self.resolve_ingress(auth, now)?;
        if !self.fleets.is_ingress(IpAddr::V4(ingress)) {
            return Err(ConnectError::NotAnIngress(IpAddr::V4(ingress)));
        }
        self.connect(agent, now, ingress, connection_id)
    }

    /// Establishes the tunnel for an already-resolved ingress.
    fn connect(
        &self,
        agent: RequestAgent,
        now: SimTime,
        ingress: Ipv4Addr,
        connection_id: u64,
    ) -> Result<ClientRequest, ConnectError> {
        let egress = self
            .selector
            .select(self.client_key(), self.cc, now, connection_id, false)
            .ok_or(ConnectError::NoEgressAvailable)?;
        // Establish the MASQUE tunnel: token, inner CONNECT, per-hop views.
        let location = tectonic_geo::country::country_info(self.cc)
            .map(|i| (i.lat, i.lon))
            .unwrap_or((0.0, 0.0));
        let target = match agent {
            RequestAgent::Curl => "ipecho.net:80",
            RequestAgent::Safari => "observer.scan.example:443",
        };
        let session = masque::establish(
            &self.issuer,
            self.client_key(),
            IpAddr::V4(self.addr),
            location,
            IpAddr::V4(ingress),
            &egress,
            target,
            self.udp_blocked,
            now,
        )
        .map_err(ConnectError::Masque)?;
        Ok(ClientRequest {
            agent,
            time: now,
            ingress: IpAddr::V4(ingress),
            ingress_asn: self.fleets.asn_of(IpAddr::V4(ingress)),
            egress,
            session,
        })
    }

    /// The Safari + curl request pair the paper's scan issues each round.
    pub fn request_pair(
        &self,
        auth: &dyn NameServer,
        now: SimTime,
    ) -> Result<(ClientRequest, ClientRequest), ConnectError> {
        let safari = self.request(RequestAgent::Safari, auth, now)?;
        let curl = self.request(RequestAgent::Curl, auth, now)?;
        Ok((safari, curl))
    }

    /// [`Device::request_pair`] with explicit connection ids (see
    /// [`Device::request_with_id`]): Safari takes `safari_id`, curl takes
    /// `curl_id`.
    pub fn request_pair_with_ids(
        &self,
        auth: &dyn NameServer,
        now: SimTime,
        safari_id: u64,
        curl_id: u64,
    ) -> Result<(ClientRequest, ClientRequest), ConnectError> {
        let safari = self.request_with_id(RequestAgent::Safari, auth, now, safari_id)?;
        let curl = self.request_with_id(RequestAgent::Curl, auth, now, curl_id)?;
        Ok((safari, curl))
    }

    /// Appendix B: shortly after connecting to a (possibly forced) ingress,
    /// the device opens an additional management QUIC connection whose
    /// target lies in the same prefix as the configured ingress.
    pub fn management_connection_target(&self, ingress: Ipv4Addr) -> Ipv4Addr {
        let prefix = Ipv4Net::slash24_of(ingress);
        // A deterministic different host within the ingress /24.
        let offset = (u32::from(ingress) as u64 % 97) + 2;
        let candidate = prefix.nth_addr(offset);
        if candidate == ingress {
            prefix.nth_addr(offset + 1)
        } else {
            candidate
        }
    }

    /// The DoH resolver queries take once a relay connection is active —
    /// the local resolver is bypassed (Appendix B).
    pub fn odoh_resolver(&self) -> Ipv4Addr {
        ODOH_RESOLVER
    }

    /// Resolves a name through the relay's oblivious DoH path (Appendix B).
    ///
    /// With an active relay connection the system ignores the local
    /// resolver and queries Cloudflare's DoH service *through the relay*.
    /// The client learns its current egress address and attaches it as the
    /// ECS subnet, so the authoritative tailors the answer to the egress
    /// location rather than the client's — the mechanism that keeps CDN
    /// steering working despite the relay.
    pub fn odoh_resolve(
        &self,
        name: &tectonic_dns::DomainName,
        qtype: QType,
        target_auth: &dyn NameServer,
        relay_auth: &dyn NameServer,
        now: SimTime,
    ) -> Result<tectonic_dns::resolver::ResolutionOutcome, ConnectError> {
        // Establish (or reuse) a relay connection to learn the egress addr.
        let request = self.request(RequestAgent::Safari, relay_auth, now)?;
        let IpAddr::V4(egress_v4) = request.egress.addr else {
            return Err(ConnectError::NoEgressAvailable);
        };
        // The DoH exchange runs through the tunnel: the resolver queries
        // the authoritative from its own address, attaching the egress /24
        // as the client subnet.
        let mut query = Message::query(0x0D0B, name.clone(), qtype);
        query
            .ensure_edns()
            .set_ecs(tectonic_dns::EcsOption::for_v4_net(Ipv4Net::slash24_of(
                egress_v4,
            )));
        let ctx = QueryContext {
            src: IpAddr::V4(ODOH_RESOLVER),
            now,
        };
        match target_auth.handle_query(&encode_message(&query), &ctx) {
            tectonic_dns::server::ServerReply::Response(bytes) => Ok(decode_message(&bytes)
                .map(tectonic_dns::resolver::ResolutionOutcome::Answered)
                .unwrap_or(tectonic_dns::resolver::ResolutionOutcome::Timeout)),
            tectonic_dns::server::ServerReply::Dropped => {
                Ok(tectonic_dns::resolver::ResolutionOutcome::Timeout)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeploymentConfig;
    use crate::deploy::Deployment;
    use tectonic_net::{Epoch, SimDuration};

    fn deployment() -> Deployment {
        Deployment::build(11, DeploymentConfig::scaled(512))
    }

    #[test]
    fn open_dns_request_round_trip() {
        let d = deployment();
        let auth = d.auth_server_unlimited();
        let device = d.device_in_country(CountryCode::DE, DnsMode::Open);
        let now = Epoch::May2022.start();
        let req = device
            .request(RequestAgent::Curl, &auth, now)
            .expect("request should succeed");
        assert!(d.fleets.is_ingress(req.ingress));
        assert!(req.egress.subnet.contains(req.egress.addr));
        assert!(req.ingress_asn.is_some());
    }

    #[test]
    fn fixed_dns_uses_forced_ingress() {
        let d = deployment();
        let auth = d.auth_server_unlimited();
        let forced = d
            .fleets
            .fleet_v4(Epoch::Apr2022, Domain::MaskQuic, Asn::APPLE)[3];
        let device = d.device_in_country(CountryCode::DE, DnsMode::Fixed(forced));
        let req = device
            .request(RequestAgent::Safari, &auth, Epoch::May2022.start())
            .unwrap();
        assert_eq!(req.ingress, IpAddr::V4(forced));
        assert_eq!(req.ingress_asn, Some(Asn::APPLE));
    }

    #[test]
    fn forcing_non_ingress_fails() {
        let d = deployment();
        let auth = d.auth_server_unlimited();
        let device =
            d.device_in_country(CountryCode::DE, DnsMode::Fixed("9.9.9.9".parse().unwrap()));
        let err = device
            .request(RequestAgent::Curl, &auth, Epoch::May2022.start())
            .unwrap_err();
        assert!(matches!(err, ConnectError::NotAnIngress(_)));
    }

    #[test]
    fn forced_ingress_does_not_change_egress_behaviour() {
        // §4.3: "we did not observe egress behavior or address differences
        // when forcing a specific ingress relay address."
        let d = deployment();
        let auth = d.auth_server_unlimited();
        let now = Epoch::May2022.start();
        let a1 = d
            .fleets
            .fleet_v4(Epoch::Apr2022, Domain::MaskQuic, Asn::APPLE)[0];
        let a2 = d
            .fleets
            .fleet_v4(Epoch::Apr2022, Domain::MaskQuic, Asn::AKAMAI_PR)[0];
        let dev1 = d.device_in_country(CountryCode::DE, DnsMode::Fixed(a1));
        let dev2 = d.device_in_country(CountryCode::DE, DnsMode::Fixed(a2));
        // Same device address → same client key → same egress pool: collect
        // the address sets both devices observe.
        let mut set1 = std::collections::HashSet::new();
        let mut set2 = std::collections::HashSet::new();
        for i in 0..60 {
            let t = now + SimDuration::from_secs(30).times(i);
            set1.insert(
                dev1.request(RequestAgent::Curl, &auth, t)
                    .unwrap()
                    .egress
                    .addr,
            );
            set2.insert(
                dev2.request(RequestAgent::Curl, &auth, t)
                    .unwrap()
                    .egress
                    .addr,
            );
        }
        assert_eq!(set1, set2, "egress pools differ across forced ingresses");
    }

    #[test]
    fn request_pair_can_differ_in_egress() {
        let d = deployment();
        let auth = d.auth_server_unlimited();
        let device = d.device_in_country(CountryCode::US, DnsMode::Open);
        let mut differing = 0;
        for i in 0..40 {
            let t = Epoch::May2022.start() + SimDuration::from_mins(5).times(i);
            let (safari, curl) = device.request_pair(&auth, t).unwrap();
            if safari.egress.addr != curl.egress.addr {
                differing += 1;
            }
        }
        assert!(differing > 10, "parallel agents always same egress");
    }

    #[test]
    fn management_target_in_same_prefix_but_different() {
        let d = deployment();
        let device = d.device_in_country(CountryCode::DE, DnsMode::Open);
        let ingress = d
            .fleets
            .fleet_v4(Epoch::Apr2022, Domain::MaskQuic, Asn::AKAMAI_PR)[5];
        let target = device.management_connection_target(ingress);
        assert_ne!(target, ingress);
        assert!(Ipv4Net::slash24_of(ingress).contains(target));
        assert_eq!(device.odoh_resolver(), Ipv4Addr::new(1, 1, 1, 1));
    }
}
