//! The ECS-aware authoritative logic for the `mask` domains.
//!
//! This is the simulated AWS Route 53 behaviour the paper's ECS scan talks
//! to (§3, §4.1):
//!
//! * A queries honour the client subnet (from ECS, or the resolver source
//!   address otherwise), answer with up to eight records from the serving
//!   operator's fleet for that client's country, and return a /24 scope —
//!   except for single-operator client ASes, where the scope widens to the
//!   AS's covering prefix (the behaviour the ethical scanner exploits to
//!   skip redundant queries).
//! * AAAA queries always return scope 0 ("valid for the whole address
//!   space"), which is exactly why the paper's IPv6 enumeration has to fall
//!   back to RIPE Atlas.
//! * All records of one response come from a single AS.

use std::net::IpAddr;
use std::sync::Arc;

use tectonic_dns::zone::{EcsAnswer, EcsAnswerer, QueryInfo};
use tectonic_dns::{DomainName, EcsOption, QType, Question, RData};
use tectonic_net::{Asn, DeltaOverlay, Epoch, FrozenLpm, Ipv4Net, PrefixTrie, SimTime};

use tectonic_geo::country::CountryCode;

use crate::config::Domain;
use crate::ingress::IngressFleets;
use crate::world::{ClientWorld, ServiceSplit};

/// Stateless keyed hash (SplitMix64 finaliser).
fn mix(seed: u64, key: u64) -> u64 {
    let mut h = seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// The epoch a simulated instant falls into (latest epoch started).
pub fn epoch_of(now: SimTime) -> Epoch {
    let mut current = Epoch::Jan2022;
    for e in Epoch::ALL {
        if now >= e.start() {
            current = e;
        }
    }
    current
}

/// The dynamic answerer for `mask.icloud.com` / `mask-h2.icloud.com`.
pub struct MaskZone {
    fleets: Arc<IngressFleets>,
    world: Arc<ClientWorld>,
    /// Extra address→country mappings for sources outside the client world
    /// (public-resolver anycast sites). The trie is the registration-side
    /// structure; [`seal`](MaskZone::seal) compiles it for the per-query
    /// lookups.
    extra_cc: PrefixTrie<CountryCode>,
    /// Compiled `extra_cc`; registrations after a seal patch it through
    /// `extra_cc_delta` instead of dropping it.
    extra_cc_frozen: Option<FrozenLpm<CountryCode>>,
    /// Post-seal registrations pending against `extra_cc_frozen`.
    extra_cc_delta: DeltaOverlay<CountryCode>,
    max_records: usize,
    seed: u64,
}

impl MaskZone {
    /// Creates the answerer.
    pub fn new(
        fleets: Arc<IngressFleets>,
        world: Arc<ClientWorld>,
        max_records: usize,
        seed: u64,
    ) -> MaskZone {
        MaskZone {
            fleets,
            world,
            extra_cc: PrefixTrie::new(),
            extra_cc_frozen: None,
            extra_cc_delta: DeltaOverlay::new(),
            max_records: max_records.max(1),
            seed,
        }
    }

    /// Registers an out-of-world source range as located in `cc`
    /// (public-resolver anycast sites near the querying probes). After a
    /// [`seal`](MaskZone::seal) the mapping is patched into the compiled
    /// table through a delta overlay instead of dropping it.
    pub fn register_source_cc(&mut self, net: impl Into<tectonic_net::IpNet>, cc: CountryCode) {
        let net = net.into();
        if let Some(frozen) = self.extra_cc_frozen.as_mut() {
            self.extra_cc_delta.announce(net, cc);
            if self.extra_cc_delta.should_compact(frozen.len()) {
                frozen.refreeze_subtree(&self.extra_cc_delta);
                self.extra_cc_delta.clear();
            }
        }
        self.extra_cc.insert(net, cc);
    }

    /// Compiles the registered source ranges. Call once registration is
    /// done (the deployment does, before installing the zone); lookups fall
    /// back to the trie while unsealed, so sealing is purely a fast path.
    pub fn seal(&mut self) {
        self.extra_cc_frozen = Some(self.extra_cc.freeze());
        self.extra_cc_delta.clear();
    }

    fn domain_of(&self, name: &DomainName) -> Option<Domain> {
        let lower = name.to_ascii_lower();
        if lower == "mask.icloud.com" {
            Some(Domain::MaskQuic)
        } else if lower == "mask-h2.icloud.com" {
            Some(Domain::MaskH2)
        } else {
            None
        }
    }

    /// The effective client subnet for operator selection: ECS if present
    /// (clamped to /24 as the paper's scans do), the query source otherwise.
    fn client_subnet(&self, ecs: Option<&EcsOption>, src: IpAddr) -> Option<Ipv4Net> {
        if let Some(e) = ecs {
            if let IpAddr::V4(a) = e.addr {
                return Some(Ipv4Net::slash24_of(a));
            }
        }
        match src {
            IpAddr::V4(a) => Some(Ipv4Net::slash24_of(a)),
            IpAddr::V6(_) => None,
        }
    }

    /// Resolves the country a query effectively originates from.
    fn cc_of(&self, subnet: Option<Ipv4Net>, src: IpAddr) -> Option<CountryCode> {
        if let Some(subnet) = subnet {
            if let Some(client_as) = self.world.as_of_addr(IpAddr::V4(subnet.network())) {
                return Some(client_as.cc);
            }
        }
        match &self.extra_cc_frozen {
            Some(lpm) => self
                .extra_cc_delta
                .longest_match(lpm, src)
                .map(|(_, cc)| *cc),
            None => self.extra_cc.longest_match(src).map(|(_, cc)| *cc),
        }
    }

    /// The operator that serves this client subnet.
    fn operator_of(&self, subnet: Option<Ipv4Net>) -> Asn {
        match subnet {
            Some(subnet) => self
                .world
                .serving_operator(subnet)
                .unwrap_or_else(|| self.world.split_operator(subnet)),
            // IPv6-only source with no ECS: fall back to the global split.
            None => Asn::AKAMAI_PR,
        }
    }

    /// ECS scope for a v4 answer: /24 normally; the AS's covering prefix
    /// for single-operator ASes (safe to widen — every subnet in the AS
    /// gets the same operator and country, hence the same answer).
    fn scope_for(&self, subnet: Option<Ipv4Net>) -> u8 {
        let Some(subnet) = subnet else { return 24 };
        let addr = IpAddr::V4(subnet.network());
        match self.world.as_of_addr(addr) {
            Some(client_as) if client_as.category != ServiceSplit::Both => self
                .world
                .covering_prefix(addr)
                .map(|p| p.len().min(24))
                .unwrap_or(24),
            _ => 24,
        }
    }
}

impl EcsAnswerer for MaskZone {
    fn answer(
        &self,
        question: &Question,
        ecs: Option<&EcsOption>,
        info: &QueryInfo,
    ) -> Option<EcsAnswer> {
        let domain = self.domain_of(&question.name)?;
        if question.qtype != QType::A && question.qtype != QType::AAAA {
            // The names exist; non-address queries get NOERROR/no-data.
            return Some(EcsAnswer {
                rdatas: Vec::new(),
                ttl: 60,
                scope_len: 0,
            });
        }
        let epoch = epoch_of(info.now);
        let subnet = self.client_subnet(ecs, info.src);
        let operator = self.operator_of(subnet);
        let cc = self.cc_of(subnet, info.src);
        let subnet_key = subnet
            .map(|s| u32::from(s.network()) as u64)
            .unwrap_or(match info.src {
                IpAddr::V4(a) => u32::from(a) as u64,
                IpAddr::V6(a) => (u128::from(a) >> 64) as u64,
            });
        let domain_key = match domain {
            Domain::MaskQuic => 0x51,
            Domain::MaskH2 => 0x48,
        };
        let h = mix(self.seed, subnet_key ^ (domain_key << 56));
        let count = 1 + (h >> 17) as usize % self.max_records;
        let rdatas: Vec<RData> = if question.qtype == QType::A {
            let fleet = self.fleets.fleet_v4(epoch, domain, operator);
            if fleet.is_empty() {
                // The fallback fleet of an operator may not exist yet; the
                // live service answers from the other operator instead.
                let other = if operator == Asn::APPLE {
                    Asn::AKAMAI_PR
                } else {
                    Asn::APPLE
                };
                let fleet = self.fleets.fleet_v4(epoch, domain, other);
                window(fleet, cc, &self.fleets, h, count)
                    .map(|a| RData::A(*a))
                    .collect()
            } else {
                window(fleet, cc, &self.fleets, h, count)
                    .map(|a| RData::A(*a))
                    .collect()
            }
        } else {
            let fleet = self.fleets.fleet_v6(epoch, domain, operator);
            let fleet = if fleet.is_empty() {
                let other = if operator == Asn::APPLE {
                    Asn::AKAMAI_PR
                } else {
                    Asn::APPLE
                };
                self.fleets.fleet_v6(epoch, domain, other)
            } else {
                fleet
            };
            window(fleet, cc, &self.fleets, h, count)
                .map(|a| RData::Aaaa(*a))
                .collect()
        };
        let scope_len = match question.qtype {
            QType::A => self.scope_for(subnet),
            // AAAA: scope 0 — the whole IPv6 space (§3).
            _ => 0,
        };
        Some(EcsAnswer {
            rdatas,
            ttl: 60,
            scope_len,
        })
    }
}

/// A consecutive window of `count` addresses inside the country cluster of
/// `fleet`, starting at a hash-chosen offset (wrapping within the cluster).
fn window<'a, T>(
    fleet: &'a [T],
    cc: Option<CountryCode>,
    fleets: &IngressFleets,
    h: u64,
    count: usize,
) -> impl Iterator<Item = &'a T> {
    let cluster: &[T] = match cc {
        Some(cc) => fleets.cc_cluster(fleet, cc),
        None => fleet,
    };
    let len = cluster.len();
    let start = if len == 0 { 0 } else { (h as usize) % len };
    (0..count.min(len)).filter_map(move |i| cluster.get((start + i) % len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeploymentConfig;
    use std::collections::HashSet;
    use tectonic_dns::QClass;
    use tectonic_net::SimRng;

    fn setup() -> (Arc<IngressFleets>, Arc<ClientWorld>, MaskZone) {
        let config = DeploymentConfig::scaled(512);
        let fleets = Arc::new(IngressFleets::build(&config));
        let world = Arc::new(ClientWorld::generate(&SimRng::new(5), &config.client_world));
        let zone = MaskZone::new(fleets.clone(), world.clone(), 8, 99);
        (fleets, world, zone)
    }

    fn q(name: &str, qtype: QType) -> Question {
        Question {
            name: name.parse().unwrap(),
            qtype,
            qclass: QClass::IN,
        }
    }

    fn info_at(epoch: Epoch) -> QueryInfo {
        QueryInfo {
            src: "203.0.113.53".parse().unwrap(),
            now: epoch.start(),
        }
    }

    #[test]
    fn epoch_of_maps_times() {
        assert_eq!(epoch_of(SimTime::from_ymd(2022, 1, 15)), Epoch::Jan2022);
        assert_eq!(epoch_of(SimTime::from_ymd(2022, 4, 2)), Epoch::Apr2022);
        assert_eq!(epoch_of(SimTime::from_ymd(2022, 7, 1)), Epoch::May2022);
        assert_eq!(epoch_of(SimTime::EPOCH), Epoch::Jan2022);
    }

    #[test]
    fn answers_a_queries_with_fleet_addresses() {
        let (fleets, world, zone) = setup();
        let client = world.ases()[0].host_addr(0);
        let ecs = EcsOption::for_v4_net(Ipv4Net::slash24_of(client));
        let ans = zone
            .answer(
                &q("mask.icloud.com", QType::A),
                Some(&ecs),
                &info_at(Epoch::Apr2022),
            )
            .unwrap();
        assert!(!ans.rdatas.is_empty());
        assert!(ans.rdatas.len() <= 8);
        for rd in &ans.rdatas {
            let addr = rd.as_a().expect("A records");
            assert!(fleets.is_ingress(IpAddr::V4(addr)), "{addr} not ingress");
        }
    }

    #[test]
    fn all_records_in_same_as() {
        let (fleets, world, zone) = setup();
        for client_as in world.ases().iter().step_by(13) {
            let subnet = client_as.slash24s().next().unwrap();
            let ecs = EcsOption::for_v4_net(subnet);
            let ans = zone
                .answer(
                    &q("mask.icloud.com", QType::A),
                    Some(&ecs),
                    &info_at(Epoch::Apr2022),
                )
                .unwrap();
            let asns: HashSet<_> = ans
                .rdatas
                .iter()
                .map(|rd| fleets.asn_of(IpAddr::V4(rd.as_a().unwrap())).unwrap())
                .collect();
            assert_eq!(asns.len(), 1, "records from multiple ASes");
        }
    }

    #[test]
    fn operator_matches_world_category() {
        let (fleets, world, zone) = setup();
        for client_as in world.ases().iter().step_by(7) {
            let subnet = client_as.slash24s().next().unwrap();
            let want = world.serving_operator(subnet).unwrap();
            let ecs = EcsOption::for_v4_net(subnet);
            let ans = zone
                .answer(
                    &q("mask.icloud.com", QType::A),
                    Some(&ecs),
                    &info_at(Epoch::Apr2022),
                )
                .unwrap();
            let got = fleets
                .asn_of(IpAddr::V4(ans.rdatas[0].as_a().unwrap()))
                .unwrap();
            assert_eq!(got, want, "AS {}", client_as.asn);
        }
    }

    #[test]
    fn v4_scope_is_24_for_both_ases_and_wider_for_single() {
        let (_, world, zone) = setup();
        let both = world
            .ases()
            .iter()
            .find(|a| a.category == ServiceSplit::Both)
            .unwrap();
        let ecs = EcsOption::for_v4_net(both.slash24s().next().unwrap());
        let ans = zone
            .answer(
                &q("mask.icloud.com", QType::A),
                Some(&ecs),
                &info_at(Epoch::Apr2022),
            )
            .unwrap();
        assert_eq!(ans.scope_len, 24);
        // A single-operator AS with a prefix wider than /24 gets that scope.
        let single = world
            .ases()
            .iter()
            .find(|a| a.category == ServiceSplit::AkamaiOnly && a.prefixes[0].len() < 24)
            .expect("some AS has a wide prefix");
        let ecs = EcsOption::for_v4_net(single.slash24s().next().unwrap());
        let ans = zone
            .answer(
                &q("mask.icloud.com", QType::A),
                Some(&ecs),
                &info_at(Epoch::Apr2022),
            )
            .unwrap();
        assert_eq!(ans.scope_len, single.prefixes[0].len());
    }

    #[test]
    fn aaaa_scope_is_zero() {
        let (_, world, zone) = setup();
        let client = world.ases()[0].host_addr(0);
        let ecs = EcsOption::for_v4_net(Ipv4Net::slash24_of(client));
        let ans = zone
            .answer(
                &q("mask.icloud.com", QType::AAAA),
                Some(&ecs),
                &info_at(Epoch::Apr2022),
            )
            .unwrap();
        assert_eq!(ans.scope_len, 0);
        assert!(ans.rdatas.iter().all(|r| r.as_aaaa().is_some()));
    }

    #[test]
    fn fallback_domain_served_by_apple_in_feb() {
        let (fleets, world, zone) = setup();
        // In February the Akamai fallback fleet is empty; every client is
        // served from Apple's fallback fleet (Table 1's 100 % Apple row).
        let akamai_client = world
            .ases()
            .iter()
            .find(|a| a.category == ServiceSplit::AkamaiOnly)
            .unwrap();
        let ecs = EcsOption::for_v4_net(akamai_client.slash24s().next().unwrap());
        let ans = zone
            .answer(
                &q("mask-h2.icloud.com", QType::A),
                Some(&ecs),
                &info_at(Epoch::Feb2022),
            )
            .unwrap();
        let asn = fleets
            .asn_of(IpAddr::V4(ans.rdatas[0].as_a().unwrap()))
            .unwrap();
        assert_eq!(asn, Asn::APPLE);
    }

    #[test]
    fn other_names_fall_through() {
        let (_, _, zone) = setup();
        assert!(zone
            .answer(
                &q("www.icloud.com", QType::A),
                None,
                &info_at(Epoch::Apr2022)
            )
            .is_none());
    }

    #[test]
    fn txt_on_mask_is_nodata() {
        let (_, _, zone) = setup();
        let ans = zone
            .answer(
                &q("mask.icloud.com", QType::TXT),
                None,
                &info_at(Epoch::Apr2022),
            )
            .unwrap();
        assert!(ans.rdatas.is_empty());
    }

    #[test]
    fn no_ecs_uses_source_address() {
        let (fleets, world, zone) = setup();
        let client_as = world.ases().iter().find(|a| a.slash24_count > 2).unwrap();
        let src = IpAddr::V4(client_as.host_addr(3));
        let ans = zone
            .answer(
                &q("mask.icloud.com", QType::A),
                None,
                &QueryInfo {
                    src,
                    now: Epoch::Apr2022.start(),
                },
            )
            .unwrap();
        assert!(!ans.rdatas.is_empty());
        let got = fleets
            .asn_of(IpAddr::V4(ans.rdatas[0].as_a().unwrap()))
            .unwrap();
        let want = world
            .serving_operator(Ipv4Net::slash24_of(client_as.host_addr(3)))
            .unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn registered_source_cc_steers_cluster() {
        let (fleets, world, mut zone) = setup();
        zone.register_source_cc(
            "172.70.9.0/24".parse::<tectonic_net::IpNet>().unwrap(),
            CountryCode::DE,
        );
        let ans = zone
            .answer(
                &q("mask.icloud.com", QType::A),
                None,
                &QueryInfo {
                    src: "172.70.9.53".parse().unwrap(),
                    now: Epoch::Apr2022.start(),
                },
            )
            .unwrap();
        assert!(!ans.rdatas.is_empty());
        // The answer must come from the DE cluster of whichever fleet
        // handled it.
        let addr = ans.rdatas[0].as_a().unwrap();
        let asn = fleets.asn_of(IpAddr::V4(addr)).unwrap();
        let fleet = fleets.fleet_v4(Epoch::Apr2022, Domain::MaskQuic, asn);
        let cluster = fleets.cc_cluster(fleet, CountryCode::DE);
        assert!(cluster.contains(&addr));
        let _ = world;
    }

    #[test]
    fn register_after_seal_patches_compiled_table() {
        let (fleets, _world, mut zone) = setup();
        zone.register_source_cc(
            "172.70.9.0/24".parse::<tectonic_net::IpNet>().unwrap(),
            CountryCode::DE,
        );
        zone.seal();
        // A post-seal registration must be visible without re-sealing: it
        // patches the compiled table through the delta overlay.
        zone.register_source_cc(
            "172.71.3.0/24".parse::<tectonic_net::IpNet>().unwrap(),
            CountryCode::US,
        );
        for (src, cc) in [
            ("172.70.9.53", CountryCode::DE),
            ("172.71.3.53", CountryCode::US),
        ] {
            let ans = zone
                .answer(
                    &q("mask.icloud.com", QType::A),
                    None,
                    &QueryInfo {
                        src: src.parse().unwrap(),
                        now: Epoch::Apr2022.start(),
                    },
                )
                .unwrap();
            assert!(!ans.rdatas.is_empty());
            let addr = ans.rdatas[0].as_a().unwrap();
            let asn = fleets.asn_of(IpAddr::V4(addr)).unwrap();
            let fleet = fleets.fleet_v4(Epoch::Apr2022, Domain::MaskQuic, asn);
            let cluster = fleets.cc_cluster(fleet, cc);
            assert!(cluster.contains(&addr), "{src} not steered to {cc:?}");
        }
    }

    #[test]
    fn answers_are_deterministic() {
        let (_, world, zone) = setup();
        let ecs = EcsOption::for_v4_net(world.ases()[0].slash24s().next().unwrap());
        let a = zone
            .answer(
                &q("mask.icloud.com", QType::A),
                Some(&ecs),
                &info_at(Epoch::Apr2022),
            )
            .unwrap();
        let b = zone
            .answer(
                &q("mask.icloud.com", QType::A),
                Some(&ecs),
                &info_at(Epoch::Apr2022),
            )
            .unwrap();
        assert_eq!(a, b);
    }
}
