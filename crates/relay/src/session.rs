//! The CONNECT-UDP session layer: ingress admission, a `SessionTable` at
//! the egress, and per-session traffic counters (§4).
//!
//! [`masque`](crate::masque) models a single establishment handshake; this
//! module is the data plane behind it. An [`IngressNode`] terminates the
//! outer connection and validates the blinded token (it never parses the
//! inner CONNECT). An [`EgressNode`] keeps a [`SessionTable`]: it parses
//! the CONNECT, maps the advertised geohash cell to a represented country,
//! draws a per-connection address from the cell's small egress pool, and
//! echoes datagrams back. Every datagram payload crossing the tunnel is a
//! fixed 16-byte sealed record, so any fault-injected truncation or
//! corruption is *detectably* invalid at the egress and lands in the
//! session's drop counter — the conservation ledger the chaos harness
//! reconciles against.
//!
//! Determinism contract: a node's behaviour is a pure function of its
//! construction seed and the sequence of calls it receives. All
//! per-session randomness is re-derived via `SimRng::fork_indexed` keyed
//! by session id, never drawn from a shared stream, so the sharded engine
//! can replay sessions on any worker count with byte-identical reports.

use std::collections::BTreeMap;
use std::net::IpAddr;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use tectonic_geo::country::{nearest_country, CountryCode};
use tectonic_geo::geohash;
use tectonic_net::{Asn, SimDuration, SimRng, SimTime};
use tectonic_quic::capsule::{
    datagram_capsule, decode_capsule, decode_datagram, encode_capsule, encode_datagram,
    open_datagram_capsule, udp_datagram, CONTEXT_UDP_PAYLOAD,
};

use crate::egress::EgressSelector;
use crate::masque::{parse_connect, AccessToken, MasqueError, TokenError, TokenIssuer, Transport};

/// Magic prefix of every sealed datagram payload ("MQUD").
pub const DATAGRAM_MAGIC: u32 = 0x4D51_5544;

/// Sealed payload length: magic (4) + sequence (4) + session id (8).
pub const SEALED_LEN: usize = 16;

/// How many addresses one geohash cell's egress pool holds. Three gives
/// the paper's ~66 % consecutive-request rotation rate (1 − 1/3).
pub const CELL_POOL_SIZE: usize = 3;

/// Seals a datagram payload: a fixed-shape record whose magic, length and
/// embedded session id make any wire damage detectable at the egress.
pub fn seal_payload(session_id: u64, seq: u32) -> [u8; SEALED_LEN] {
    let mut out = [0u8; SEALED_LEN];
    out[..4].copy_from_slice(&DATAGRAM_MAGIC.to_be_bytes());
    out[4..8].copy_from_slice(&seq.to_be_bytes());
    out[8..].copy_from_slice(&session_id.to_be_bytes());
    out
}

/// Opens a sealed payload, returning `(session_id, seq)`; `None` on any
/// length, magic or shape violation.
pub fn open_payload(bytes: &[u8]) -> Option<(u64, u32)> {
    if bytes.len() != SEALED_LEN {
        return None;
    }
    let magic = u32::from_be_bytes(bytes.get(..4)?.try_into().ok()?);
    if magic != DATAGRAM_MAGIC {
        return None;
    }
    let seq = u32::from_be_bytes(bytes.get(4..8)?.try_into().ok()?);
    let session_id = u64::from_be_bytes(bytes.get(8..)?.try_into().ok()?);
    Some((session_id, seq))
}

/// Frames a sealed payload for the wire: a bare context-0 HTTP Datagram on
/// QUIC, a DATAGRAM capsule on the TCP fallback.
pub fn frame_datagram(payload: &[u8], transport: Transport) -> Vec<u8> {
    let datagram = udp_datagram(payload);
    match transport {
        // Encoding only fails beyond the varint range; context 0 and a
        // short payload are always in range.
        Transport::Quic => encode_datagram(&datagram).unwrap_or_default(),
        Transport::TcpFallback => datagram_capsule(&datagram)
            .and_then(|c| encode_capsule(&c))
            .unwrap_or_default(),
    }
}

/// Unframes a wire buffer back to the inner payload, or `None` when the
/// framing (or context id) is invalid for the transport.
pub fn unframe_datagram(wire: &[u8], transport: Transport) -> Option<Vec<u8>> {
    let datagram = match transport {
        Transport::Quic => decode_datagram(wire).ok()?,
        Transport::TcpFallback => {
            let (capsule, used) = decode_capsule(wire).ok()?;
            if used != wire.len() {
                return None;
            }
            open_datagram_capsule(&capsule)?
        }
    };
    if datagram.context_id != CONTEXT_UDP_PAYLOAD {
        return None;
    }
    Some(datagram.payload)
}

/// Traffic counters for one session.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct SessionCounters {
    /// Valid datagrams the egress received from the client side.
    pub datagrams_in: u64,
    /// Reply datagrams the egress sent back.
    pub datagrams_out: u64,
    /// Datagrams that arrived damaged (bad framing, magic, length or
    /// session id) and were dropped at the egress.
    pub drops: u64,
    /// 1 when this session's address differs from the same client chain's
    /// previous session (the §4.3 rotation event), else 0.
    pub rotations: u64,
    /// When the session opened.
    pub opened_at: SimTime,
    /// When the session closed (`None` while active).
    pub closed_at: Option<SimTime>,
}

impl SessionCounters {
    fn new(opened_at: SimTime, rotated: bool) -> SessionCounters {
        SessionCounters {
            datagrams_in: 0,
            datagrams_out: 0,
            drops: 0,
            rotations: u64::from(rotated),
            opened_at,
            closed_at: None,
        }
    }

    /// Open-to-close lifetime; `None` while the session is active.
    pub fn lifetime(&self) -> Option<SimDuration> {
        self.closed_at.map(|c| c.since(self.opened_at))
    }
}

/// The final record of one session, emitted at close.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct SessionReport {
    /// The session id (unique across the load test).
    pub session_id: u64,
    /// The chain key linking consecutive sessions of one client agent.
    pub chain: u64,
    /// The egress operator that served the session.
    pub operator: Asn,
    /// The egress address the target observed.
    pub addr: IpAddr,
    /// The represented country derived from the advertised geohash.
    pub cc: CountryCode,
    /// Transport the session rode.
    pub transport: Transport,
    /// Traffic counters.
    pub counters: SessionCounters,
}

/// What the egress returns when a session opens.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SessionAccept {
    /// The per-connection egress address drawn from the cell pool.
    pub addr: IpAddr,
    /// The represented country the geohash mapped to.
    pub cc: CountryCode,
}

/// Outcome of one datagram at the egress.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DatagramOutcome {
    /// The datagram was valid; the egress echoes this reply wire.
    Reply(Vec<u8>),
    /// The datagram was damaged and dropped (counted on the session).
    Dropped,
    /// No session with that id is active.
    Unknown,
}

/// The ingress hop: terminates the outer connection and enforces token
/// admission. It holds the issuer ledger but never sees the inner CONNECT.
#[derive(Debug)]
pub struct IngressNode {
    /// The ingress address clients connect to.
    pub addr: IpAddr,
    issuer: TokenIssuer,
    /// Sessions admitted (token issued and validated).
    pub accepted: u64,
    /// Sessions rejected (budget exhausted or invalid token).
    pub rejected: u64,
}

impl IngressNode {
    /// An ingress with its own issuer ledger and per-user daily budget.
    pub fn new(addr: IpAddr, per_day: u32) -> IngressNode {
        IngressNode {
            addr,
            issuer: TokenIssuer::new(per_day),
            accepted: 0,
            rejected: 0,
        }
    }

    /// Admits one session attempt for `user`: issues a token against the
    /// daily budget and validates it, counting the outcome either way.
    pub fn admit(&mut self, user: u64, now: SimTime) -> Result<AccessToken, TokenError> {
        match self.issuer.issue(user, now) {
            Ok(token) if self.issuer.validate(&token, now) => {
                self.accepted += 1;
                Ok(token)
            }
            Ok(_) => {
                self.rejected += 1;
                Err(TokenError::DailyBudgetExhausted)
            }
            Err(e) => {
                self.rejected += 1;
                Err(e)
            }
        }
    }

    /// Tokens issued so far must never exceed `users × per_day`; exposes
    /// the budget for that invariant.
    pub fn per_day(&self) -> u32 {
        self.issuer.per_day()
    }
}

/// One active session at the egress.
#[derive(Clone, Debug)]
struct SessionEntry {
    chain: u64,
    operator: Asn,
    addr: IpAddr,
    cc: CountryCode,
    transport: Transport,
    counters: SessionCounters,
}

/// Active sessions keyed by session id.
///
/// A `BTreeMap` keeps iteration (and therefore any derived report order)
/// deterministic regardless of insertion history.
#[derive(Debug, Default)]
pub struct SessionTable {
    entries: BTreeMap<u64, SessionEntry>,
    /// Peak number of simultaneously active sessions.
    peak: usize,
}

impl SessionTable {
    /// Number of currently active sessions.
    pub fn active(&self) -> usize {
        self.entries.len()
    }

    /// Peak number of simultaneously active sessions seen so far.
    pub fn peak(&self) -> usize {
        self.peak
    }

    fn insert(&mut self, id: u64, entry: SessionEntry) {
        self.entries.insert(id, entry);
        self.peak = self.peak.max(self.entries.len());
    }
}

/// The egress hop: parses CONNECTs, owns the [`SessionTable`], draws
/// per-connection addresses from geohash-cell pools and echoes datagrams.
pub struct EgressNode {
    selector: Arc<EgressSelector>,
    seed: u64,
    table: SessionTable,
    /// Closed-session reports in close order.
    reports: Vec<SessionReport>,
    /// Last address served per client chain, for rotation accounting.
    last_addr: BTreeMap<u64, IpAddr>,
    /// Geohash → represented country, memoised (the centroid search is a
    /// full table scan).
    cc_cache: BTreeMap<String, CountryCode>,
    /// Datagrams for unknown session ids (late arrivals after close).
    pub strays: u64,
}

impl EgressNode {
    /// An egress node drawing addresses from `selector`, seeded so that
    /// per-session draws are reproducible on any shard.
    pub fn new(selector: Arc<EgressSelector>, seed: u64) -> EgressNode {
        EgressNode {
            selector,
            seed,
            table: SessionTable::default(),
            reports: Vec::new(),
            last_addr: BTreeMap::new(),
            cc_cache: BTreeMap::new(),
            strays: 0,
        }
    }

    /// The session table (active counts, peak concurrency).
    pub fn table(&self) -> &SessionTable {
        &self.table
    }

    fn cc_for_geohash(&mut self, hash: &str) -> CountryCode {
        if let Some(cc) = self.cc_cache.get(hash) {
            return *cc;
        }
        let cc = geohash::decode(hash)
            .map(|cell| nearest_country(cell.lat, cell.lon).code)
            .unwrap_or(CountryCode::US);
        self.cc_cache.insert(hash.to_string(), cc);
        cc
    }

    /// Opens a session: parses the inner CONNECT, maps its geohash to a
    /// represented country and draws this connection's address from the
    /// cell's pool. `chain` links consecutive sessions of one client agent
    /// for rotation accounting (an opaque key — the egress still never
    /// learns the client address).
    pub fn open(
        &mut self,
        session_id: u64,
        chain: u64,
        operator: Asn,
        connect_wire: &[u8],
        transport: Transport,
        now: SimTime,
    ) -> Result<SessionAccept, MasqueError> {
        let (_authority, hash) = parse_connect(connect_wire)?;
        let cc = self.cc_for_geohash(&hash);
        let pool = self
            .selector
            .geohash_pool(operator, cc, &hash, CELL_POOL_SIZE);
        if pool.is_empty() {
            return Err(MasqueError::BadConnect);
        }
        // Per-connection draw: forked by session id, so the draw does not
        // depend on arrival order or shard partition.
        let mut rng = SimRng::new(self.seed).fork_indexed("egress-draw", session_id);
        let Some(&addr) = pool.get(rng.index(pool.len())).or_else(|| pool.first()) else {
            return Err(MasqueError::BadConnect);
        };
        let rotated = self
            .last_addr
            .insert(chain, addr)
            .is_some_and(|prev| prev != addr);
        self.table.insert(
            session_id,
            SessionEntry {
                chain,
                operator,
                addr,
                cc,
                transport,
                counters: SessionCounters::new(now, rotated),
            },
        );
        Ok(SessionAccept { addr, cc })
    }

    /// Handles one datagram arriving from the client side. Valid sealed
    /// payloads (matching session id) are echoed; anything damaged in
    /// flight is dropped and counted on the session.
    pub fn datagram(&mut self, session_id: u64, wire: &[u8]) -> DatagramOutcome {
        let Some(entry) = self.table.entries.get_mut(&session_id) else {
            self.strays += 1;
            return DatagramOutcome::Unknown;
        };
        let valid = unframe_datagram(wire, entry.transport)
            .and_then(|payload| open_payload(&payload))
            .filter(|(sid, _)| *sid == session_id);
        match valid {
            Some((_, seq)) => {
                entry.counters.datagrams_in += 1;
                entry.counters.datagrams_out += 1;
                let reply = frame_datagram(&seal_payload(session_id, seq), entry.transport);
                DatagramOutcome::Reply(reply)
            }
            None => {
                entry.counters.drops += 1;
                DatagramOutcome::Dropped
            }
        }
    }

    /// Closes a session and records its report. Unknown ids return `None`.
    pub fn close(&mut self, session_id: u64, now: SimTime) -> Option<SessionReport> {
        let mut entry = self.table.entries.remove(&session_id)?;
        entry.counters.closed_at = Some(now);
        let report = SessionReport {
            session_id,
            chain: entry.chain,
            operator: entry.operator,
            addr: entry.addr,
            cc: entry.cc,
            transport: entry.transport,
            counters: entry.counters,
        };
        self.reports.push(report.clone());
        Some(report)
    }

    /// Consumes the node, yielding all closed-session reports sorted by
    /// session id (a canonical order for cross-run comparison).
    pub fn into_reports(mut self) -> Vec<SessionReport> {
        self.reports.sort_by_key(|r| r.session_id);
        self.reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tectonic_geo::city::CityUniverse;
    use tectonic_geo::egress::{generate, OperatorEgressSpec};

    fn selector() -> Arc<EgressSelector> {
        let mut specs = OperatorEgressSpec::paper_defaults();
        for s in &mut specs {
            for (_, c) in &mut s.v4_mask_plan {
                *c /= 40;
            }
            s.v6_subnets /= 40;
            s.cities_v4 /= 20;
            s.cities_v6 /= 20;
        }
        let universe = CityUniverse::generate(&mut SimRng::new(1), 8_000);
        let (list, footprints) = generate(&SimRng::new(2), &universe, &specs, 1.0);
        Arc::new(EgressSelector::build(&list, &footprints, 77))
    }

    fn connect_wire() -> Vec<u8> {
        crate::masque::build_connect("ipecho.example.net:80", "9q8y")
    }

    #[test]
    fn sealed_payloads_round_trip_and_reject_damage() {
        let sealed = seal_payload(77, 3);
        assert_eq!(open_payload(&sealed), Some((77, 3)));
        // Truncation, extension and magic damage are all detected.
        assert_eq!(open_payload(&sealed[..15]), None);
        let mut long = sealed.to_vec();
        long.push(0);
        assert_eq!(open_payload(&long), None);
        let mut bad = sealed;
        bad[0] ^= 0xFF;
        assert_eq!(open_payload(&bad), None);
    }

    #[test]
    fn framing_round_trips_on_both_transports() {
        for transport in [Transport::Quic, Transport::TcpFallback] {
            let sealed = seal_payload(9, 1);
            let wire = frame_datagram(&sealed, transport);
            assert_eq!(unframe_datagram(&wire, transport).unwrap(), sealed);
        }
        // Transport mismatch fails to unframe rather than mis-decoding:
        // a capsule wire is not a valid context-0 datagram and vice versa.
        let sealed = seal_payload(9, 1);
        let capsule_wire = frame_datagram(&sealed, Transport::TcpFallback);
        assert_ne!(
            unframe_datagram(&capsule_wire, Transport::Quic)
                .and_then(|p| open_payload(&p))
                .map(|(sid, _)| sid),
            Some(9)
        );
    }

    #[test]
    fn ingress_admission_counts_and_enforces_budget() {
        let mut ingress = IngressNode::new("172.240.0.1".parse().unwrap(), 2);
        let now = SimTime::from_ymd(2022, 5, 10);
        assert!(ingress.admit(7, now).is_ok());
        assert!(ingress.admit(7, now).is_ok());
        assert_eq!(ingress.admit(7, now), Err(TokenError::DailyBudgetExhausted));
        assert_eq!(ingress.accepted, 2);
        assert_eq!(ingress.rejected, 1);
    }

    #[test]
    fn session_lifecycle_counts_traffic() {
        let mut egress = EgressNode::new(selector(), 42);
        let now = SimTime::from_ymd(2022, 5, 10);
        let accept = egress
            .open(
                1,
                500,
                Asn::CLOUDFLARE,
                &connect_wire(),
                Transport::Quic,
                now,
            )
            .unwrap();
        assert_eq!(egress.table().active(), 1);
        // Two good datagrams echo; a corrupted one drops.
        for seq in 0..2u32 {
            let wire = frame_datagram(&seal_payload(1, seq), Transport::Quic);
            let DatagramOutcome::Reply(reply) = egress.datagram(1, &wire) else {
                panic!("expected echo");
            };
            let payload = unframe_datagram(&reply, Transport::Quic).unwrap();
            assert_eq!(open_payload(&payload), Some((1, seq)));
        }
        let mut bad = frame_datagram(&seal_payload(1, 9), Transport::Quic);
        bad[2] ^= 0x40;
        assert_eq!(egress.datagram(1, &bad), DatagramOutcome::Dropped);
        let close_at = now + SimDuration::from_secs(30);
        let report = egress.close(1, close_at).unwrap();
        assert_eq!(report.counters.datagrams_in, 2);
        assert_eq!(report.counters.datagrams_out, 2);
        assert_eq!(report.counters.drops, 1);
        assert_eq!(report.counters.lifetime(), Some(SimDuration::from_secs(30)));
        assert_eq!(report.addr, accept.addr);
        assert_eq!(egress.table().active(), 0);
        assert_eq!(egress.table().peak(), 1);
        // Late datagrams after close are strays, not session traffic.
        let late = frame_datagram(&seal_payload(1, 10), Transport::Quic);
        assert_eq!(egress.datagram(1, &late), DatagramOutcome::Unknown);
        assert_eq!(egress.strays, 1);
    }

    #[test]
    fn a_datagram_for_the_wrong_session_is_dropped() {
        let mut egress = EgressNode::new(selector(), 42);
        let now = SimTime::from_ymd(2022, 5, 10);
        egress
            .open(
                1,
                500,
                Asn::CLOUDFLARE,
                &connect_wire(),
                Transport::Quic,
                now,
            )
            .unwrap();
        // A valid sealed payload for session 2 arriving on session 1 (a
        // mis-routed or replayed datagram) must not echo.
        let wire = frame_datagram(&seal_payload(2, 0), Transport::Quic);
        assert_eq!(egress.datagram(1, &wire), DatagramOutcome::Dropped);
    }

    #[test]
    fn rotation_links_consecutive_sessions_of_one_chain() {
        let mut egress = EgressNode::new(selector(), 42);
        let now = SimTime::from_ymd(2022, 5, 10);
        let chain = 500;
        let mut rotations = 0u64;
        let mut prev: Option<IpAddr> = None;
        for sid in 1..=200 {
            let accept = egress
                .open(
                    sid,
                    chain,
                    Asn::CLOUDFLARE,
                    &connect_wire(),
                    Transport::Quic,
                    now,
                )
                .unwrap();
            let report = egress.close(sid, now).unwrap();
            let expect = prev.is_some_and(|p| p != accept.addr);
            assert_eq!(report.counters.rotations, u64::from(expect), "sid {sid}");
            rotations += report.counters.rotations;
            prev = Some(accept.addr);
        }
        // Pool of 3 ⇒ expected rotation rate 2/3; allow a generous band.
        let rate = rotations as f64 / 199.0;
        assert!((0.5..0.85).contains(&rate), "rotation rate {rate:.3}");
    }

    #[test]
    fn open_rejects_garbage_connects() {
        let mut egress = EgressNode::new(selector(), 42);
        let now = SimTime::from_ymd(2022, 5, 10);
        let err = egress.open(1, 0, Asn::CLOUDFLARE, &[0xFF, 0x01], Transport::Quic, now);
        assert_eq!(err.unwrap_err(), MasqueError::BadConnect);
        assert_eq!(egress.table().active(), 0);
    }

    #[test]
    fn geohash_maps_to_the_nearest_country_and_its_pool() {
        let mut egress = EgressNode::new(selector(), 42);
        let now = SimTime::from_ymd(2022, 5, 10);
        // "u281" ≈ Munich ⇒ a central-European represented location.
        let wire = crate::masque::build_connect("x:443", "u281");
        let accept = egress
            .open(1, 0, Asn::CLOUDFLARE, &wire, Transport::Quic, now)
            .unwrap();
        let cell = geohash::decode("u281").unwrap();
        let expected = nearest_country(cell.lat, cell.lon).code;
        assert_eq!(accept.cc, expected);
        // Centroid matching at geohash-4 granularity may land on a small
        // neighbour (Liechtenstein's centroid is nearer to Munich than
        // Germany's) — any central-European code is a correct mapping.
        assert!(["DE", "AT", "CH", "CZ", "LI"].contains(&expected.as_str()));
        // The drawn address belongs to the cell's pool.
        let pool = selector().geohash_pool(Asn::CLOUDFLARE, expected, "u281", CELL_POOL_SIZE);
        assert!(pool.contains(&accept.addr));
    }

    #[test]
    fn reports_are_sorted_by_session_id() {
        let mut egress = EgressNode::new(selector(), 42);
        let now = SimTime::from_ymd(2022, 5, 10);
        for sid in [5u64, 1, 3] {
            egress
                .open(
                    sid,
                    sid,
                    Asn::CLOUDFLARE,
                    &connect_wire(),
                    Transport::Quic,
                    now,
                )
                .unwrap();
        }
        for sid in [3u64, 5, 1] {
            egress.close(sid, now).unwrap();
        }
        let ids: Vec<u64> = egress.into_reports().iter().map(|r| r.session_id).collect();
        assert_eq!(ids, vec![1, 3, 5]);
    }
}
