//! Building the full deployment.
//!
//! [`Deployment::build`] assembles everything the paper measures into one
//! deterministic object: the client world, the ingress fleets, the egress
//! list and footprints, the global RIB, the AS topology, the BGP visibility
//! history, per-AS populations, and the router-level path model.

use std::net::{IpAddr, Ipv4Addr};
use std::sync::Arc;

use tectonic_bgp::{AsPopulation, AsTopology, Month, Rib, VisibilityHistory};
use tectonic_dns::resolver::ResolverKind;
use tectonic_dns::server::{AuthoritativeServer, RateLimit};
use tectonic_dns::{DomainName, Zone};
use tectonic_net::{Asn, Epoch, Ipv4Net, SimRng};

use tectonic_geo::city::CityUniverse;
use tectonic_geo::country::{all_countries, CountryCode};
use tectonic_geo::egress::{generate, EgressList, OperatorFootprint};

use crate::client::{Device, DnsMode};
use crate::config::DeploymentConfig;
use crate::egress::EgressSelector;
use crate::ingress::IngressFleets;
use crate::path::RouterTopology;
use crate::world::ClientWorld;
use crate::zone::MaskZone;

/// A transit AS connecting everything (Lumen-like).
pub const TRANSIT_AS: Asn = Asn(3356);

/// Anycast source pools the four public resolvers query authoritatives
/// from, indexed in [`ResolverKind::PUBLIC`] order.
const PUBLIC_RESOLVER_POOLS: [&str; 4] = [
    "172.70.0.0/16",  // Google
    "172.68.0.0/16",  // Cloudflare
    "192.5.0.0/16",   // Quad9
    "146.112.0.0/16", // OpenDNS
];

/// The source address a public resolver uses when querying from a site
/// near clients in `cc`. Both the Atlas model and the authoritative zone
/// derive country attribution from this shared mapping.
pub fn anycast_source(kind: ResolverKind, cc: CountryCode) -> Ipv4Addr {
    let idx = ResolverKind::PUBLIC
        .iter()
        .position(|k| *k == kind)
        .unwrap_or(0);
    let pool = PUBLIC_RESOLVER_POOLS
        .get(idx)
        .map(|p| Ipv4Net::literal(p))
        .unwrap_or_else(|| Ipv4Net::literal("172.70.0.0/16"));
    let cc_index = all_countries()
        .iter()
        .position(|c| c.code == cc)
        .unwrap_or(0) as u64;
    // One /24 per country, host .53.
    pool.nth_addr(cc_index * 256 + 53)
}

/// The fully built deployment.
pub struct Deployment {
    /// The configuration it was built from.
    pub config: DeploymentConfig,
    /// The seed it was built with.
    pub seed: u64,
    /// The city universe backing egress geography.
    pub universe: CityUniverse,
    /// The client-side Internet.
    pub world: Arc<ClientWorld>,
    /// The ingress fleets.
    pub fleets: Arc<IngressFleets>,
    /// The May (full) egress list.
    pub egress_list: EgressList,
    /// Per-operator egress footprints (announced prefixes).
    pub egress_footprints: Vec<OperatorFootprint>,
    /// The global routing table.
    pub rib: Rib,
    /// AS-level topology of the relay-relevant ASes.
    pub topology: AsTopology,
    /// Monthly AS visibility, 2016-01 through 2022-06.
    pub history: VisibilityHistory,
    /// Per-AS user populations (client world + zeros elsewhere).
    pub aspop: AsPopulation,
    /// Router-level path model.
    pub routers: RouterTopology,
    selector: Arc<EgressSelector>,
}

impl std::fmt::Debug for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deployment")
            .field("seed", &self.seed)
            .field("client_ases", &self.world.ases().len())
            .field("egress_subnets", &self.egress_list.len())
            .field("rib_prefixes", &self.rib.len())
            .finish()
    }
}

impl Deployment {
    /// Builds the deployment deterministically from `seed`.
    ///
    /// ```
    /// use tectonic_relay::{Deployment, DeploymentConfig};
    ///
    /// let deployment = Deployment::build(42, DeploymentConfig::scaled(2048));
    /// assert!(deployment.rib.len() > 0);
    /// // Same seed, same Internet.
    /// let again = Deployment::build(42, DeploymentConfig::scaled(2048));
    /// assert_eq!(deployment.rib.len(), again.rib.len());
    /// ```
    pub fn build(seed: u64, config: DeploymentConfig) -> Deployment {
        let rng = SimRng::new(seed);
        // Fork-order audit: `build` runs once, serially, before any shard
        // or scheduler exists, and every fork below hangs off this private
        // root with a unique label — there is no interleaving that could
        // reorder them. Migrating to `fork_indexed` would change every
        // derived stream (and so every golden artifact) for no soundness
        // gain; see `relay_series_pinned_across_fork_audit`.
        // lintkit: allow(rng-fork-order) -- serial build path, single-threaded
        // construction before the engine starts; label-unique forks off a
        // private root cannot race
        let mut universe_rng = rng.fork("cities");
        let universe = CityUniverse::generate(&mut universe_rng, config.city_universe_size);
        let world = Arc::new(ClientWorld::generate(&rng, &config.client_world));
        let fleets = Arc::new(IngressFleets::build(&config));
        let (egress_list, egress_footprints) = generate(&rng, &universe, &config.egress_specs, 1.0);

        // --- global RIB
        let mut rib = Rib::new();
        for (prefix, asn) in world.announcements() {
            rib.announce(prefix, asn);
        }
        for plan in &config.ingress_plans {
            // Fleets were built from these very plans two lines up; an absent
            // pool would be a builder bug, and skipping it degrades to an
            // unannounced fleet rather than a panic.
            let Some(pool) = fleets.pool(plan.domain, plan.asn) else {
                continue;
            };
            for p in &pool.v4_prefixes {
                rib.announce(*p, plan.asn);
            }
            for p in &pool.v6_prefixes {
                rib.announce(*p, plan.asn);
            }
        }
        for footprint in &egress_footprints {
            for p in &footprint.bgp_v4 {
                rib.announce(*p, footprint.asn);
            }
            for p in &footprint.bgp_v6 {
                rib.announce(*p, footprint.asn);
            }
        }
        // Akamai PR's announced-but-unused prefixes (§6 census).
        let unused = &config.unused_akamai_pr;
        for p in unused
            .v4_pool
            .subnets(24)
            .into_iter()
            .flatten()
            .take(unused.v4)
        {
            rib.announce(p, Asn::AKAMAI_PR);
        }
        for p in (0..unused.v6).filter_map(|i| unused.v6_pool.nth_subnet(48, i as u128).ok()) {
            rib.announce(p, Asn::AKAMAI_PR);
        }
        // The table is fully loaded: compile it so every steady-state
        // consumer (scanner, analyses, correlation) looks up through the
        // flat engine instead of the pointer trie. Later churn (the chaos
        // pipeline's BGP flaps) patches the compiled table through the
        // RIB's delta overlay rather than invalidating it.
        rib.freeze();

        // --- AS topology: AkamaiPR hangs off AkamaiEG alone (§6).
        let mut topology = AsTopology::new();
        topology.add_link(Asn::AKAMAI_PR, Asn::AKAMAI_EG);
        topology.add_link(Asn::AKAMAI_EG, TRANSIT_AS);
        topology.add_link(Asn::APPLE, TRANSIT_AS);
        topology.add_link(Asn::CLOUDFLARE, TRANSIT_AS);
        topology.add_link(Asn::FASTLY, TRANSIT_AS);

        // --- visibility history: AkamaiPR first seen June 2021.
        let mut history = VisibilityHistory::new();
        for month in Month::new(2016, 1).through(Month::new(2022, 6)) {
            history.record_many(
                month,
                [
                    Asn::APPLE,
                    Asn::AKAMAI_EG,
                    Asn::CLOUDFLARE,
                    Asn::FASTLY,
                    TRANSIT_AS,
                ],
            );
            if month >= Month::new(2021, 6) {
                history.record(month, Asn::AKAMAI_PR);
            }
        }

        // --- AS populations from the client world.
        let mut aspop = AsPopulation::new();
        for client_as in world.ases() {
            aspop.set(client_as.asn, client_as.users);
        }

        // lintkit: allow(rng-fork-order) -- serial build path (see the
        // fork-order audit note above); reduced to a raw seed immediately
        let routers = RouterTopology::new(24, rng.fork("routers").next_u64_raw());
        let selector = Arc::new(EgressSelector::build(
            &egress_list,
            &egress_footprints,
            // lintkit: allow(rng-fork-order) -- serial build path (see the
            // fork-order audit note above); reduced to a raw seed immediately
            rng.fork("egress-selector").next_u64_raw(),
        ));

        Deployment {
            config,
            seed,
            universe,
            world,
            fleets,
            egress_list,
            egress_footprints,
            rib,
            topology,
            history,
            aspop,
            routers,
            selector,
        }
    }

    /// The egress list as published at `epoch` (regenerated at that epoch's
    /// scale; the May list equals [`Deployment::egress_list`]).
    pub fn egress_list_at(&self, epoch: Epoch) -> EgressList {
        let scale = self.config.egress_scale(epoch);
        let rng = SimRng::new(self.seed);
        let (list, _) = generate(&rng, &self.universe, &self.config.egress_specs, scale);
        list
    }

    /// The per-location egress selector (shared with devices).
    pub fn egress_selector(&self) -> Arc<EgressSelector> {
        self.selector.clone()
    }

    /// The `icloud.com` zone with the dynamic mask answerer installed and
    /// all public-resolver anycast sources registered.
    pub fn mask_zone(&self) -> Zone {
        let mut mask = MaskZone::new(
            self.fleets.clone(),
            self.world.clone(),
            self.config.max_records_per_answer,
            // lintkit: allow(rng-fork-order) -- single fork off a fresh
            // deployment-seed root in serial zone construction; no sibling
            // forks share this root, so fork order cannot vary
            SimRng::new(self.seed).fork("mask-zone").next_u64_raw(),
        );
        for kind in ResolverKind::PUBLIC {
            for country in all_countries() {
                let addr = anycast_source(kind, country.code);
                mask.register_source_cc(Ipv4Net::slash24_of(addr), country.code);
            }
        }
        // All sources are registered; compile the source-cc table for the
        // per-query lookups the answerer does from here on.
        mask.seal();
        let mut zone = Zone::new(DomainName::literal("icloud.com"));
        zone.add_address(
            DomainName::literal("www.icloud.com"),
            300,
            IpAddr::V4(Ipv4Addr::new(17, 253, 144, 10)),
        );
        zone.with_dynamic(Arc::new(mask))
    }

    /// The authoritative server with the paper-calibrated rate limit — the
    /// reason the full ECS scan takes ~40 hours.
    pub fn auth_server(&self) -> AuthoritativeServer {
        AuthoritativeServer::new()
            .with_zone(self.mask_zone())
            .with_rate_limit(RateLimit::route53_like())
    }

    /// The authoritative server without rate limiting (fast unit tests and
    /// ablation baselines).
    pub fn auth_server_unlimited(&self) -> AuthoritativeServer {
        AuthoritativeServer::new().with_zone(self.mask_zone())
    }

    /// A device homed in the first client AS of country `cc` (falling back
    /// to the first AS overall).
    pub fn device_in_country(&self, cc: CountryCode, dns_mode: DnsMode) -> Device {
        let client_as = self
            .world
            .ases()
            .iter()
            .find(|a| a.cc == cc)
            .unwrap_or_else(|| &self.world.ases()[0]);
        Device::new(
            client_as.host_addr(7),
            client_as.cc,
            dns_mode,
            self.fleets.clone(),
            self.selector.clone(),
        )
    }

    /// A device at a specific vantage point with a restricted operator set
    /// (models the authors' location where Fastly had no presence, so only
    /// Cloudflare and Akamai PR appeared as egress operators).
    pub fn vantage_device(
        &self,
        cc: CountryCode,
        dns_mode: DnsMode,
        operators: Vec<Asn>,
    ) -> Device {
        let client_as = self
            .world
            .ases()
            .iter()
            .find(|a| a.cc == cc)
            .unwrap_or_else(|| &self.world.ases()[0]);
        let restricted = Arc::new((*self.selector).clone().with_operators(operators));
        let host_index = match dns_mode {
            DnsMode::Open => 7,
            DnsMode::Fixed(_) => 8,
        };
        Device::new(
            client_as.host_addr(host_index),
            client_as.cc,
            dns_mode,
            self.fleets.clone(),
            restricted,
        )
    }

    /// Whether an address belongs to any announced relay/egress prefix of
    /// the given operator (used by the correlation analyses).
    pub fn in_operator_space(&self, asn: Asn, addr: IpAddr) -> bool {
        self.rib.lookup(addr).map(|(_, a)| a) == Some(asn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Domain;
    use tectonic_net::IpNet;

    fn deployment() -> Deployment {
        Deployment::build(3, DeploymentConfig::scaled(512))
    }

    #[test]
    fn build_is_deterministic() {
        let a = Deployment::build(9, DeploymentConfig::scaled(512));
        let b = Deployment::build(9, DeploymentConfig::scaled(512));
        assert_eq!(a.egress_list.len(), b.egress_list.len());
        assert_eq!(a.rib.len(), b.rib.len());
        assert_eq!(
            a.egress_list.entries()[5].subnet,
            b.egress_list.entries()[5].subnet
        );
    }

    #[test]
    fn rib_covers_client_and_relay_space() {
        let d = deployment();
        // A client address resolves to its AS.
        let client_as = &d.world.ases()[0];
        let (_, asn) = d.rib.lookup(IpAddr::V4(client_as.host_addr(1))).unwrap();
        assert_eq!(asn, client_as.asn);
        // An ingress address resolves to its operator.
        let ingress = d
            .fleets
            .fleet_v4(Epoch::Apr2022, Domain::MaskQuic, Asn::AKAMAI_PR)[0];
        let (_, asn) = d.rib.lookup(IpAddr::V4(ingress)).unwrap();
        assert_eq!(asn, Asn::AKAMAI_PR);
        // An egress subnet resolves to its operator.
        let entry = d.egress_list.entries().first().unwrap();
        let (_, asn) = d.rib.lookup(entry.subnet.network()).unwrap();
        assert!(Asn::EGRESS_OPERATORS.contains(&asn));
    }

    #[test]
    fn akamai_pr_announcement_census() {
        let d = Deployment::build(3, DeploymentConfig::paper());
        let prefixes = d.rib.prefixes_of(Asn::AKAMAI_PR);
        let v4 = prefixes.iter().filter(|p| p.is_v4()).count();
        let v6 = prefixes.iter().filter(|p| p.is_v6()).count();
        assert_eq!(v4, 478, "announced v4 prefixes");
        assert_eq!(v6, 1336, "announced v6 prefixes");
    }

    #[test]
    fn topology_has_single_akamai_pr_peering() {
        let d = deployment();
        assert_eq!(d.topology.degree(Asn::AKAMAI_PR), 1);
        assert_eq!(d.topology.neighbors(Asn::AKAMAI_PR), vec![Asn::AKAMAI_EG]);
    }

    #[test]
    fn history_first_seen_june_2021() {
        let d = deployment();
        assert_eq!(
            d.history.first_seen(Asn::AKAMAI_PR),
            Some(Month::new(2021, 6))
        );
        assert_eq!(d.history.first_seen(Asn::APPLE), Some(Month::new(2016, 1)));
    }

    #[test]
    fn aspop_totals_match_client_world() {
        let d = deployment();
        let total: u64 = d.world.ases().iter().map(|a| a.users).sum();
        assert_eq!(d.aspop.total(), total);
        // Roughly the paper's 3.47 B total users.
        assert!(
            (3.3e9..3.6e9).contains(&(total as f64)),
            "total users {total}"
        );
    }

    #[test]
    fn egress_list_at_scales_down() {
        let d = deployment();
        let jan = d.egress_list_at(Epoch::Jan2022);
        let may = d.egress_list_at(Epoch::May2022);
        assert_eq!(may.len(), d.egress_list.len());
        let growth = may.len() as f64 / jan.len() as f64 - 1.0;
        assert!((0.10..0.20).contains(&growth), "Jan→May growth {growth:.3}");
    }

    #[test]
    fn anycast_sources_are_distinct_per_kind_and_cc() {
        let google_us = anycast_source(ResolverKind::GooglePublic, CountryCode::US);
        let google_de = anycast_source(ResolverKind::GooglePublic, CountryCode::DE);
        let cf_us = anycast_source(ResolverKind::CloudflarePublic, CountryCode::US);
        assert_ne!(google_us, google_de);
        assert_ne!(google_us, cf_us);
    }

    #[test]
    fn in_operator_space_checks_rib() {
        let d = deployment();
        let entry = d
            .egress_list
            .entries()
            .iter()
            .find(|e| e.subnet.is_v4())
            .unwrap();
        let addr = match entry.subnet {
            IpNet::V4(n) => IpAddr::V4(n.nth_addr(0)),
            IpNet::V6(n) => IpAddr::V6(n.nth_addr(0)),
        };
        let (_, owner) = d.rib.lookup(addr).unwrap();
        assert!(d.in_operator_space(owner, addr));
        assert!(!d.in_operator_space(Asn(65_000), addr));
    }

    #[test]
    fn auth_server_answers_mask_queries() {
        use tectonic_dns::server::{NameServer, QueryContext, ServerReply};
        use tectonic_dns::{decode_message, encode_message, Message, QType};
        let d = deployment();
        let auth = d.auth_server_unlimited();
        let q = Message::query(1, Domain::MaskQuic.name(), QType::A);
        let ctx = QueryContext {
            src: IpAddr::V4(d.world.ases()[0].host_addr(9)),
            now: Epoch::Apr2022.start(),
        };
        match auth.handle_query(&encode_message(&q), &ctx) {
            ServerReply::Response(bytes) => {
                let r = decode_message(&bytes).unwrap();
                assert!(!r.a_answers().is_empty());
                assert!(d.fleets.is_ingress(IpAddr::V4(r.a_answers()[0])));
            }
            ServerReply::Dropped => panic!("unlimited server dropped"),
        }
    }
}
