//! A latency model for the QoE extension.
//!
//! §6's concluding future-work list asks *"How does the service impact the
//! user's QoE?"* — Apple claims the impact is low, and §2 notes the egress
//! CDNs run optimised backbones (Cloudflare's Argo) that "might be enough
//! to equalize any latency drawbacks due to the two-hop relay system".
//! [`LatencyModel`] makes that argument quantifiable:
//!
//! * RTT between two points = propagation (fibre-path distance at ~2/3 c,
//!   with a route-stretch factor) + per-hop processing + deterministic
//!   jitter,
//! * the ingress sits close to the client (same-country cluster), the
//!   egress close to the represented location,
//! * the ingress→egress segment runs on the CDN backbone with a
//!   configurable optimisation factor (< 1 models Argo-like routing),
//! * connection establishment compares 1-RTT QUIC through the relay (with
//!   TCP-fast-open-style egress optimisation) against the direct path.

use serde::{Deserialize, Serialize};
use tectonic_geo::coords::haversine_km;
use tectonic_geo::country::{country_info, CountryCode};

/// Round-trip time in milliseconds.
pub type RttMs = f64;

/// The latency model's parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Milliseconds of RTT per kilometre of great-circle distance
    /// (fibre ≈ 0.01 ms/km plus typical route stretch).
    pub ms_per_km: f64,
    /// Fixed per-segment processing/queueing RTT, ms.
    pub per_segment_ms: f64,
    /// Multiplier on the ingress→egress segment (CDN backbone; < 1 means
    /// the backbone beats the public Internet's route stretch).
    pub backbone_factor: f64,
    /// Extra distance (km) between a client and its serving ingress
    /// (the ingress is in-country but not in the client's house).
    pub ingress_detour_km: f64,
    /// Deterministic jitter amplitude, ms (keyed per connection).
    pub jitter_ms: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            ms_per_km: 0.013,
            per_segment_ms: 1.5,
            backbone_factor: 0.75,
            ingress_detour_km: 350.0,
            jitter_ms: 2.0,
        }
    }
}

/// One modelled connection's latency breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnectionLatency {
    /// Direct client→target RTT.
    pub direct_ms: RttMs,
    /// Relayed client→ingress→egress→target RTT.
    pub relayed_ms: RttMs,
    /// client→ingress segment.
    pub to_ingress_ms: RttMs,
    /// ingress→egress backbone segment.
    pub backbone_ms: RttMs,
    /// egress→target segment.
    pub to_target_ms: RttMs,
}

impl ConnectionLatency {
    /// Relayed minus direct RTT (positive = relay costs latency).
    pub fn overhead_ms(&self) -> RttMs {
        self.relayed_ms - self.direct_ms
    }
}

fn centroid(cc: CountryCode) -> (f64, f64) {
    country_info(cc)
        .map(|i| (i.lat, i.lon))
        .unwrap_or((0.0, 0.0))
}

impl LatencyModel {
    /// Deterministic jitter in `[0, jitter_ms)` keyed by `key`.
    fn jitter(&self, key: u64) -> f64 {
        let mut h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
        (h % 1000) as f64 / 1000.0 * self.jitter_ms
    }

    /// RTT for one segment of `km` kilometres.
    fn segment(&self, km: f64, factor: f64, key: u64) -> RttMs {
        km * self.ms_per_km * factor + self.per_segment_ms + self.jitter(key)
    }

    /// Models one connection: a client in `client_cc` reaching a target in
    /// `target_cc`, with the egress representing `egress_cc` (normally the
    /// client's own country/region).
    pub fn connection(
        &self,
        client_cc: CountryCode,
        egress_cc: CountryCode,
        target_cc: CountryCode,
        connection_key: u64,
    ) -> ConnectionLatency {
        let (clat, clon) = centroid(client_cc);
        let (elat, elon) = centroid(egress_cc);
        let (tlat, tlon) = centroid(target_cc);
        let direct_km = haversine_km(clat, clon, tlat, tlon);
        let direct_ms = self.segment(direct_km, 1.0, connection_key ^ 0xD1);
        // Relay: ingress near the client (detour only), egress near the
        // represented location, then on to the target.
        let to_ingress_ms = self.segment(self.ingress_detour_km, 1.0, connection_key ^ 0x11);
        let ingress_to_egress_km = haversine_km(clat, clon, elat, elon) + self.ingress_detour_km;
        let backbone_ms = self.segment(
            ingress_to_egress_km,
            self.backbone_factor,
            connection_key ^ 0xB0,
        );
        let egress_to_target_km = haversine_km(elat, elon, tlat, tlon);
        let to_target_ms = self.segment(
            egress_to_target_km,
            self.backbone_factor,
            connection_key ^ 0x71,
        );
        ConnectionLatency {
            direct_ms,
            relayed_ms: to_ingress_ms + backbone_ms + to_target_ms,
            to_ingress_ms,
            backbone_ms,
            to_target_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cc(s: &str) -> CountryCode {
        CountryCode::new(s).unwrap()
    }

    #[test]
    fn relayed_path_costs_more_segments() {
        let model = LatencyModel::default();
        let conn = model.connection(cc("DE"), cc("DE"), cc("US"), 1);
        assert!(conn.to_ingress_ms > 0.0);
        assert!(conn.backbone_ms > 0.0);
        assert!(conn.to_target_ms > 0.0);
        assert!(
            (conn.relayed_ms - (conn.to_ingress_ms + conn.backbone_ms + conn.to_target_ms)).abs()
                < 1e-9
        );
    }

    #[test]
    fn same_country_target_has_modest_overhead() {
        // DE client, DE egress, DE target: the relay adds detour +
        // segments but no continental crossing.
        let model = LatencyModel::default();
        let conn = model.connection(cc("DE"), cc("DE"), cc("DE"), 7);
        assert!(
            conn.overhead_ms() < 25.0,
            "overhead {:.1}",
            conn.overhead_ms()
        );
    }

    #[test]
    fn backbone_optimisation_reduces_long_haul_overhead() {
        let optimised = LatencyModel::default();
        let unoptimised = LatencyModel {
            backbone_factor: 1.25, // public-Internet route stretch
            ..LatencyModel::default()
        };
        let key = 9;
        let a = optimised.connection(cc("DE"), cc("DE"), cc("US"), key);
        let b = unoptimised.connection(cc("DE"), cc("DE"), cc("US"), key);
        assert!(
            a.overhead_ms() < b.overhead_ms(),
            "optimised {:.1} vs unoptimised {:.1}",
            a.overhead_ms(),
            b.overhead_ms()
        );
        // With the optimised backbone, a trans-Atlantic fetch through the
        // relay stays within ~35 % of the direct RTT — the paper's
        // "might be enough to equalize" scenario.
        assert!(a.relayed_ms < a.direct_ms * 1.35 + 3.0 * optimised.per_segment_ms + 10.0);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let model = LatencyModel::default();
        let a = model.connection(cc("US"), cc("US"), cc("JP"), 42);
        let b = model.connection(cc("US"), cc("US"), cc("JP"), 42);
        assert_eq!(a, b);
        let c = model.connection(cc("US"), cc("US"), cc("JP"), 43);
        assert!((a.relayed_ms - c.relayed_ms).abs() <= 3.0 * model.jitter_ms);
    }

    #[test]
    fn direct_grows_with_distance() {
        let model = LatencyModel::default();
        let near = model.connection(cc("DE"), cc("DE"), cc("FR"), 1);
        let far = model.connection(cc("DE"), cc("DE"), cc("AU"), 1);
        assert!(far.direct_ms > near.direct_ms * 3.0);
    }
}
