//! # tectonic-relay
//!
//! The simulated iCloud Private Relay deployment — the "measured object" of
//! the reproduction. Everything the paper's toolchain observes from the
//! outside is produced here:
//!
//! * [`config`] — every knob of the deployment, with defaults calibrated to
//!   the paper's reported numbers (Table 1 fleet sizes, Table 2 client-AS
//!   structure, Table 3/4 egress structure, §6 prefix census),
//! * [`world`] — the client-side Internet: eyeball ASes with routed
//!   prefixes, country assignment and the Apple/Akamai&#8239;PR service
//!   split,
//! * [`deploy`] — builds the full deployment: ingress fleets per epoch,
//!   egress list and footprints, global RIB, AS topology, visibility
//!   history and AS populations,
//! * [`zone`] — the ECS-aware authoritative logic for `mask.icloud.com` /
//!   `mask-h2.icloud.com` (plugs into `tectonic-dns`),
//! * [`ingress`] — ingress node behaviour (QUIC version negotiation,
//!   connection acceptance),
//! * [`egress`] — egress operator/address selection with per-connection
//!   rotation (§4.3),
//! * [`client`] — the macOS-like device model: open vs fixed DNS, Safari +
//!   curl request pairs, ODoH resolution, the Appendix-B management
//!   connection,
//! * [`session`] — the CONNECT-UDP data plane: ingress admission, the
//!   egress `SessionTable` and per-session traffic counters (§4),
//! * [`path`] — router-level paths and traceroute (last-hop sharing, §6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod deploy;
pub mod egress;
pub mod ingress;
pub mod latency;
pub mod masque;
pub mod path;
pub mod session;
pub mod world;
pub mod zone;

pub use client::{ClientRequest, Device, DnsMode, RequestAgent};
pub use config::{DeploymentConfig, Domain, IngressFleetPlan};
pub use deploy::Deployment;
pub use egress::{EgressSelection, EgressSelector};
pub use ingress::IngressFleets;
pub use latency::{ConnectionLatency, LatencyModel};
pub use masque::{MasqueSession, TokenIssuer, Transport};
pub use path::{RouterHop, RouterTopology};
pub use session::{
    DatagramOutcome, EgressNode, IngressNode, SessionAccept, SessionCounters, SessionReport,
    SessionTable,
};
pub use world::{ClientAs, ClientWorld, ServiceSplit};
pub use zone::MaskZone;
