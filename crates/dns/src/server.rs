//! The authoritative name server and its rate limiter.
//!
//! The paper's ECS scan takes ~40 hours because the `mask.icloud.com`
//! authoritative servers enforce a strict query rate limit (§4.1). The
//! simulated server reproduces that with a per-client token bucket: queries
//! beyond the budget are silently dropped, which a scanner observes as a
//! timeout and must back off from. Everything crosses the wire codec, so
//! both the scanner and the server handle real message bytes.

use std::collections::HashMap;
use std::net::IpAddr;

use bytes::BytesMut;
use parking_lot::Mutex;
use tectonic_net::{SimDuration, SimTime};

use crate::message::{Message, QClass, Rcode};
use crate::wire::{decode_message, encode_message, MessageEncoder};
use crate::zone::{QueryInfo, Zone, ZoneAnswer};

/// Per-query context a server sees.
#[derive(Clone, Copy, Debug)]
pub struct QueryContext {
    /// Source address of the query (resolver or scanner).
    pub src: IpAddr,
    /// Simulated time the query arrives.
    pub now: SimTime,
}

/// What the client observes for one query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServerReply {
    /// A wire-encoded response.
    Response(Vec<u8>),
    /// The query was dropped (rate limit); the client sees a timeout.
    Dropped,
}

/// Outcome of [`NameServer::handle_query_into`] — like [`ServerReply`] but
/// with the response bytes living in the caller's buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplyOutcome {
    /// A response was written into the caller's buffer.
    Written,
    /// The query was dropped (rate limit); the client sees a timeout.
    Dropped,
}

/// Anything that answers DNS queries at the wire level.
pub trait NameServer: Send + Sync {
    /// Handles one wire-format query from `ctx.src` at `ctx.now`.
    fn handle_query(&self, wire: &[u8], ctx: &QueryContext) -> ServerReply;

    /// Like [`handle_query`], but writes the response into `out` (cleared
    /// first) so a caller polling in a loop can reuse one buffer. The
    /// default implementation falls back to [`handle_query`]; servers on a
    /// hot path (see [`AuthoritativeServer`]) override it to encode
    /// directly into `out`.
    ///
    /// [`handle_query`]: NameServer::handle_query
    fn handle_query_into(
        &self,
        wire: &[u8],
        ctx: &QueryContext,
        out: &mut BytesMut,
    ) -> ReplyOutcome {
        match self.handle_query(wire, ctx) {
            ServerReply::Response(bytes) => {
                out.clear();
                out.extend_from_slice(&bytes);
                ReplyOutcome::Written
            }
            ServerReply::Dropped => ReplyOutcome::Dropped,
        }
    }
}

/// Token-bucket rate limit configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RateLimit {
    /// Maximum burst (bucket capacity), in queries.
    pub burst: u32,
    /// Sustained rate, queries per second.
    pub per_second: f64,
}

impl RateLimit {
    /// The limit used for the simulated `mask.icloud.com` servers.
    ///
    /// Chosen so a full routed-space /24 scan (~11 M queries before scope
    /// optimisations) takes tens of hours at the allowed pace, matching the
    /// paper's reported ~40 h scan duration.
    pub fn route53_like() -> RateLimit {
        RateLimit {
            burst: 100,
            per_second: 80.0,
        }
    }
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last: SimTime,
}

/// Per-source token buckets.
#[derive(Debug)]
pub struct RateLimiter {
    config: RateLimit,
    buckets: Mutex<HashMap<IpAddr, Bucket>>,
}

impl RateLimiter {
    /// Creates a limiter with the given config.
    pub fn new(config: RateLimit) -> Self {
        RateLimiter {
            config,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Attempts to spend one token for `src` at time `now`.
    pub fn allow(&self, src: IpAddr, now: SimTime) -> bool {
        let mut buckets = self.buckets.lock();
        let bucket = buckets.entry(src).or_insert(Bucket {
            tokens: self.config.burst as f64,
            last: now,
        });
        let elapsed = now.since(bucket.last);
        bucket.last = now;
        bucket.tokens = (bucket.tokens
            + elapsed.as_millis() as f64 / 1000.0 * self.config.per_second)
            .min(self.config.burst as f64);
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Time until the next token for `src` would be available.
    pub fn retry_after(&self) -> SimDuration {
        SimDuration::from_millis((1000.0 / self.config.per_second).ceil() as u64)
    }
}

/// An authoritative server hosting one or more zones.
pub struct AuthoritativeServer {
    zones: Vec<Zone>,
    rate_limiter: Option<RateLimiter>,
    /// Shared reusable encoder for the scratch-buffer reply path. Under
    /// contention (parallel scan workers) callers fall back to a fresh
    /// encoder rather than serialise on the lock.
    encoder: Mutex<MessageEncoder>,
}

impl std::fmt::Debug for AuthoritativeServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuthoritativeServer")
            .field("zones", &self.zones.len())
            .field("rate_limited", &self.rate_limiter.is_some())
            .finish()
    }
}

impl AuthoritativeServer {
    /// A server with no zones and no rate limit.
    pub fn new() -> Self {
        AuthoritativeServer {
            zones: Vec::new(),
            rate_limiter: None,
            encoder: Mutex::new(MessageEncoder::new()),
        }
    }

    /// Adds a zone.
    pub fn add_zone(&mut self, zone: Zone) {
        self.zones.push(zone);
    }

    /// Enables rate limiting.
    pub fn with_rate_limit(mut self, config: RateLimit) -> Self {
        self.rate_limiter = Some(RateLimiter::new(config));
        self
    }

    /// Builder-style zone addition.
    pub fn with_zone(mut self, zone: Zone) -> Self {
        self.add_zone(zone);
        self
    }

    /// The most specific zone containing `name`.
    fn zone_for(&self, name: &crate::name::DomainName) -> Option<&Zone> {
        self.zones
            .iter()
            .filter(|z| z.contains_name(name))
            .max_by_key(|z| z.apex().label_count())
    }

    /// Typed-message handler (wire handling wraps this).
    pub fn handle_message(&self, query: &Message, ctx: &QueryContext) -> Message {
        let Some(question) = query.question() else {
            return query.response_to(Rcode::FormErr);
        };
        if question.qclass != QClass::IN {
            return query.response_to(Rcode::NotImp);
        }
        let Some(zone) = self.zone_for(&question.name) else {
            return query.response_to(Rcode::Refused);
        };
        let ecs = query.edns.as_ref().and_then(|o| o.ecs());
        let info = QueryInfo {
            src: ctx.src,
            now: ctx.now,
        };
        let mut response = query.response_to(Rcode::NoError);
        response.flags.aa = true;
        match zone.resolve(question, ecs, &info) {
            ZoneAnswer::Answer { records, scope_len } => {
                response.answers = records;
                if let (Some(opt), Some(query_ecs)) = (response.edns.as_mut(), ecs) {
                    let mut echoed = query_ecs.clone();
                    if let Some(scope) = scope_len {
                        echoed.scope_len = scope;
                    }
                    opt.set_ecs(echoed);
                }
            }
            ZoneAnswer::NoData => {}
            ZoneAnswer::NxDomain => {
                response.rcode = Rcode::NxDomain;
            }
        }
        response
    }
}

impl Default for AuthoritativeServer {
    fn default() -> Self {
        Self::new()
    }
}

impl AuthoritativeServer {
    /// The typed reply for one wire query, or `None` on a rate-limit drop.
    fn reply_message(&self, wire: &[u8], ctx: &QueryContext) -> Option<Message> {
        if let Some(limiter) = &self.rate_limiter {
            if !limiter.allow(ctx.src, ctx.now) {
                return None;
            }
        }
        let query = match decode_message(wire) {
            Ok(q) => q,
            Err(_) => {
                // Cannot mirror an ID we failed to parse; best effort.
                let mut resp =
                    Message::query(0, crate::name::DomainName::root(), crate::message::QType::A)
                        .response_to(Rcode::FormErr);
                resp.questions.clear();
                return Some(resp);
            }
        };
        Some(self.handle_message(&query, ctx))
    }
}

impl NameServer for AuthoritativeServer {
    fn handle_query(&self, wire: &[u8], ctx: &QueryContext) -> ServerReply {
        match self.reply_message(wire, ctx) {
            Some(response) => ServerReply::Response(encode_message(&response)),
            None => ServerReply::Dropped,
        }
    }

    fn handle_query_into(
        &self,
        wire: &[u8],
        ctx: &QueryContext,
        out: &mut BytesMut,
    ) -> ReplyOutcome {
        let Some(response) = self.reply_message(wire, ctx) else {
            return ReplyOutcome::Dropped;
        };
        match self.encoder.try_lock() {
            Some(mut encoder) => encoder.encode_into(&response, out),
            None => MessageEncoder::new().encode_into(&response, out),
        }
        ReplyOutcome::Written
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edns::EcsOption;
    use crate::message::{QType, RData, Record};
    use crate::name::{mask_domain, DomainName};
    use crate::zone::Zone;
    use std::net::Ipv4Addr;

    fn ctx(now_ms: u64) -> QueryContext {
        QueryContext {
            src: "198.51.100.77".parse().unwrap(),
            now: SimTime(now_ms),
        }
    }

    fn server() -> AuthoritativeServer {
        let mut zone = Zone::new("icloud.com".parse().unwrap());
        zone.add_record(Record::new(
            mask_domain(),
            60,
            RData::A(Ipv4Addr::new(17, 7, 8, 9)),
        ));
        AuthoritativeServer::new().with_zone(zone)
    }

    fn ask(server: &AuthoritativeServer, q: &Message, ctx: &QueryContext) -> Message {
        match server.handle_query(&encode_message(q), ctx) {
            ServerReply::Response(bytes) => decode_message(&bytes).unwrap(),
            ServerReply::Dropped => panic!("unexpected drop"),
        }
    }

    #[test]
    fn answers_in_zone_queries() {
        let s = server();
        let q = Message::query(0xAB, mask_domain(), QType::A);
        let r = ask(&s, &q, &ctx(0));
        assert_eq!(r.id, 0xAB);
        assert!(r.flags.qr && r.flags.aa);
        assert_eq!(r.a_answers(), vec![Ipv4Addr::new(17, 7, 8, 9)]);
    }

    #[test]
    fn refuses_out_of_zone() {
        let s = server();
        let q = Message::query(1, "example.org".parse().unwrap(), QType::A);
        assert_eq!(ask(&s, &q, &ctx(0)).rcode, Rcode::Refused);
    }

    #[test]
    fn nxdomain_inside_zone() {
        let s = server();
        let q = Message::query(1, "nope.icloud.com".parse().unwrap(), QType::A);
        assert_eq!(ask(&s, &q, &ctx(0)).rcode, Rcode::NxDomain);
    }

    #[test]
    fn nodata_keeps_noerror() {
        let s = server();
        let q = Message::query(1, mask_domain(), QType::TXT);
        let r = ask(&s, &q, &ctx(0));
        assert_eq!(r.rcode, Rcode::NoError);
        assert!(r.answers.is_empty());
        assert!(r.is_noerror_nodata());
    }

    #[test]
    fn echoes_ecs_with_scope() {
        let s = server();
        let mut q = Message::query(2, mask_domain(), QType::A);
        q.edns
            .as_mut()
            .unwrap()
            .set_ecs(EcsOption::for_v4_net("100.64.3.0/24".parse().unwrap()));
        let r = ask(&s, &q, &ctx(0));
        // Static zone answer: ECS echoed with scope untouched (0).
        let ecs = r.edns.unwrap();
        let e = ecs.ecs().unwrap();
        assert_eq!(e.source_len, 24);
    }

    #[test]
    fn most_specific_zone_wins() {
        let mut parent = Zone::new("icloud.com".parse().unwrap());
        parent.add_record(Record::new(
            mask_domain(),
            60,
            RData::A(Ipv4Addr::new(1, 1, 1, 1)),
        ));
        let mut child = Zone::new("mask.icloud.com".parse().unwrap());
        child.add_record(Record::new(
            mask_domain(),
            60,
            RData::A(Ipv4Addr::new(2, 2, 2, 2)),
        ));
        let s = AuthoritativeServer::new()
            .with_zone(parent)
            .with_zone(child);
        let q = Message::query(1, mask_domain(), QType::A);
        assert_eq!(
            ask(&s, &q, &ctx(0)).a_answers(),
            vec![Ipv4Addr::new(2, 2, 2, 2)]
        );
    }

    #[test]
    fn rate_limiter_drops_excess_and_refills() {
        let config = RateLimit {
            burst: 3,
            per_second: 1.0,
        };
        let limiter = RateLimiter::new(config);
        let src: IpAddr = "203.0.113.1".parse().unwrap();
        let t0 = SimTime(0);
        assert!(limiter.allow(src, t0));
        assert!(limiter.allow(src, t0));
        assert!(limiter.allow(src, t0));
        assert!(!limiter.allow(src, t0));
        // One second later one token is back.
        let t1 = SimTime(1000);
        assert!(limiter.allow(src, t1));
        assert!(!limiter.allow(src, t1));
        // Another source has its own bucket.
        let other: IpAddr = "203.0.113.2".parse().unwrap();
        assert!(limiter.allow(other, t1));
    }

    #[test]
    fn rate_limited_server_drops() {
        let s = AuthoritativeServer::new()
            .with_zone(Zone::new("icloud.com".parse().unwrap()))
            .with_rate_limit(RateLimit {
                burst: 1,
                per_second: 0.001,
            });
        let q = Message::query(1, mask_domain(), QType::A);
        let wire = encode_message(&q);
        let c = ctx(0);
        assert!(matches!(
            s.handle_query(&wire, &c),
            ServerReply::Response(_)
        ));
        assert_eq!(s.handle_query(&wire, &c), ServerReply::Dropped);
    }

    #[test]
    fn garbage_wire_gets_formerr() {
        let s = server();
        match s.handle_query(&[0xFF, 0x00, 0x01], &ctx(0)) {
            ServerReply::Response(bytes) => {
                let r = decode_message(&bytes).unwrap();
                assert_eq!(r.rcode, Rcode::FormErr);
            }
            ServerReply::Dropped => panic!("should answer FORMERR"),
        }
    }

    #[test]
    fn non_in_class_not_implemented() {
        let s = server();
        let mut q = Message::query(1, mask_domain(), QType::A);
        q.questions[0].qclass = QClass::Other(3); // CHAOS
        assert_eq!(ask(&s, &q, &ctx(0)).rcode, Rcode::NotImp);
    }

    #[test]
    fn empty_question_is_formerr() {
        let s = server();
        let mut q = Message::query(1, DomainName::root(), QType::A);
        q.questions.clear();
        assert_eq!(ask(&s, &q, &ctx(0)).rcode, Rcode::FormErr);
    }

    #[test]
    fn retry_after_reflects_rate() {
        let limiter = RateLimiter::new(RateLimit {
            burst: 1,
            per_second: 80.0,
        });
        assert_eq!(limiter.retry_after(), SimDuration::from_millis(13));
    }
}
