//! EDNS0 (RFC 6891) and the Client Subnet option (RFC 7871).
//!
//! ECS is the paper's key instrument: the authoritative servers for
//! `mask.icloud.com` honour the client subnet attached by the resolver, so
//! iterating `/24` subnets through the ECS option enumerates the ingress
//! fleet from a single vantage point. This module implements the option
//! including the truncation rule (only `ceil(source_len / 8)` address octets
//! are transmitted, spare low bits zero) and the *scope* semantics the
//! ethical scanner honours: a response scope shorter than the query source
//! declares the answer valid for the whole shorter prefix, letting the
//! scanner skip redundant queries (§7 of the paper).

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use serde::{Deserialize, Serialize};

use tectonic_net::{IpNet, Ipv4Net, Ipv6Net};

/// RFC 7871 address family codes.
const FAMILY_V4: u16 = 1;
const FAMILY_V6: u16 = 2;

/// An EDNS0 Client Subnet option.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct EcsOption {
    /// Client address with bits beyond `source_len` zeroed.
    pub addr: IpAddr,
    /// Prefix length the client (or scanner) asserts.
    pub source_len: u8,
    /// Prefix length the answer is valid for; 0 in queries. For IPv6 queries
    /// the simulated Route 53 always answers scope 0 — the behaviour that
    /// forces the paper onto RIPE Atlas for AAAA enumeration.
    pub scope_len: u8,
}

impl EcsOption {
    /// Builds a query option for an IPv4 subnet (scope 0 as required by the
    /// RFC for queries). Host bits below `source_len` are cleared.
    pub fn for_v4_net(net: Ipv4Net) -> EcsOption {
        EcsOption {
            addr: IpAddr::V4(net.network()),
            source_len: net.len(),
            scope_len: 0,
        }
    }

    /// Builds a query option for an IPv6 subnet.
    pub fn for_v6_net(net: Ipv6Net) -> EcsOption {
        EcsOption {
            addr: IpAddr::V6(net.network()),
            source_len: net.len(),
            scope_len: 0,
        }
    }

    /// The RFC 7871 family code.
    pub fn family(&self) -> u16 {
        match self.addr {
            IpAddr::V4(_) => FAMILY_V4,
            IpAddr::V6(_) => FAMILY_V6,
        }
    }

    /// The query subnet as a prefix.
    pub fn source_net(&self) -> IpNet {
        match self.addr {
            IpAddr::V4(a) => IpNet::V4(Ipv4Net::clamped(a, self.source_len)),
            IpAddr::V6(a) => IpNet::V6(Ipv6Net::clamped(a, self.source_len)),
        }
    }

    /// The prefix the *answer* covers: the scope if non-zero, otherwise the
    /// whole address space of the family (scope 0 = "valid everywhere").
    pub fn scope_net(&self) -> IpNet {
        match self.addr {
            IpAddr::V4(a) => IpNet::V4(Ipv4Net::clamped(a, self.scope_len)),
            IpAddr::V6(a) => IpNet::V6(Ipv6Net::clamped(a, self.scope_len)),
        }
    }

    /// Number of address octets transmitted on the wire.
    pub fn wire_addr_octets(&self) -> usize {
        (self.source_len as usize).div_ceil(8)
    }

    /// Encodes the option payload (family, lengths, truncated address) into
    /// a fixed buffer, returning the bytes and the payload length. The
    /// payload is at most 4 header bytes + 16 address octets, so the hot
    /// wire-encode path can write it without touching the heap.
    pub fn wire_bytes(&self) -> ([u8; 20], usize) {
        let mut out = [0u8; 20];
        out[..2].copy_from_slice(&self.family().to_be_bytes());
        out[2] = self.source_len;
        out[3] = self.scope_len;
        let n = match self.addr {
            IpAddr::V4(a) => {
                let octets = a.octets();
                let n = self.wire_addr_octets().min(octets.len());
                out[4..4 + n].copy_from_slice(&octets[..n]);
                n
            }
            IpAddr::V6(a) => {
                let octets = a.octets();
                let n = self.wire_addr_octets().min(octets.len());
                out[4..4 + n].copy_from_slice(&octets[..n]);
                n
            }
        };
        // Zero spare low bits of the last transmitted octet.
        let spare = (8 - (self.source_len % 8) % 8) % 8;
        if spare != 0 && n > 0 {
            out[3 + n] &= 0xFFu8 << spare;
        }
        (out, 4 + n)
    }

    /// Encodes the option payload (family, lengths, truncated address).
    pub fn encode(&self) -> Vec<u8> {
        let (bytes, len) = self.wire_bytes();
        bytes[..len].to_vec()
    }

    /// Decodes an option payload. Returns `None` on malformed input
    /// (unknown family, address octets inconsistent with `source_len`).
    pub fn decode(payload: &[u8]) -> Option<EcsOption> {
        let [f0, f1, source_len, scope_len, addr_bytes @ ..] = payload else {
            return None;
        };
        let family = u16::from_be_bytes([*f0, *f1]);
        let (source_len, scope_len) = (*source_len, *scope_len);
        let needed = (source_len as usize).div_ceil(8);
        if addr_bytes.len() < needed {
            return None;
        }
        let addr = match family {
            FAMILY_V4 => {
                if source_len > 32 || needed > 4 {
                    return None;
                }
                let mut o = [0u8; 4];
                o[..needed].copy_from_slice(&addr_bytes[..needed]);
                IpAddr::V4(Ipv4Addr::from(o))
            }
            FAMILY_V6 => {
                if source_len > 128 || needed > 16 {
                    return None;
                }
                let mut o = [0u8; 16];
                o[..needed].copy_from_slice(&addr_bytes[..needed]);
                IpAddr::V6(Ipv6Addr::from(o))
            }
            _ => return None,
        };
        Some(EcsOption {
            addr,
            source_len,
            scope_len,
        })
    }
}

/// An EDNS0 option.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum EdnsOption {
    /// RFC 7871 Client Subnet.
    ClientSubnet(EcsOption),
    /// Any other option, kept as `(code, payload)`.
    Other(u16, Vec<u8>),
}

impl EdnsOption {
    /// The option code (ECS is 8).
    pub fn code(&self) -> u16 {
        match self {
            EdnsOption::ClientSubnet(_) => 8,
            EdnsOption::Other(code, _) => *code,
        }
    }
}

/// The EDNS0 OPT pseudo-record.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct OptRecord {
    /// Advertised UDP payload size.
    pub udp_size: u16,
    /// Extended rcode high bits (unused here, kept for fidelity).
    pub ext_rcode: u8,
    /// EDNS version (0).
    pub version: u8,
    /// The options list.
    pub options: Vec<EdnsOption>,
}

impl Default for OptRecord {
    fn default() -> Self {
        OptRecord {
            udp_size: 1232,
            ext_rcode: 0,
            version: 0,
            options: Vec::new(),
        }
    }
}

impl OptRecord {
    /// An OPT record carrying a single ECS option.
    pub fn with_ecs(ecs: EcsOption) -> OptRecord {
        OptRecord {
            options: vec![EdnsOption::ClientSubnet(ecs)],
            ..OptRecord::default()
        }
    }

    /// The ECS option, if present.
    pub fn ecs(&self) -> Option<&EcsOption> {
        self.options.iter().find_map(|o| match o {
            EdnsOption::ClientSubnet(e) => Some(e),
            EdnsOption::Other(..) => None,
        })
    }

    /// Replaces (or inserts) the ECS option.
    pub fn set_ecs(&mut self, ecs: EcsOption) {
        self.options
            .retain(|o| !matches!(o, EdnsOption::ClientSubnet(_)));
        self.options.push(EdnsOption::ClientSubnet(ecs));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v4net(s: &str) -> Ipv4Net {
        s.parse().unwrap()
    }

    #[test]
    fn ecs_for_slash24() {
        let e = EcsOption::for_v4_net(v4net("100.64.3.0/24"));
        assert_eq!(e.family(), 1);
        assert_eq!(e.source_len, 24);
        assert_eq!(e.scope_len, 0);
        assert_eq!(e.wire_addr_octets(), 3);
    }

    #[test]
    fn encode_truncates_address() {
        let e = EcsOption::for_v4_net(v4net("203.0.113.0/24"));
        let w = e.encode();
        assert_eq!(w, vec![0, 1, 24, 0, 203, 0, 113]);
    }

    #[test]
    fn encode_zeroes_spare_bits() {
        // /22 transmits 3 octets; the third octet keeps only its top 6 bits.
        let e = EcsOption {
            addr: IpAddr::V4(Ipv4Addr::new(10, 20, 0b1111_1100, 0)),
            source_len: 22,
            scope_len: 0,
        };
        let w = e.encode();
        assert_eq!(w[6], 0b1111_1100);
        let e2 = EcsOption {
            addr: IpAddr::V4(Ipv4Addr::new(10, 20, 0b1111_1111, 0)),
            source_len: 22,
            scope_len: 0,
        };
        assert_eq!(e2.encode()[6], 0b1111_1100);
    }

    #[test]
    fn decode_round_trip_v4_and_v6() {
        let e = EcsOption::for_v4_net(v4net("198.51.100.0/24"));
        assert_eq!(EcsOption::decode(&e.encode()), Some(e));
        let e6 = EcsOption::for_v6_net("2001:db8:77::/48".parse().unwrap());
        let back = EcsOption::decode(&e6.encode()).unwrap();
        assert_eq!(back.family(), 2);
        assert_eq!(back.source_len, 48);
        assert_eq!(back.addr, "2001:db8:77::".parse::<IpAddr>().unwrap());
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(EcsOption::decode(&[]).is_none());
        assert!(EcsOption::decode(&[0, 1, 24]).is_none()); // too short
        assert!(EcsOption::decode(&[0, 9, 8, 0, 1]).is_none()); // bad family
        assert!(EcsOption::decode(&[0, 1, 24, 0, 1, 2]).is_none()); // missing octet
        assert!(EcsOption::decode(&[0, 1, 40, 0, 1, 2, 3, 4, 5]).is_none()); // v4 len > 32
    }

    #[test]
    fn scope_net_zero_means_everything() {
        let mut e = EcsOption::for_v4_net(v4net("100.64.3.0/24"));
        e.scope_len = 0;
        assert!(e.scope_net().is_default());
        e.scope_len = 16;
        assert_eq!(e.scope_net().to_string(), "100.64.0.0/16");
        assert_eq!(e.source_net().to_string(), "100.64.3.0/24");
    }

    #[test]
    fn opt_record_ecs_accessors() {
        let mut opt = OptRecord::default();
        assert!(opt.ecs().is_none());
        let e = EcsOption::for_v4_net(v4net("192.0.2.0/24"));
        opt.set_ecs(e.clone());
        assert_eq!(opt.ecs(), Some(&e));
        let e2 = EcsOption::for_v4_net(v4net("198.51.100.0/24"));
        opt.set_ecs(e2.clone());
        assert_eq!(opt.options.len(), 1);
        assert_eq!(opt.ecs(), Some(&e2));
        let viactor = OptRecord::with_ecs(e2.clone());
        assert_eq!(viactor.ecs(), Some(&e2));
    }

    #[test]
    fn option_codes() {
        let e = EcsOption::for_v4_net(v4net("192.0.2.0/24"));
        assert_eq!(EdnsOption::ClientSubnet(e).code(), 8);
        assert_eq!(EdnsOption::Other(10, vec![]).code(), 10);
    }

    #[test]
    fn default_opt_is_ednsv0() {
        let opt = OptRecord::default();
        assert_eq!(opt.version, 0);
        assert!(opt.udp_size >= 512);
    }
}
