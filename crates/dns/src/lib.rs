//! # tectonic-dns
//!
//! A self-contained DNS implementation sized for the paper's needs: the ECS
//! enumeration scan (§3/§4.1), the RIPE-Atlas-style resolution campaigns,
//! and the service-blocking survey all run on top of this crate.
//!
//! Layers, bottom up:
//!
//! * [`name`] — domain names with RFC 1035 label rules,
//! * [`message`] — messages, questions, resource records and rdata,
//! * [`wire`] — binary encoding/decoding with name compression,
//! * [`edns`] — EDNS0 OPT pseudo-records and the RFC 7871 Client Subnet
//!   option, including the address-truncation rules the scanner relies on,
//! * [`zone`] — static zone data plus a hook ([`zone::EcsAnswerer`]) for
//!   dynamic, subnet-dependent answers (how the simulated Route 53 serves
//!   `mask.icloud.com`),
//! * [`server`] — an authoritative server with per-client token-bucket rate
//!   limiting (the reason the paper's ECS scan takes 40 hours),
//! * [`resolver`] — recursive resolvers with configurable *blocking
//!   policies* (NXDOMAIN, NOERROR-no-data, REFUSED, SERVFAIL, FORMERR,
//!   hijack, timeout), modelling the resolvers behind RIPE Atlas probes.
//!
//! The crate performs no network I/O: "sending" a query means calling
//! [`server::NameServer::handle_query`]. This keeps every experiment
//! deterministic while exercising real wire encoding on both sides.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edns;
pub mod message;
pub mod name;
pub mod resolver;
pub mod server;
pub mod template;
pub mod wire;
pub mod zone;

pub use edns::{EcsOption, EdnsOption, OptRecord};
pub use message::{Message, QClass, QType, Question, RData, Rcode, Record};
pub use name::DomainName;
pub use resolver::{ResolutionOutcome, Resolver, ResolverKind, ResolverPolicy};
pub use server::{AuthoritativeServer, NameServer, QueryContext, ReplyOutcome, ServerReply};
pub use template::{PatchedQuery, QueryTemplate};
pub use wire::{decode_message, encode_message, encode_message_into, DnsWireError, MessageEncoder};
pub use zone::{EcsAnswer, EcsAnswerer, Zone};
