//! Zone data and dynamic, ECS-aware answer hooks.
//!
//! A [`Zone`] holds ordinary static records plus an optional
//! [`EcsAnswerer`] — the hook through which `tectonic-relay` plugs the
//! simulated Route 53 behaviour for `mask.icloud.com`: answers that depend
//! on the client subnet carried in the ECS option (or, absent ECS, on the
//! resolver's source address).

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Arc;

use tectonic_net::SimTime;

use crate::edns::EcsOption;
use crate::message::{QType, Question, RData, Record};
use crate::name::DomainName;

/// Context available to answer logic: who asked, and when.
#[derive(Clone, Copy, Debug)]
pub struct QueryInfo {
    /// Source address of the query as seen by the server (the resolver's
    /// address, not the end client's).
    pub src: IpAddr,
    /// Simulated time of the query.
    pub now: SimTime,
}

/// A dynamic answer produced by an [`EcsAnswerer`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EcsAnswer {
    /// Record data for the answer section (all for the queried name).
    pub rdatas: Vec<RData>,
    /// TTL for the answer records.
    pub ttl: u32,
    /// ECS scope to return. For IPv4 the simulated service answers with the
    /// query's source length (/24); for IPv6 it answers scope 0 — the exact
    /// behaviour that blocks ECS enumeration over IPv6 in the paper.
    pub scope_len: u8,
}

/// Dynamic answer logic attached to a zone.
///
/// Returning `None` falls through to the zone's static records; returning
/// an empty `rdatas` produces a NOERROR/no-data response.
pub trait EcsAnswerer: Send + Sync {
    /// Answers `question`, optionally considering the ECS option and the
    /// query context.
    fn answer(
        &self,
        question: &Question,
        ecs: Option<&EcsOption>,
        info: &QueryInfo,
    ) -> Option<EcsAnswer>;
}

/// A DNS zone: an apex name, static records, and an optional dynamic hook.
pub struct Zone {
    apex: DomainName,
    records: HashMap<(DomainName, u16), Vec<Record>>,
    dynamic: Option<Arc<dyn EcsAnswerer>>,
}

impl std::fmt::Debug for Zone {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Zone")
            .field("apex", &self.apex)
            .field("records", &self.records.len())
            .field("dynamic", &self.dynamic.is_some())
            .finish()
    }
}

impl Zone {
    /// An empty zone rooted at `apex`.
    pub fn new(apex: DomainName) -> Self {
        Zone {
            apex,
            records: HashMap::new(),
            dynamic: None,
        }
    }

    /// The zone apex.
    pub fn apex(&self) -> &DomainName {
        &self.apex
    }

    /// Installs the dynamic answer hook.
    pub fn with_dynamic(mut self, answerer: Arc<dyn EcsAnswerer>) -> Self {
        self.dynamic = Some(answerer);
        self
    }

    /// Adds a static record. The owner name must be within the zone.
    pub fn add_record(&mut self, record: Record) {
        debug_assert!(
            record.name.is_within(&self.apex),
            "record {} outside zone {}",
            record.name,
            self.apex
        );
        let key = (record.name.clone(), record.rdata.rtype().number());
        self.records.entry(key).or_default().push(record);
    }

    /// Convenience: add an A/AAAA record for `name`.
    pub fn add_address(&mut self, name: DomainName, ttl: u32, addr: IpAddr) {
        let rdata = match addr {
            IpAddr::V4(a) => RData::A(a),
            IpAddr::V6(a) => RData::Aaaa(a),
        };
        self.add_record(Record::new(name, ttl, rdata));
    }

    /// Whether `name` falls inside this zone.
    pub fn contains_name(&self, name: &DomainName) -> bool {
        name.is_within(&self.apex)
    }

    /// Whether any record (of any type) exists at `name`.
    pub fn name_exists(&self, name: &DomainName) -> bool {
        self.records.keys().any(|(n, _)| n == name)
    }

    /// Static records at `name` of `qtype`.
    pub fn lookup_static(&self, name: &DomainName, qtype: QType) -> Vec<Record> {
        self.records
            .get(&(name.clone(), qtype.number()))
            .cloned()
            .unwrap_or_default()
    }

    /// Resolves a question inside this zone.
    ///
    /// Order: dynamic hook first (if installed), then static records with a
    /// one-step CNAME chase, then the NXDOMAIN / no-data distinction.
    pub fn resolve(
        &self,
        question: &Question,
        ecs: Option<&EcsOption>,
        info: &QueryInfo,
    ) -> ZoneAnswer {
        if let Some(dynamic) = &self.dynamic {
            if let Some(ans) = dynamic.answer(question, ecs, info) {
                let records = ans
                    .rdatas
                    .into_iter()
                    .map(|rd| Record::new(question.name.clone(), ans.ttl, rd))
                    .collect();
                return ZoneAnswer::Answer {
                    records,
                    scope_len: Some(ans.scope_len),
                };
            }
        }
        let direct = self.lookup_static(&question.name, question.qtype);
        if !direct.is_empty() {
            return ZoneAnswer::Answer {
                records: direct,
                scope_len: None,
            };
        }
        // CNAME chase (single step is enough for the simulated zones).
        let cnames = self.lookup_static(&question.name, QType::CNAME);
        if let Some(cname_rec) = cnames.first() {
            if let RData::Cname(target) = &cname_rec.rdata {
                let mut records = vec![cname_rec.clone()];
                records.extend(self.lookup_static(target, question.qtype));
                return ZoneAnswer::Answer {
                    records,
                    scope_len: None,
                };
            }
        }
        if self.name_exists(&question.name) {
            ZoneAnswer::NoData
        } else {
            ZoneAnswer::NxDomain
        }
    }
}

/// Result of resolving a question inside a zone.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ZoneAnswer {
    /// Records found (possibly via CNAME). `scope_len` is set when the
    /// answer came from the dynamic ECS hook.
    Answer {
        /// Answer-section records.
        records: Vec<Record>,
        /// ECS scope to report, when ECS-derived.
        scope_len: Option<u8>,
    },
    /// Name exists but has no records of the queried type.
    NoData,
    /// Name does not exist in the zone.
    NxDomain,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::QClass;
    use std::net::Ipv4Addr;

    fn info() -> QueryInfo {
        QueryInfo {
            src: "192.0.2.53".parse().unwrap(),
            now: SimTime::EPOCH,
        }
    }

    fn q(name: &str, qtype: QType) -> Question {
        Question {
            name: name.parse().unwrap(),
            qtype,
            qclass: QClass::IN,
        }
    }

    fn test_zone() -> Zone {
        let mut z = Zone::new("icloud.com".parse().unwrap());
        z.add_address(
            "www.icloud.com".parse().unwrap(),
            300,
            "17.253.1.1".parse().unwrap(),
        );
        z.add_address(
            "www.icloud.com".parse().unwrap(),
            300,
            "2620:149::1".parse().unwrap(),
        );
        z.add_record(Record::new(
            "alias.icloud.com".parse().unwrap(),
            300,
            RData::Cname("www.icloud.com".parse().unwrap()),
        ));
        z
    }

    #[test]
    fn static_lookup_by_type() {
        let z = test_zone();
        match z.resolve(&q("www.icloud.com", QType::A), None, &info()) {
            ZoneAnswer::Answer { records, scope_len } => {
                assert_eq!(records.len(), 1);
                assert_eq!(records[0].rdata.as_a(), Some(Ipv4Addr::new(17, 253, 1, 1)));
                assert_eq!(scope_len, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nxdomain_vs_nodata() {
        let z = test_zone();
        assert_eq!(
            z.resolve(&q("missing.icloud.com", QType::A), None, &info()),
            ZoneAnswer::NxDomain
        );
        assert_eq!(
            z.resolve(&q("www.icloud.com", QType::TXT), None, &info()),
            ZoneAnswer::NoData
        );
    }

    #[test]
    fn cname_chase_includes_target_records() {
        let z = test_zone();
        match z.resolve(&q("alias.icloud.com", QType::A), None, &info()) {
            ZoneAnswer::Answer { records, .. } => {
                assert_eq!(records.len(), 2);
                assert!(matches!(records[0].rdata, RData::Cname(_)));
                assert!(matches!(records[1].rdata, RData::A(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    struct FixedAnswerer;

    impl EcsAnswerer for FixedAnswerer {
        fn answer(
            &self,
            question: &Question,
            ecs: Option<&EcsOption>,
            _info: &QueryInfo,
        ) -> Option<EcsAnswer> {
            if question.name.to_string() != "mask.icloud.com" {
                return None;
            }
            let scope = ecs.map(|e| e.source_len).unwrap_or(0);
            Some(EcsAnswer {
                rdatas: vec![RData::A(Ipv4Addr::new(17, 0, 0, 1))],
                ttl: 60,
                scope_len: scope,
            })
        }
    }

    #[test]
    fn dynamic_answer_takes_precedence_and_reports_scope() {
        let mut z = Zone::new("icloud.com".parse().unwrap());
        z.add_address(
            "mask.icloud.com".parse().unwrap(),
            300,
            "203.0.113.9".parse().unwrap(),
        );
        let z = z.with_dynamic(Arc::new(FixedAnswerer));
        let ecs = EcsOption::for_v4_net("100.64.3.0/24".parse().unwrap());
        match z.resolve(&q("mask.icloud.com", QType::A), Some(&ecs), &info()) {
            ZoneAnswer::Answer { records, scope_len } => {
                assert_eq!(records[0].rdata.as_a(), Some(Ipv4Addr::new(17, 0, 0, 1)));
                assert_eq!(scope_len, Some(24));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Non-matching name falls through to static data.
        match z.resolve(&q("www.icloud.com", QType::A), Some(&ecs), &info()) {
            ZoneAnswer::NxDomain => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn contains_name_respects_zone_cut() {
        let z = test_zone();
        assert!(z.contains_name(&"deep.sub.icloud.com".parse().unwrap()));
        assert!(!z.contains_name(&"apple.com".parse().unwrap()));
    }
}
