//! Recursive resolvers and blocking policies.
//!
//! RIPE Atlas probes resolve through whatever resolver their host network
//! provides. The paper finds >50 % of probes behind the big public
//! resolvers, and 5.5 % behind resolvers that *block* the Private Relay
//! domains — answering NXDOMAIN, empty NOERROR, REFUSED, SERVFAIL, FORMERR,
//! timing out, or hijacking the name (the observed `nextdns.io` case).
//! [`ResolverPolicy`] models exactly those behaviours; the blocking survey
//! in `tectonic-core` classifies them from the outside, the way the paper
//! does.

use std::net::{IpAddr, Ipv4Addr};

use parking_lot::Mutex;
use tectonic_net::{Ipv4Net, SimTime};

use crate::edns::EcsOption;
use crate::message::{Message, QType, RData, Rcode};
use crate::name::DomainName;
use crate::server::{NameServer, QueryContext, ServerReply};
use crate::wire::{decode_message, encode_message};

/// Which resolver service a probe uses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ResolverKind {
    /// Google Public DNS (8.8.8.8).
    GooglePublic,
    /// Cloudflare 1.1.1.1.
    CloudflarePublic,
    /// Quad9 (9.9.9.9).
    Quad9,
    /// Cisco OpenDNS.
    OpenDns,
    /// The ISP's own recursive resolver.
    Isp,
    /// A resolver running on the probe's own network segment (forwarder,
    /// CPE, or local unbound).
    Local,
}

impl ResolverKind {
    /// The four public services the paper identifies via
    /// `whoami.akamai.net`, in its listing order.
    pub const PUBLIC: [ResolverKind; 4] = [
        ResolverKind::GooglePublic,
        ResolverKind::CloudflarePublic,
        ResolverKind::Quad9,
        ResolverKind::OpenDns,
    ];

    /// The well-known service address, if this is a public service.
    pub fn well_known_addr(&self) -> Option<IpAddr> {
        match self {
            ResolverKind::GooglePublic => Some(IpAddr::V4(Ipv4Addr::new(8, 8, 8, 8))),
            ResolverKind::CloudflarePublic => Some(IpAddr::V4(Ipv4Addr::new(1, 1, 1, 1))),
            ResolverKind::Quad9 => Some(IpAddr::V4(Ipv4Addr::new(9, 9, 9, 9))),
            ResolverKind::OpenDns => Some(IpAddr::V4(Ipv4Addr::new(208, 67, 222, 222))),
            ResolverKind::Isp | ResolverKind::Local => None,
        }
    }

    /// Whether this is one of the four public services.
    pub fn is_public(&self) -> bool {
        self.well_known_addr().is_some()
    }

    /// Whether the service attaches ECS when forwarding to authoritatives.
    ///
    /// Google and OpenDNS do; Cloudflare and Quad9 famously do not (privacy
    /// stance); ISP/local resolvers in the simulation do not either, so the
    /// authoritative falls back to the resolver's source subnet.
    pub fn sends_ecs(&self) -> bool {
        matches!(self, ResolverKind::GooglePublic | ResolverKind::OpenDns)
    }
}

/// What a resolver does with queries for blocked names.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ResolverPolicy {
    /// Resolve everything normally.
    Normal,
    /// Claim the name does not exist.
    BlockNxDomain,
    /// Answer NOERROR with an empty answer section.
    BlockNoData,
    /// Refuse the query.
    BlockRefused,
    /// Fail the query.
    BlockServFail,
    /// Answer FORMERR (observed from broken middleboxes).
    BlockFormErr,
    /// Answer with a different address — DNS hijack (the `nextdns.io`
    /// observation in §4.1).
    Hijack(Ipv4Addr),
    /// Silently drop queries for blocked names.
    Timeout,
}

impl ResolverPolicy {
    /// Whether the policy blocks access (anything but `Normal`).
    pub fn is_blocking(&self) -> bool {
        !matches!(self, ResolverPolicy::Normal)
    }
}

/// A recursive resolver as seen from a client.
pub struct Resolver {
    kind: ResolverKind,
    /// Address this resolver uses toward authoritative servers.
    addr: IpAddr,
    policy: ResolverPolicy,
    /// Domain suffixes the policy applies to (empty = policy applies to
    /// nothing, i.e. behaves like `Normal`).
    blocked_suffixes: Vec<DomainName>,
    next_id: Mutex<u16>,
}

impl std::fmt::Debug for Resolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Resolver")
            .field("kind", &self.kind)
            .field("addr", &self.addr)
            .field("policy", &self.policy)
            .finish()
    }
}

/// Outcome of a resolution attempt, as the client sees it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResolutionOutcome {
    /// A response arrived (any rcode).
    Answered(Message),
    /// No response within the client's timeout.
    Timeout,
}

impl ResolutionOutcome {
    /// The response, if one arrived.
    pub fn message(&self) -> Option<&Message> {
        match self {
            ResolutionOutcome::Answered(m) => Some(m),
            ResolutionOutcome::Timeout => None,
        }
    }
}

impl Resolver {
    /// A normally-behaving resolver.
    pub fn new(kind: ResolverKind, addr: IpAddr) -> Self {
        Resolver {
            kind,
            addr,
            policy: ResolverPolicy::Normal,
            blocked_suffixes: Vec::new(),
            next_id: Mutex::new(1),
        }
    }

    /// A public resolver at its well-known address.
    pub fn public(kind: ResolverKind) -> Self {
        let addr = kind
            .well_known_addr()
            // lintkit: allow(no-panic) -- API contract: callers pass a public resolver kind; the ISP kind has no well-known address
            .expect("public() requires a public resolver kind");
        Resolver::new(kind, addr)
    }

    /// Applies `policy` to names under any of `suffixes`.
    pub fn with_policy(mut self, policy: ResolverPolicy, suffixes: Vec<DomainName>) -> Self {
        self.policy = policy;
        self.blocked_suffixes = suffixes;
        self
    }

    /// The resolver's kind.
    pub fn kind(&self) -> ResolverKind {
        self.kind
    }

    /// The address the resolver queries authoritatives from.
    pub fn addr(&self) -> IpAddr {
        self.addr
    }

    /// The configured policy.
    pub fn policy(&self) -> ResolverPolicy {
        self.policy
    }

    /// Whether `name` matches a blocked suffix.
    pub fn blocks(&self, name: &DomainName) -> bool {
        self.policy.is_blocking() && self.blocked_suffixes.iter().any(|s| name.is_within(s))
    }

    fn fresh_id(&self) -> u16 {
        let mut id = self.next_id.lock();
        *id = id.wrapping_add(1).max(1);
        *id
    }

    /// Resolves `name`/`qtype` on behalf of `client_addr` against `auth`.
    ///
    /// Public resolvers that support ECS attach the client's /24 (or /56 for
    /// IPv6 clients); otherwise the authoritative only sees the resolver's
    /// own source address.
    pub fn resolve(
        &self,
        client_addr: IpAddr,
        name: &DomainName,
        qtype: QType,
        auth: &dyn NameServer,
        now: SimTime,
    ) -> ResolutionOutcome {
        if self.blocks(name) {
            if let Some(outcome) = self.apply_policy(name, qtype) {
                return outcome;
            }
        }
        let mut query = Message::query(self.fresh_id(), name.clone(), qtype);
        if self.kind.sends_ecs() {
            let ecs = match client_addr {
                IpAddr::V4(a) => EcsOption::for_v4_net(Ipv4Net::slash24_of(a)),
                IpAddr::V6(a) => EcsOption::for_v6_net(tectonic_net::Ipv6Net::clamped(a, 56)),
            };
            query.ensure_edns().set_ecs(ecs);
        }
        let ctx = QueryContext {
            src: self.addr,
            now,
        };
        match auth.handle_query(&encode_message(&query), &ctx) {
            ServerReply::Response(bytes) => match decode_message(&bytes) {
                Ok(mut response) => {
                    // Recursive resolvers strip ECS before answering stubs
                    // and set RA.
                    response.flags.ra = true;
                    if let Some(opt) = response.edns.as_mut() {
                        opt.options.clear();
                    }
                    ResolutionOutcome::Answered(response)
                }
                Err(_) => ResolutionOutcome::Timeout,
            },
            ServerReply::Dropped => ResolutionOutcome::Timeout,
        }
    }

    /// The policy verdict for a blocked name, or `None` under
    /// [`ResolverPolicy::Normal`] (the caller resolves normally).
    fn apply_policy(&self, name: &DomainName, qtype: QType) -> Option<ResolutionOutcome> {
        let make = |rcode: Rcode| {
            let q = Message::query(self.fresh_id(), name.clone(), qtype);
            let mut r = q.response_to(rcode);
            r.flags.ra = true;
            r
        };
        match self.policy {
            ResolverPolicy::Normal => None,
            ResolverPolicy::BlockNxDomain => {
                Some(ResolutionOutcome::Answered(make(Rcode::NxDomain)))
            }
            ResolverPolicy::BlockNoData => Some(ResolutionOutcome::Answered(make(Rcode::NoError))),
            ResolverPolicy::BlockRefused => Some(ResolutionOutcome::Answered(make(Rcode::Refused))),
            ResolverPolicy::BlockServFail => {
                Some(ResolutionOutcome::Answered(make(Rcode::ServFail)))
            }
            ResolverPolicy::BlockFormErr => Some(ResolutionOutcome::Answered(make(Rcode::FormErr))),
            ResolverPolicy::Hijack(addr) => {
                let mut r = make(Rcode::NoError);
                if qtype == QType::A {
                    r.answers.push(crate::message::Record::new(
                        name.clone(),
                        300,
                        RData::A(addr),
                    ));
                }
                Some(ResolutionOutcome::Answered(r))
            }
            ResolverPolicy::Timeout => Some(ResolutionOutcome::Timeout),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Record;
    use crate::name::{mask_domain, mask_h2_domain};
    use crate::server::AuthoritativeServer;
    use crate::zone::Zone;

    fn auth() -> AuthoritativeServer {
        let mut zone = Zone::new("icloud.com".parse().unwrap());
        zone.add_record(Record::new(
            mask_domain(),
            60,
            RData::A(Ipv4Addr::new(17, 1, 1, 1)),
        ));
        AuthoritativeServer::new().with_zone(zone)
    }

    fn client() -> IpAddr {
        "100.64.9.10".parse().unwrap()
    }

    #[test]
    fn normal_resolution_returns_answer() {
        let r = Resolver::public(ResolverKind::CloudflarePublic);
        let out = r.resolve(client(), &mask_domain(), QType::A, &auth(), SimTime(0));
        let m = out.message().unwrap();
        assert_eq!(m.rcode, Rcode::NoError);
        assert_eq!(m.a_answers(), vec![Ipv4Addr::new(17, 1, 1, 1)]);
        assert!(m.flags.ra);
    }

    #[test]
    fn public_resolver_addresses() {
        assert_eq!(
            Resolver::public(ResolverKind::GooglePublic).addr(),
            "8.8.8.8".parse::<IpAddr>().unwrap()
        );
        assert!(ResolverKind::Isp.well_known_addr().is_none());
        assert!(ResolverKind::GooglePublic.is_public());
        assert!(!ResolverKind::Local.is_public());
    }

    #[test]
    fn ecs_forwarding_kinds() {
        assert!(ResolverKind::GooglePublic.sends_ecs());
        assert!(ResolverKind::OpenDns.sends_ecs());
        assert!(!ResolverKind::CloudflarePublic.sends_ecs());
        assert!(!ResolverKind::Quad9.sends_ecs());
        assert!(!ResolverKind::Isp.sends_ecs());
    }

    #[test]
    fn blocking_policies_produce_expected_rcodes() {
        let cases = [
            (ResolverPolicy::BlockNxDomain, Rcode::NxDomain),
            (ResolverPolicy::BlockNoData, Rcode::NoError),
            (ResolverPolicy::BlockRefused, Rcode::Refused),
            (ResolverPolicy::BlockServFail, Rcode::ServFail),
            (ResolverPolicy::BlockFormErr, Rcode::FormErr),
        ];
        for (policy, want) in cases {
            let r = Resolver::new(ResolverKind::Isp, "192.0.2.53".parse().unwrap())
                .with_policy(policy, vec!["icloud.com".parse().unwrap()]);
            let out = r.resolve(client(), &mask_domain(), QType::A, &auth(), SimTime(0));
            let m = out.message().unwrap();
            assert_eq!(m.rcode, want, "policy {policy:?}");
            assert!(m.answers.is_empty());
        }
    }

    #[test]
    fn nodata_block_is_noerror_nodata_shape() {
        let r = Resolver::new(ResolverKind::Isp, "192.0.2.53".parse().unwrap()).with_policy(
            ResolverPolicy::BlockNoData,
            vec!["icloud.com".parse().unwrap()],
        );
        let out = r.resolve(client(), &mask_domain(), QType::A, &auth(), SimTime(0));
        assert!(out.message().unwrap().is_noerror_nodata());
    }

    #[test]
    fn timeout_policy_times_out_only_blocked_names() {
        let r = Resolver::new(ResolverKind::Local, "192.0.2.53".parse().unwrap())
            .with_policy(ResolverPolicy::Timeout, vec!["icloud.com".parse().unwrap()]);
        assert_eq!(
            r.resolve(client(), &mask_domain(), QType::A, &auth(), SimTime(0)),
            ResolutionOutcome::Timeout
        );
        // Unrelated domains resolve (the auth refuses, but we get a reply).
        let out = r.resolve(
            client(),
            &"example.org".parse().unwrap(),
            QType::A,
            &auth(),
            SimTime(0),
        );
        assert!(out.message().is_some());
    }

    #[test]
    fn hijack_answers_with_other_address() {
        let hijack_addr = Ipv4Addr::new(185, 228, 168, 10);
        let r = Resolver::new(ResolverKind::Local, "192.0.2.53".parse().unwrap()).with_policy(
            ResolverPolicy::Hijack(hijack_addr),
            vec!["icloud.com".parse().unwrap()],
        );
        let out = r.resolve(client(), &mask_domain(), QType::A, &auth(), SimTime(0));
        let m = out.message().unwrap();
        assert_eq!(m.rcode, Rcode::NoError);
        assert_eq!(m.a_answers(), vec![hijack_addr]);
        // The hijack address differs from the authoritative's answer — the
        // signal the paper's survey uses to detect the hijack.
        assert_ne!(m.a_answers()[0], Ipv4Addr::new(17, 1, 1, 1));
    }

    #[test]
    fn blocks_applies_to_subdomains_only() {
        let r = Resolver::new(ResolverKind::Isp, "192.0.2.53".parse().unwrap()).with_policy(
            ResolverPolicy::BlockNxDomain,
            vec!["icloud.com".parse().unwrap()],
        );
        assert!(r.blocks(&mask_domain()));
        assert!(r.blocks(&mask_h2_domain()));
        assert!(!r.blocks(&"example.org".parse().unwrap()));
        let normal = Resolver::new(ResolverKind::Isp, "192.0.2.53".parse().unwrap());
        assert!(!normal.blocks(&mask_domain()));
    }

    #[test]
    fn dropped_upstream_surfaces_as_timeout() {
        use crate::server::RateLimit;
        let auth = AuthoritativeServer::new()
            .with_zone(Zone::new("icloud.com".parse().unwrap()))
            .with_rate_limit(RateLimit {
                burst: 1,
                per_second: 0.0001,
            });
        let r = Resolver::public(ResolverKind::Quad9);
        let first = r.resolve(client(), &mask_domain(), QType::A, &auth, SimTime(0));
        assert!(first.message().is_some());
        let second = r.resolve(client(), &mask_domain(), QType::A, &auth, SimTime(0));
        assert_eq!(second, ResolutionOutcome::Timeout);
    }

    #[test]
    fn ecs_is_stripped_from_stub_response() {
        let r = Resolver::public(ResolverKind::GooglePublic);
        let out = r.resolve(client(), &mask_domain(), QType::A, &auth(), SimTime(0));
        let m = out.message().unwrap();
        if let Some(opt) = &m.edns {
            assert!(opt.ecs().is_none());
        }
    }
}
