//! RFC 1035 wire encoding and decoding, with name compression.
//!
//! Both sides of every simulated exchange round-trip through this codec, so
//! the scanner exercises real message bytes — including the EDNS0 OPT record
//! in the additional section and compression pointers in responses with many
//! answer records (the April scans saw up to eight A records per response).

use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

use bytes::{Buf, BufMut, BytesMut};

use crate::edns::{EcsOption, EdnsOption, OptRecord};
use crate::message::{Flags, Message, QClass, QType, Question, RData, Rcode, Record};
use crate::name::DomainName;

/// Errors from the wire codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnsWireError {
    /// Ran out of bytes while decoding.
    Truncated,
    /// A compression pointer loop or overly deep chain.
    BadPointer,
    /// A label exceeded 63 octets or a name 255 octets.
    BadName,
    /// Rdata length did not match the record type's expectations.
    BadRdata(QType),
    /// More than one OPT record, or OPT outside the additional section.
    BadOpt,
    /// Trailing garbage after the message.
    TrailingBytes(usize),
}

impl fmt::Display for DnsWireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnsWireError::Truncated => write!(f, "message truncated"),
            DnsWireError::BadPointer => write!(f, "bad compression pointer"),
            DnsWireError::BadName => write!(f, "invalid encoded name"),
            DnsWireError::BadRdata(t) => write!(f, "invalid rdata for {t}"),
            DnsWireError::BadOpt => write!(f, "invalid OPT record"),
            DnsWireError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
        }
    }
}

impl std::error::Error for DnsWireError {}

// ---------------------------------------------------------------- encoding

/// A reusable message encoder.
///
/// Compression state is a list of label start offsets into the output
/// buffer; candidate suffixes are matched by walking the already-written
/// bytes (following pointers), so no per-label strings are allocated.
/// Reusing one `MessageEncoder` across many [`encode_into`] calls also
/// reuses the offset list's capacity, making steady-state encoding
/// allocation-free when the caller reuses its output buffer too.
///
/// [`encode_into`]: MessageEncoder::encode_into
#[derive(Debug, Default)]
pub struct MessageEncoder {
    /// Buffer offsets where a label sequence was written literally —
    /// the candidate targets for compression pointers.
    label_offsets: Vec<u16>,
}

impl MessageEncoder {
    /// A fresh encoder.
    pub fn new() -> Self {
        MessageEncoder {
            // lintkit: allow(alloc-in-hot-path) -- capacity-zero Vec::new
            // performs no heap allocation; growth is amortized by reuse
            label_offsets: Vec::new(),
        }
    }

    /// Encodes `m` into `out`, clearing it first. Output is byte-identical
    /// to [`encode_message`].
    pub fn encode_into(&mut self, m: &Message, out: &mut BytesMut) {
        out.clear();
        self.label_offsets.clear();
        let mut sink = Sink {
            buf: out,
            label_offsets: &mut self.label_offsets,
        };
        sink.put_message(m);
    }
}

/// Compares the name suffix `labels` against the (possibly compressed) name
/// encoded in `buf` at `off`, case-insensitively.
fn suffix_matches_at(buf: &[u8], mut off: usize, labels: &[String]) -> bool {
    let mut idx = 0;
    let mut jumps = 0;
    loop {
        // Offsets recorded for the name currently being written can run past
        // the end of the buffer (its terminator is not written yet); such an
        // incomplete name never matches, mirroring the string-keyed map that
        // only ever held distinct full suffixes.
        let Some(len) = buf.get(off).map(|b| *b as usize) else {
            return false;
        };
        if len & 0xC0 == 0xC0 {
            // Pointers we wrote ourselves always target earlier offsets.
            let Some(&lo) = off.checked_add(1).and_then(|i| buf.get(i)) else {
                return false;
            };
            if jumps >= 16 {
                return false;
            }
            jumps += 1;
            off = ((len & 0x3F) << 8) | lo as usize;
            continue;
        }
        if len == 0 {
            return idx == labels.len();
        }
        let Some(label) = labels.get(idx) else {
            return false;
        };
        let label = label.as_bytes();
        if off + 1 + len > buf.len()
            || label.len() != len
            || !buf[off + 1..off + 1 + len].eq_ignore_ascii_case(label)
        {
            return false;
        }
        idx += 1;
        off = off.saturating_add(len).saturating_add(1);
    }
}

/// Section/length count clamped to a 16-bit wire field. Messages this
/// encoder builds stay far below 65 535 entries, so the clamp is a
/// formality that keeps the conversion total.
fn count16(n: usize) -> u16 {
    u16::try_from(n).unwrap_or(u16::MAX)
}

struct Sink<'a> {
    buf: &'a mut BytesMut,
    label_offsets: &'a mut Vec<u16>,
}

impl Sink<'_> {
    /// Overwrites the two bytes at `pos` with `v` big-endian — the second
    /// half of the reserve-then-backpatch length pattern. `pos` was
    /// produced by an earlier `buf.len()`, so the range is in bounds; the
    /// `get_mut` keeps the patch total on this hostile-input path anyway.
    fn patch_u16(&mut self, pos: usize, v: u16) {
        let end = pos.saturating_add(2);
        if let Some(slot) = self.buf.get_mut(pos..end) {
            slot.copy_from_slice(&v.to_be_bytes());
        }
    }

    /// The first recorded offset whose encoded suffix equals `labels`.
    ///
    /// Each distinct suffix is written literally at most once (later
    /// occurrences compress to pointers), so "first match in insertion
    /// order" reproduces the first-occurrence offsets the old string-keyed
    /// map produced — output stays byte-identical.
    fn find_suffix(&self, labels: &[String]) -> Option<u16> {
        self.label_offsets
            .iter()
            .copied()
            .find(|&off| suffix_matches_at(self.buf, off as usize, labels))
    }

    fn put_name(&mut self, name: &DomainName) {
        let labels = name.labels();
        for (i, label) in labels.iter().enumerate() {
            if let Some(off) = self.find_suffix(&labels[i..]) {
                self.buf.put_u16(0xC000 | off);
                return;
            }
            // Pointers can only reference the first 16 KiB − pointer space;
            // the try_from doubles as the overflow check for the u16 field.
            if let Ok(off) = u16::try_from(self.buf.len()) {
                if off <= 0x3FFF {
                    self.label_offsets.push(off);
                }
            }
            // lintkit: allow(narrowing-cast) -- DomainName labels are ≤ 63 bytes by construction
            self.buf.put_u8(label.len() as u8);
            self.buf.put_slice(label.as_bytes());
        }
        self.buf.put_u8(0);
    }

    fn put_question(&mut self, q: &Question) {
        self.put_name(&q.name);
        self.buf.put_u16(q.qtype.number());
        self.buf.put_u16(q.qclass.number());
    }

    fn put_record(&mut self, r: &Record) {
        self.put_name(&r.name);
        self.buf.put_u16(r.rdata.rtype().number());
        self.buf.put_u16(r.class.number());
        self.buf.put_u32(r.ttl);
        // Reserve rdlength, fill after writing rdata.
        let len_pos = self.buf.len();
        self.buf.put_u16(0);
        let start = self.buf.len();
        match &r.rdata {
            RData::A(a) => self.buf.put_slice(&a.octets()),
            RData::Aaaa(a) => self.buf.put_slice(&a.octets()),
            RData::Cname(n) | RData::Ns(n) | RData::Ptr(n) => self.put_name(n),
            RData::Soa {
                mname,
                rname,
                serial,
            } => {
                self.put_name(mname);
                self.put_name(rname);
                self.buf.put_u32(*serial);
                // refresh/retry/expire/minimum — fixed plausible values.
                self.buf.put_u32(7200);
                self.buf.put_u32(900);
                self.buf.put_u32(1_209_600);
                self.buf.put_u32(60);
            }
            RData::Txt(s) => {
                for chunk in s.as_bytes().chunks(255) {
                    // lintkit: allow(narrowing-cast) -- chunks(255) yields slices of ≤ 255 bytes
                    self.buf.put_u8(chunk.len() as u8);
                    self.buf.put_slice(chunk);
                }
                if s.is_empty() {
                    self.buf.put_u8(0);
                }
            }
            RData::Raw(bytes) => self.buf.put_slice(bytes),
        }
        let rdlen = count16(self.buf.len().saturating_sub(start));
        self.patch_u16(len_pos, rdlen);
    }

    fn put_opt(&mut self, opt: &OptRecord, rcode: Rcode) {
        self.buf.put_u8(0); // root owner name
        self.buf.put_u16(QType::OPT.number());
        self.buf.put_u16(opt.udp_size);
        // TTL field carries ext-rcode, version, flags.
        let ext_rcode = (rcode.number() >> 4) | opt.ext_rcode;
        self.buf.put_u8(ext_rcode);
        self.buf.put_u8(opt.version);
        self.buf.put_u16(0);
        let len_pos = self.buf.len();
        self.buf.put_u16(0);
        let start = self.buf.len();
        for o in &opt.options {
            self.buf.put_u16(o.code());
            match o {
                EdnsOption::ClientSubnet(e) => {
                    // Stack-encoded: the hot encode path writes the ECS
                    // payload without the Vec the old `encode()` built.
                    let (payload, n) = e.wire_bytes();
                    self.buf.put_u16(count16(n));
                    self.buf.put_slice(&payload[..n]);
                }
                EdnsOption::Other(_, p) => {
                    self.buf.put_u16(count16(p.len()));
                    self.buf.put_slice(p);
                }
            }
        }
        let rdlen = count16(self.buf.len().saturating_sub(start));
        self.patch_u16(len_pos, rdlen);
    }

    fn put_message(&mut self, m: &Message) {
        self.buf.put_u16(m.id);
        let mut b1: u8 = 0;
        if m.flags.qr {
            b1 |= 0x80;
        }
        if m.flags.aa {
            b1 |= 0x04;
        }
        if m.flags.tc {
            b1 |= 0x02;
        }
        if m.flags.rd {
            b1 |= 0x01;
        }
        let mut b2: u8 = m.rcode.number() & 0x0F;
        if m.flags.ra {
            b2 |= 0x80;
        }
        self.buf.put_u8(b1);
        self.buf.put_u8(b2);
        self.buf.put_u16(count16(m.questions.len()));
        self.buf.put_u16(count16(m.answers.len()));
        self.buf.put_u16(count16(m.authority.len()));
        let arcount = count16(m.additional.len()).saturating_add(u16::from(m.edns.is_some()));
        self.buf.put_u16(arcount);
        for q in &m.questions {
            self.put_question(q);
        }
        for r in &m.answers {
            self.put_record(r);
        }
        for r in &m.authority {
            self.put_record(r);
        }
        for r in &m.additional {
            self.put_record(r);
        }
        if let Some(opt) = &m.edns {
            self.put_opt(opt, m.rcode);
        }
    }
}

/// Encodes a message to wire bytes.
pub fn encode_message(m: &Message) -> Vec<u8> {
    let mut out = BytesMut::with_capacity(512);
    MessageEncoder::new().encode_into(m, &mut out);
    out.to_vec()
}

/// Encodes a message into a caller-provided buffer (cleared first).
///
/// With a warm buffer this performs no allocation besides the encoder's
/// small offset list; use [`MessageEncoder`] directly to reuse that too.
pub fn encode_message_into(m: &Message, out: &mut BytesMut) {
    MessageEncoder::new().encode_into(m, out);
}

// ---------------------------------------------------------------- decoding

struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn remaining(&self) -> usize {
        self.data.len().saturating_sub(self.pos)
    }

    fn take_u8(&mut self) -> Result<u8, DnsWireError> {
        let v = *self.data.get(self.pos).ok_or(DnsWireError::Truncated)?;
        self.pos += 1;
        Ok(v)
    }

    fn take_u16(&mut self) -> Result<u16, DnsWireError> {
        if self.remaining() < 2 {
            return Err(DnsWireError::Truncated);
        }
        let mut s = &self.data[self.pos..];
        self.pos += 2;
        Ok(s.get_u16())
    }

    fn take_u32(&mut self) -> Result<u32, DnsWireError> {
        if self.remaining() < 4 {
            return Err(DnsWireError::Truncated);
        }
        let mut s = &self.data[self.pos..];
        self.pos += 4;
        Ok(s.get_u32())
    }

    fn take_slice(&mut self, n: usize) -> Result<&'a [u8], DnsWireError> {
        let end = self.pos.checked_add(n).ok_or(DnsWireError::Truncated)?;
        let s = self
            .data
            .get(self.pos..end)
            .ok_or(DnsWireError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    /// Reads a possibly-compressed name starting at the cursor.
    fn take_name(&mut self) -> Result<DomainName, DnsWireError> {
        let mut labels: Vec<String> = Vec::new();
        let mut pos = self.pos;
        let mut jumped = false;
        let mut jumps = 0;
        loop {
            let Some(&len) = self.data.get(pos) else {
                return Err(DnsWireError::Truncated);
            };
            match len {
                0 => {
                    pos += 1;
                    if !jumped {
                        self.pos = pos;
                    }
                    break;
                }
                l if l & 0xC0 == 0xC0 => {
                    let Some(&lo) = pos.checked_add(1).and_then(|i| self.data.get(i)) else {
                        return Err(DnsWireError::Truncated);
                    };
                    // The 14-bit pointer target, assembled without a shift.
                    let target = usize::from(u16::from_be_bytes([l & 0x3F, lo]));
                    if !jumped {
                        self.pos = pos.saturating_add(2);
                    }
                    // Pointers must go strictly backwards; cap chain depth.
                    if target >= pos {
                        return Err(DnsWireError::BadPointer);
                    }
                    jumps += 1;
                    if jumps > 16 {
                        return Err(DnsWireError::BadPointer);
                    }
                    pos = target;
                    jumped = true;
                }
                l if l & 0xC0 != 0 => return Err(DnsWireError::BadName),
                l => {
                    let l = l as usize;
                    let start = pos.saturating_add(1);
                    let end = start.saturating_add(l);
                    let Some(bytes) = self.data.get(start..end) else {
                        return Err(DnsWireError::Truncated);
                    };
                    let label = String::from_utf8_lossy(bytes).into_owned();
                    labels.push(label);
                    pos = end;
                }
            }
        }
        DomainName::from_labels(labels).map_err(|_| DnsWireError::BadName)
    }

    fn take_question(&mut self) -> Result<Question, DnsWireError> {
        let name = self.take_name()?;
        let qtype = QType::from_number(self.take_u16()?);
        let qclass = QClass::from_number(self.take_u16()?);
        Ok(Question {
            name,
            qtype,
            qclass,
        })
    }

    /// Decodes one record; OPT records are surfaced separately.
    fn take_record(&mut self) -> Result<DecodedRecord, DnsWireError> {
        let name = self.take_name()?;
        let rtype = QType::from_number(self.take_u16()?);
        let class_num = self.take_u16()?;
        let ttl = self.take_u32()?;
        let rdlen = self.take_u16()? as usize;
        if rtype == QType::OPT {
            if !name.is_root() {
                return Err(DnsWireError::BadOpt);
            }
            let rdata_start = self.pos;
            let rdata = self.take_slice(rdlen)?;
            let mut options = Vec::new();
            let mut od = Decoder {
                data: rdata,
                pos: 0,
            };
            while od.remaining() >= 4 {
                let code = od.take_u16()?;
                let len = od.take_u16()? as usize;
                let payload = od.take_slice(len)?;
                let opt = if code == 8 {
                    match EcsOption::decode(payload) {
                        Some(e) => EdnsOption::ClientSubnet(e),
                        None => EdnsOption::Other(code, payload.to_vec()),
                    }
                } else {
                    EdnsOption::Other(code, payload.to_vec())
                };
                options.push(opt);
            }
            if od.remaining() != 0 {
                return Err(DnsWireError::BadOpt);
            }
            let [ext_rcode, version, _, _] = ttl.to_be_bytes();
            let _ = rdata_start;
            return Ok(DecodedRecord::Opt(OptRecord {
                udp_size: class_num,
                ext_rcode,
                version,
                options,
            }));
        }
        let rdata_bytes_start = self.pos;
        let rdata_slice = self.take_slice(rdlen)?;
        let rdata = match rtype {
            QType::A => match *rdata_slice {
                [a, b, c, d] => RData::A(Ipv4Addr::new(a, b, c, d)),
                _ => return Err(DnsWireError::BadRdata(rtype)),
            },
            QType::AAAA => {
                if rdlen != 16 {
                    return Err(DnsWireError::BadRdata(rtype));
                }
                let mut o = [0u8; 16];
                o.copy_from_slice(rdata_slice);
                RData::Aaaa(Ipv6Addr::from(o))
            }
            QType::CNAME | QType::NS | QType::PTR | QType::SOA => {
                // Names inside rdata may use compression into the whole
                // message, so re-decode from the message with a sub-cursor.
                let mut sub = Decoder {
                    data: self.data,
                    pos: rdata_bytes_start,
                };
                match rtype {
                    QType::CNAME => RData::Cname(sub.take_name()?),
                    QType::NS => RData::Ns(sub.take_name()?),
                    QType::PTR => RData::Ptr(sub.take_name()?),
                    QType::SOA => {
                        let mname = sub.take_name()?;
                        let rname = sub.take_name()?;
                        let serial = sub.take_u32()?;
                        RData::Soa {
                            mname,
                            rname,
                            serial,
                        }
                    }
                    // The outer match arm admits only the four types above;
                    // erring (not panicking) keeps a hostile rtype harmless.
                    _ => return Err(DnsWireError::BadRdata(rtype)),
                }
            }
            QType::TXT => {
                let mut s = String::new();
                let mut td = Decoder {
                    data: rdata_slice,
                    pos: 0,
                };
                while td.remaining() > 0 {
                    let l = td.take_u8()? as usize;
                    let chunk = td.take_slice(l)?;
                    s.push_str(&String::from_utf8_lossy(chunk));
                }
                RData::Txt(s)
            }
            _ => RData::Raw(rdata_slice.to_vec()),
        };
        Ok(DecodedRecord::Plain(Record {
            name,
            ttl,
            class: QClass::from_number(class_num),
            rdata,
        }))
    }
}

enum DecodedRecord {
    Plain(Record),
    Opt(OptRecord),
}

/// Decodes a wire message. Rejects trailing bytes and duplicate OPT records.
pub fn decode_message(data: &[u8]) -> Result<Message, DnsWireError> {
    let mut d = Decoder { data, pos: 0 };
    let id = d.take_u16()?;
    let b1 = d.take_u8()?;
    let b2 = d.take_u8()?;
    let flags = Flags {
        qr: b1 & 0x80 != 0,
        aa: b1 & 0x04 != 0,
        tc: b1 & 0x02 != 0,
        rd: b1 & 0x01 != 0,
        ra: b2 & 0x80 != 0,
    };
    let mut rcode = Rcode::from_number(b2 & 0x0F);
    let qdcount = d.take_u16()?;
    let ancount = d.take_u16()?;
    let nscount = d.take_u16()?;
    let arcount = d.take_u16()?;
    let mut questions = Vec::with_capacity(qdcount as usize);
    for _ in 0..qdcount {
        questions.push(d.take_question()?);
    }
    let mut answers = Vec::with_capacity(ancount as usize);
    for _ in 0..ancount {
        match d.take_record()? {
            DecodedRecord::Plain(r) => answers.push(r),
            DecodedRecord::Opt(_) => return Err(DnsWireError::BadOpt),
        }
    }
    let mut authority = Vec::with_capacity(nscount as usize);
    for _ in 0..nscount {
        match d.take_record()? {
            DecodedRecord::Plain(r) => authority.push(r),
            DecodedRecord::Opt(_) => return Err(DnsWireError::BadOpt),
        }
    }
    let mut additional = Vec::new();
    let mut edns: Option<OptRecord> = None;
    for _ in 0..arcount {
        match d.take_record()? {
            DecodedRecord::Plain(r) => additional.push(r),
            DecodedRecord::Opt(opt) => {
                if edns.is_some() {
                    return Err(DnsWireError::BadOpt);
                }
                // Extended rcode: high 8 bits from OPT TTL, low 4 from header.
                if opt.ext_rcode != 0 {
                    let full = ((opt.ext_rcode as u16) << 4) | (rcode.number() as u16);
                    rcode = Rcode::from_number((full & 0x0F) as u8);
                }
                edns = Some(opt);
            }
        }
    }
    if d.remaining() != 0 {
        return Err(DnsWireError::TrailingBytes(d.remaining()));
    }
    Ok(Message {
        id,
        flags,
        rcode,
        questions,
        answers,
        authority,
        additional,
        edns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edns::EcsOption;
    use crate::name::{mask_domain, mask_h2_domain};

    fn round_trip(m: &Message) -> Message {
        decode_message(&encode_message(m)).expect("round trip")
    }

    #[test]
    fn minimal_query_round_trips() {
        let q = Message::query(0xBEEF, mask_domain(), QType::A);
        let back = round_trip(&q);
        assert_eq!(back, q);
    }

    #[test]
    fn ecs_query_round_trips() {
        let mut q = Message::query(1, mask_domain(), QType::A);
        q.edns
            .as_mut()
            .unwrap()
            .set_ecs(EcsOption::for_v4_net("100.64.3.0/24".parse().unwrap()));
        let back = round_trip(&q);
        assert_eq!(
            back.edns.as_ref().unwrap().ecs(),
            q.edns.as_ref().unwrap().ecs()
        );
    }

    #[test]
    fn response_with_many_answers_round_trips() {
        let q = Message::query(2, mask_domain(), QType::A);
        let mut r = q.response_to(Rcode::NoError);
        for i in 0..8 {
            r.answers.push(Record::new(
                mask_domain(),
                60,
                RData::A(Ipv4Addr::new(17, 0, 0, i + 1)),
            ));
        }
        let back = round_trip(&r);
        assert_eq!(back.a_answers().len(), 8);
        assert_eq!(back, r);
    }

    #[test]
    fn compression_shrinks_repeated_names() {
        let q = Message::query(3, mask_domain(), QType::A);
        let mut r = q.response_to(Rcode::NoError);
        for i in 0..8 {
            r.answers.push(Record::new(
                mask_domain(),
                60,
                RData::A(Ipv4Addr::new(17, 0, 0, i + 1)),
            ));
        }
        let bytes = encode_message(&r);
        // Uncompressed, each of the 8+1 extra names costs 17 bytes; with
        // pointers each repeated owner name costs 2.
        assert!(
            bytes.len() < 200,
            "message unexpectedly large: {}",
            bytes.len()
        );
    }

    #[test]
    fn cname_chain_round_trips() {
        let q = Message::query(4, mask_h2_domain(), QType::A);
        let mut r = q.response_to(Rcode::NoError);
        r.answers.push(Record::new(
            mask_h2_domain(),
            300,
            RData::Cname("mask-h2.g.aaplimg.com".parse().unwrap()),
        ));
        r.answers.push(Record::new(
            "mask-h2.g.aaplimg.com".parse().unwrap(),
            60,
            RData::A(Ipv4Addr::new(17, 5, 6, 7)),
        ));
        assert_eq!(round_trip(&r), r);
    }

    #[test]
    fn soa_txt_ptr_round_trip() {
        let q = Message::query(5, "icloud.com".parse().unwrap(), QType::SOA);
        let mut r = q.response_to(Rcode::NoError);
        r.authority.push(Record::new(
            "icloud.com".parse().unwrap(),
            900,
            RData::Soa {
                mname: "ns1.icloud.com".parse().unwrap(),
                rname: "hostmaster.apple.com".parse().unwrap(),
                serial: 20_220_401,
            },
        ));
        r.additional.push(Record::new(
            "whoami.akamai.net".parse().unwrap(),
            0,
            RData::Txt("resolver=8.8.8.8".into()),
        ));
        r.additional.push(Record::new(
            "1.0.0.127.in-addr.arpa".parse().unwrap(),
            0,
            RData::Ptr("localhost".parse().unwrap()),
        ));
        assert_eq!(round_trip(&r), r);
    }

    #[test]
    fn aaaa_round_trips() {
        let q = Message::query(6, mask_domain(), QType::AAAA);
        let mut r = q.response_to(Rcode::NoError);
        r.answers.push(Record::new(
            mask_domain(),
            60,
            RData::Aaaa("2620:149:a44:4000::7".parse().unwrap()),
        ));
        assert_eq!(round_trip(&r), r);
    }

    #[test]
    fn rcode_survives_round_trip() {
        for rc in [
            Rcode::NoError,
            Rcode::FormErr,
            Rcode::ServFail,
            Rcode::NxDomain,
            Rcode::Refused,
        ] {
            let q = Message::query(7, mask_domain(), QType::A);
            let r = q.response_to(rc);
            assert_eq!(round_trip(&r).rcode, rc, "rcode {rc}");
        }
    }

    #[test]
    fn truncated_inputs_error_not_panic() {
        let q = Message::query(8, mask_domain(), QType::A);
        let bytes = encode_message(&q);
        for cut in 0..bytes.len() {
            let res = decode_message(&bytes[..cut]);
            assert!(res.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let q = Message::query(9, mask_domain(), QType::A);
        let mut bytes = encode_message(&q);
        bytes.push(0);
        assert!(matches!(
            decode_message(&bytes),
            Err(DnsWireError::TrailingBytes(1))
        ));
    }

    #[test]
    fn forward_pointer_rejected() {
        // Hand-crafted message whose question name points forward.
        let mut bytes = vec![
            0, 1, // id
            0, 0, // flags
            0, 1, 0, 0, 0, 0, 0, 0, // counts: 1 question
            0xC0, 0x20, // pointer to offset 32 (forward)
        ];
        bytes.extend_from_slice(&[0, 1, 0, 1]); // qtype/qclass
        assert!(decode_message(&bytes).is_err());
    }

    #[test]
    fn pointer_loop_rejected() {
        // Name at offset 12 pointing to itself.
        let bytes = vec![0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 0x0C, 0, 1, 0, 1];
        assert!(decode_message(&bytes).is_err());
    }

    #[test]
    fn opt_in_answer_section_rejected() {
        // Craft: header with ancount=1, then an OPT record as an answer.
        let q = Message::query(1, mask_domain(), QType::A);
        let mut r = q.response_to(Rcode::NoError);
        r.answers.push(Record::new(
            mask_domain(),
            60,
            RData::A(Ipv4Addr::LOCALHOST),
        ));
        let mut bytes = encode_message(&r);
        // Rewrite the answer's TYPE (bytes after the compressed owner name).
        // Find the answer record: it's after the question. This is fragile by
        // construction, so instead decode-modify-encode is avoided and we
        // locate the 2-byte type field: last record before OPT... simpler:
        // set ancount=2 duplicating OPT placement is overkill — craft directly.
        bytes.clear();
        bytes.extend_from_slice(&[
            0, 1, 0x80, 0, 0, 0, 0, 1, 0, 0, 0, 0, // header: 1 answer
            0, 0, 41, 0x04, 0xD0, 0, 0, 0, 0, 0, 0, // root OPT record, rdlen 0
        ]);
        assert!(matches!(decode_message(&bytes), Err(DnsWireError::BadOpt)));
    }

    #[test]
    fn duplicate_opt_rejected() {
        let q = Message::query(1, mask_domain(), QType::A);
        let mut bytes = encode_message(&q);
        // Append a second OPT record and bump arcount.
        bytes.extend_from_slice(&[0, 0, 41, 0x04, 0xD0, 0, 0, 0, 0, 0, 0]);
        bytes[11] = 2; // arcount low byte
        assert!(matches!(decode_message(&bytes), Err(DnsWireError::BadOpt)));
    }

    #[test]
    fn case_preserved_through_wire() {
        let name: DomainName = "MaSk.iCloud.Com".parse().unwrap();
        let q = Message::query(1, name.clone(), QType::A);
        let back = round_trip(&q);
        assert_eq!(back.question().unwrap().name.to_string(), "MaSk.iCloud.Com");
    }

    #[test]
    fn unknown_type_rdata_raw() {
        let mut q = Message::query(1, mask_domain(), QType::Other(999));
        q.flags.rd = false;
        let back = round_trip(&q);
        assert_eq!(back.question().unwrap().qtype, QType::Other(999));
    }
}
