//! Domain names.
//!
//! [`DomainName`] stores a fully-qualified name as a sequence of labels with
//! RFC 1035 limits enforced at construction (labels ≤ 63 octets, total
//! encoded length ≤ 255). Comparison and hashing are ASCII-case-insensitive,
//! matching resolver behaviour; the original spelling is preserved for
//! display.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Errors from domain-name construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// A label was empty or longer than 63 octets.
    BadLabel(String),
    /// The encoded name would exceed 255 octets.
    TooLong,
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::BadLabel(l) => write!(f, "invalid DNS label: {l:?}"),
            NameError::TooLong => write!(f, "domain name exceeds 255 octets"),
        }
    }
}

impl std::error::Error for NameError {}

/// A fully-qualified domain name.
#[derive(Clone, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub struct DomainName {
    labels: Vec<String>,
}

impl DomainName {
    /// The root name (zero labels).
    pub fn root() -> Self {
        // lintkit: allow(alloc-in-hot-path) -- Vec::new is a zero-capacity constructor and performs no heap allocation
        DomainName { labels: Vec::new() }
    }

    /// Parses a compile-time name literal, panicking on invalid input.
    ///
    /// For embedding well-known names in source (zone apexes, the mask
    /// domains); never call this on runtime input — use [`DomainName::parse`]
    /// and handle the error.
    pub fn literal(s: &str) -> Self {
        // lintkit: allow(no-panic) -- documented literal-only constructor; the single sanctioned panic site for static names
        DomainName::parse(s).expect("invalid DomainName literal")
    }

    /// Builds a name from labels, validating RFC 1035 limits.
    pub fn from_labels<I, S>(labels: I) -> Result<Self, NameError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let labels: Vec<String> = labels.into_iter().map(Into::into).collect();
        let mut encoded_len = 1; // trailing root byte
        for l in &labels {
            if l.is_empty() || l.len() > 63 {
                return Err(NameError::BadLabel(l.clone()));
            }
            if l.bytes().any(|b| b == b'.' || b == 0) {
                return Err(NameError::BadLabel(l.clone()));
            }
            encoded_len += 1 + l.len();
        }
        if encoded_len > 255 {
            return Err(NameError::TooLong);
        }
        Ok(DomainName { labels })
    }

    /// Parses dotted notation; a single trailing dot is accepted. `"."`
    /// yields the root.
    pub fn parse(s: &str) -> Result<Self, NameError> {
        let trimmed = s.strip_suffix('.').unwrap_or(s);
        if trimmed.is_empty() {
            return Ok(DomainName::root());
        }
        DomainName::from_labels(trimmed.split('.'))
    }

    /// The labels, leftmost (host) first.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// `true` for the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Length of the RFC 1035 wire encoding in octets (including root byte).
    pub fn encoded_len(&self) -> usize {
        1 + self.labels.iter().map(|l| 1 + l.len()).sum::<usize>()
    }

    /// The parent name (one label stripped), or `None` at the root.
    pub fn parent(&self) -> Option<DomainName> {
        if self.labels.is_empty() {
            None
        } else {
            Some(DomainName {
                labels: self.labels[1..].to_vec(),
            })
        }
    }

    /// Whether `self` equals `zone` or lies underneath it
    /// (`mask.icloud.com` is within `icloud.com`).
    pub fn is_within(&self, zone: &DomainName) -> bool {
        if zone.labels.len() > self.labels.len() {
            return false;
        }
        self.labels
            .iter()
            .rev()
            .zip(zone.labels.iter().rev())
            .all(|(a, b)| a.eq_ignore_ascii_case(b))
    }

    /// Prepends a label, e.g. `"mask"` + `icloud.com` → `mask.icloud.com`.
    pub fn prepend(&self, label: &str) -> Result<DomainName, NameError> {
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(label.to_string());
        labels.extend(self.labels.iter().cloned());
        DomainName::from_labels(labels)
    }

    /// Lower-cased dotted representation without trailing dot (root → `"."`).
    pub fn to_ascii_lower(&self) -> String {
        if self.labels.is_empty() {
            ".".to_string()
        } else {
            self.labels
                .iter()
                .map(|l| l.to_ascii_lowercase())
                .collect::<Vec<_>>()
                .join(".")
        }
    }
}

impl PartialEq for DomainName {
    fn eq(&self, other: &Self) -> bool {
        self.labels.len() == other.labels.len()
            && self
                .labels
                .iter()
                .zip(other.labels.iter())
                .all(|(a, b)| a.eq_ignore_ascii_case(b))
    }
}

impl Eq for DomainName {}

impl Hash for DomainName {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for l in &self.labels {
            for b in l.bytes() {
                state.write_u8(b.to_ascii_lowercase());
            }
            state.write_u8(0);
        }
    }
}

impl PartialOrd for DomainName {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DomainName {
    /// The byte order of the lower-cased dotted rendering — exactly what
    /// comparing [`DomainName::to_ascii_lower`] strings produced — computed
    /// lazily so trie lookups on the hot path never allocate.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        dotted_lower_bytes(&self.labels).cmp(dotted_lower_bytes(&other.labels))
    }
}

/// The byte stream `to_ascii_lower` would render (root is `"."`, other
/// names are labels joined by `'.'`), yielded without building a `String`.
fn dotted_lower_bytes(labels: &[String]) -> impl Iterator<Item = u8> + '_ {
    let root = if labels.is_empty() { Some(b'.') } else { None };
    root.into_iter()
        .chain(labels.iter().enumerate().flat_map(|(i, l)| {
            let sep = if i == 0 { None } else { Some(b'.') };
            sep.into_iter()
                .chain(l.bytes().map(|b| b.to_ascii_lowercase()))
        }))
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            write!(f, ".")
        } else {
            write!(f, "{}", self.labels.join("."))
        }
    }
}

impl fmt::Debug for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for DomainName {
    type Err = NameError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DomainName::parse(s)
    }
}

impl TryFrom<String> for DomainName {
    type Error = NameError;
    fn try_from(s: String) -> Result<Self, NameError> {
        DomainName::parse(&s)
    }
}

impl From<DomainName> for String {
    fn from(n: DomainName) -> String {
        n.to_string()
    }
}

/// The iCloud Private Relay QUIC ingress domain, `mask.icloud.com`.
pub fn mask_domain() -> DomainName {
    DomainName::literal("mask.icloud.com")
}

/// The TCP-fallback ingress domain, `mask-h2.icloud.com`.
pub fn mask_h2_domain() -> DomainName {
    DomainName::literal("mask-h2.icloud.com")
}

/// The resolver-identity domain modelled after `whoami.akamai.net`.
pub fn whoami_domain() -> DomainName {
    DomainName::literal("whoami.akamai.net")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn parse_basic() {
        let n = DomainName::parse("mask.icloud.com").unwrap();
        assert_eq!(n.label_count(), 3);
        assert_eq!(n.labels()[0], "mask");
        assert_eq!(n.to_string(), "mask.icloud.com");
    }

    #[test]
    fn trailing_dot_and_root() {
        assert_eq!(
            DomainName::parse("icloud.com.").unwrap(),
            DomainName::parse("icloud.com").unwrap()
        );
        let root = DomainName::parse(".").unwrap();
        assert!(root.is_root());
        assert_eq!(root.to_string(), ".");
        assert_eq!(DomainName::parse("").unwrap(), DomainName::root());
    }

    #[test]
    fn rejects_bad_labels() {
        assert!(DomainName::parse("a..b").is_err());
        let long = "x".repeat(64);
        assert!(DomainName::parse(&format!("{long}.com")).is_err());
        let ok = "x".repeat(63);
        assert!(DomainName::parse(&format!("{ok}.com")).is_ok());
    }

    #[test]
    fn rejects_overlong_names() {
        // 4 × 63-octet labels encode past 255 octets.
        let l = "y".repeat(63);
        let s = format!("{l}.{l}.{l}.{l}");
        assert!(DomainName::parse(&s).is_err());
    }

    #[test]
    fn case_insensitive_eq_and_hash() {
        let a = DomainName::parse("MASK.iCloud.COM").unwrap();
        let b = DomainName::parse("mask.icloud.com").unwrap();
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a.clone());
        assert!(set.contains(&b));
        // Display preserves original case.
        assert_eq!(a.to_string(), "MASK.iCloud.COM");
    }

    #[test]
    fn is_within_zone() {
        let zone = DomainName::parse("icloud.com").unwrap();
        assert!(DomainName::parse("mask.icloud.com")
            .unwrap()
            .is_within(&zone));
        assert!(DomainName::parse("ICLOUD.COM").unwrap().is_within(&zone));
        assert!(!DomainName::parse("icloud.com.evil.org")
            .unwrap()
            .is_within(&zone));
        assert!(!DomainName::parse("com").unwrap().is_within(&zone));
        assert!(DomainName::parse("a.b.icloud.com")
            .unwrap()
            .is_within(&zone));
        // Everything is within the root.
        assert!(zone.is_within(&DomainName::root()));
    }

    #[test]
    fn parent_and_prepend() {
        let n = DomainName::parse("mask.icloud.com").unwrap();
        assert_eq!(n.parent().unwrap().to_string(), "icloud.com");
        let back = n.parent().unwrap().prepend("mask-h2").unwrap();
        assert_eq!(back.to_string(), "mask-h2.icloud.com");
        assert!(DomainName::root().parent().is_none());
    }

    #[test]
    fn encoded_len_matches_rfc() {
        // "mask.icloud.com" = 1+4 + 1+6 + 1+3 + 1 = 17
        assert_eq!(
            DomainName::parse("mask.icloud.com").unwrap().encoded_len(),
            17
        );
        assert_eq!(DomainName::root().encoded_len(), 1);
    }

    #[test]
    fn well_known_domains() {
        assert_eq!(mask_domain().to_string(), "mask.icloud.com");
        assert_eq!(mask_h2_domain().to_string(), "mask-h2.icloud.com");
        assert_eq!(whoami_domain().to_string(), "whoami.akamai.net");
        assert!(mask_domain().is_within(&DomainName::parse("icloud.com").unwrap()));
    }

    #[test]
    fn serde_round_trip() {
        let n = DomainName::parse("mask.icloud.com").unwrap();
        let j = serde_json::to_string(&n).unwrap();
        assert_eq!(j, "\"mask.icloud.com\"");
        let back: DomainName = serde_json::from_str(&j).unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn ordering_is_case_insensitive() {
        let mut v = [
            DomainName::parse("b.example").unwrap(),
            DomainName::parse("A.example").unwrap(),
        ];
        v.sort();
        assert_eq!(v[0].to_string(), "A.example");
    }
}
