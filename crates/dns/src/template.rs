//! Pre-encoded query templates for the ECS scan hot loop.
//!
//! The scanner sends millions of near-identical queries: same domain, same
//! qtype, same EDNS0 shape — only the query ID and the three ECS address
//! octets change between consecutive /24 subnets. A [`QueryTemplate`]
//! encodes the message once, locates those mutable bytes, and proves the
//! location correct by diffing two sentinel encodings and re-checking a
//! patched copy against the general encoder byte-for-byte. Construction
//! returns `None` whenever that proof fails, so callers can always fall
//! back to [`encode_message`] with identical results.
//!
//! [`encode_message`]: crate::wire::encode_message

use std::net::Ipv4Addr;

use tectonic_net::Ipv4Net;

use crate::edns::EcsOption;
use crate::message::{Message, QType};
use crate::name::DomainName;
use crate::wire::encode_message;

/// Builds the exact query message the scanner sends for one /24.
fn scan_query(id: u16, domain: &DomainName, qtype: QType, subnet: Ipv4Net) -> Message {
    let mut query = Message::query(id, domain.clone(), qtype);
    query.ensure_edns().set_ecs(EcsOption::for_v4_net(subnet));
    query
}

/// Two /24 sentinels (TEST-NET-2 / TEST-NET-3) whose first three octets
/// differ pairwise, so the diff exposes every address byte.
const SENTINEL_A: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 0);
const SENTINEL_B: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 0);

/// An immutable pre-encoded /24 ECS query for one domain and qtype.
#[derive(Debug, Clone)]
pub struct QueryTemplate {
    wire: Vec<u8>,
    ecs_addr_off: usize,
}

impl QueryTemplate {
    /// Byte offset of the big-endian query ID (always the first two bytes).
    pub const ID_OFFSET: usize = 0;

    /// Builds and verifies a template, or `None` if in-place patching could
    /// not be proven byte-identical to the general encoder.
    pub fn new_v4_24(domain: &DomainName, qtype: QType) -> Option<QueryTemplate> {
        let net_a = Ipv4Net::slash24_of(SENTINEL_A);
        let net_b = Ipv4Net::slash24_of(SENTINEL_B);
        let wire_a = encode_message(&scan_query(0, domain, qtype, net_a));
        let wire_b = encode_message(&scan_query(0, domain, qtype, net_b));
        if wire_a.len() != wire_b.len() {
            return None;
        }
        let diff: Vec<usize> = wire_a
            .iter()
            .zip(wire_b.iter())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        // Expect exactly the three ECS address octets, contiguous.
        let [d0, d1, d2] = diff.as_slice() else {
            return None;
        };
        if *d1 != d0 + 1 || *d2 != d0 + 2 {
            return None;
        }
        let off = *d0;
        if wire_a[off..off + 3] != SENTINEL_A.octets()[..3]
            || wire_b[off..off + 3] != SENTINEL_B.octets()[..3]
        {
            return None;
        }
        let template = QueryTemplate {
            wire: wire_a,
            ecs_addr_off: off,
        };
        // End-to-end check: a patched copy must equal a fresh encoding,
        // including a non-zero ID.
        let mut probe = template.instantiate();
        let check_id = 0xA55A;
        if probe.patch(check_id, net_b)
            != encode_message(&scan_query(check_id, domain, qtype, net_b))
        {
            return None;
        }
        Some(template)
    }

    /// The template bytes (sentinel ID and subnet still in place).
    pub fn wire(&self) -> &[u8] {
        &self.wire
    }

    /// Byte offset of the three ECS address octets.
    pub fn ecs_addr_offset(&self) -> usize {
        self.ecs_addr_off
    }

    /// A mutable copy to patch per query — create one per worker, reuse
    /// across the whole scan.
    pub fn instantiate(&self) -> PatchedQuery {
        PatchedQuery {
            wire: self.wire.clone(),
            ecs_addr_off: self.ecs_addr_off,
        }
    }
}

/// A worker-owned instantiation of a [`QueryTemplate`]; each [`patch`]
/// rewrites five bytes in place and returns the query, with no allocation
/// or encoding work.
///
/// [`patch`]: PatchedQuery::patch
#[derive(Debug, Clone)]
pub struct PatchedQuery {
    wire: Vec<u8>,
    ecs_addr_off: usize,
}

impl PatchedQuery {
    /// Sets the query ID and the /24 subnet, returning the wire bytes.
    pub fn patch(&mut self, id: u16, subnet: Ipv4Net) -> &[u8] {
        debug_assert_eq!(subnet.len(), 24, "template is specialised to /24 subnets");
        self.wire[QueryTemplate::ID_OFFSET..QueryTemplate::ID_OFFSET + 2]
            .copy_from_slice(&id.to_be_bytes());
        let octets = subnet.network().octets();
        self.wire[self.ecs_addr_off..self.ecs_addr_off + 3].copy_from_slice(&octets[..3]);
        &self.wire
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::mask_domain;
    use crate::wire::decode_message;

    #[test]
    fn template_builds_for_mask_domain() {
        let t = QueryTemplate::new_v4_24(&mask_domain(), QType::A).expect("template");
        assert!(t.ecs_addr_offset() > 12, "ECS bytes live past the header");
    }

    #[test]
    fn patched_queries_match_general_encoder() {
        let domain = mask_domain();
        let t = QueryTemplate::new_v4_24(&domain, QType::A).unwrap();
        let mut patched = t.instantiate();
        for (id, net) in [
            (1u16, "10.0.0.0/24"),
            (0xFFFF, "223.255.255.0/24"),
            (42, "1.2.3.0/24"),
            (42, "1.2.3.0/24"), // repeat: patching must be idempotent
        ] {
            let subnet: Ipv4Net = net.parse().unwrap();
            let want = encode_message(&scan_query(id, &domain, QType::A, subnet));
            assert_eq!(patched.patch(id, subnet), &want[..], "id={id} net={net}");
        }
    }

    #[test]
    fn patched_query_decodes_to_the_intended_message() {
        let domain = mask_domain();
        let t = QueryTemplate::new_v4_24(&domain, QType::A).unwrap();
        let mut patched = t.instantiate();
        let subnet: Ipv4Net = "192.0.2.0/24".parse().unwrap();
        let m = decode_message(patched.patch(7, subnet)).unwrap();
        assert_eq!(m.id, 7);
        let ecs = m.edns.as_ref().and_then(|o| o.ecs()).unwrap();
        assert_eq!(ecs.addr, std::net::IpAddr::V4(subnet.network()));
        assert_eq!(ecs.source_len, 24);
    }

    #[test]
    fn works_for_other_qtypes_and_domains() {
        for domain in [crate::name::mask_h2_domain(), crate::name::whoami_domain()] {
            for qtype in [QType::A, QType::AAAA] {
                assert!(
                    QueryTemplate::new_v4_24(&domain, qtype).is_some(),
                    "{domain} {qtype}"
                );
            }
        }
    }
}
