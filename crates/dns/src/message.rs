//! DNS messages: header, questions, resource records and rdata.

use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

use serde::{Deserialize, Serialize};

use crate::edns::OptRecord;
use crate::name::DomainName;

/// Query/record types. Only the types the reproduction needs are modelled;
/// unknown types survive decoding as [`QType::Other`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum QType {
    /// IPv4 address record.
    A,
    /// IPv6 address record.
    AAAA,
    /// Canonical name.
    CNAME,
    /// Delegation.
    NS,
    /// Start of authority.
    SOA,
    /// Free-form text.
    TXT,
    /// Reverse pointer.
    PTR,
    /// EDNS0 pseudo-record (only valid in the additional section).
    OPT,
    /// Any other RR type, kept by number.
    Other(u16),
}

impl QType {
    /// The IANA type number.
    pub fn number(&self) -> u16 {
        match self {
            QType::A => 1,
            QType::NS => 2,
            QType::CNAME => 5,
            QType::SOA => 6,
            QType::PTR => 12,
            QType::TXT => 16,
            QType::AAAA => 28,
            QType::OPT => 41,
            QType::Other(n) => *n,
        }
    }

    /// From an IANA type number.
    pub fn from_number(n: u16) -> QType {
        match n {
            1 => QType::A,
            2 => QType::NS,
            5 => QType::CNAME,
            6 => QType::SOA,
            12 => QType::PTR,
            16 => QType::TXT,
            28 => QType::AAAA,
            41 => QType::OPT,
            other => QType::Other(other),
        }
    }
}

impl fmt::Display for QType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QType::Other(n) => write!(f, "TYPE{n}"),
            t => write!(f, "{t:?}"),
        }
    }
}

/// Record classes; effectively always `IN` here.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum QClass {
    /// Internet.
    IN,
    /// Anything else, kept by number (for OPT, the number carries UDP size).
    Other(u16),
}

impl QClass {
    /// The wire number.
    pub fn number(&self) -> u16 {
        match self {
            QClass::IN => 1,
            QClass::Other(n) => *n,
        }
    }

    /// From a wire number.
    pub fn from_number(n: u16) -> QClass {
        match n {
            1 => QClass::IN,
            other => QClass::Other(other),
        }
    }
}

/// DNS response codes, as analysed by the blocking survey (§4.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize, PartialOrd, Ord)]
pub enum Rcode {
    /// No error.
    NoError,
    /// Malformed query (FORMERR).
    FormErr,
    /// Server failure (SERVFAIL).
    ServFail,
    /// Name does not exist (NXDOMAIN).
    NxDomain,
    /// Not implemented.
    NotImp,
    /// Query refused by policy (REFUSED).
    Refused,
    /// Any other code, kept by number.
    Other(u8),
}

impl Rcode {
    /// The 4-bit wire value.
    pub fn number(&self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(n) => *n & 0x0F,
        }
    }

    /// From the 4-bit wire value.
    pub fn from_number(n: u8) -> Rcode {
        match n & 0x0F {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }

    /// The conventional upper-case mnemonic ("NXDOMAIN", …).
    pub fn mnemonic(&self) -> String {
        match self {
            Rcode::NoError => "NOERROR".into(),
            Rcode::FormErr => "FORMERR".into(),
            Rcode::ServFail => "SERVFAIL".into(),
            Rcode::NxDomain => "NXDOMAIN".into(),
            Rcode::NotImp => "NOTIMP".into(),
            Rcode::Refused => "REFUSED".into(),
            Rcode::Other(n) => format!("RCODE{n}"),
        }
    }
}

impl fmt::Display for Rcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

/// A question-section entry.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Question {
    /// The queried name.
    pub name: DomainName,
    /// The queried type.
    pub qtype: QType,
    /// The queried class.
    pub qclass: QClass,
}

impl Question {
    /// An `IN`-class question for `name`/`qtype`.
    pub fn new(name: DomainName, qtype: QType) -> Self {
        Question {
            name,
            qtype,
            qclass: QClass::IN,
        }
    }
}

/// Typed record data.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum RData {
    /// An IPv4 address.
    A(Ipv4Addr),
    /// An IPv6 address.
    Aaaa(Ipv6Addr),
    /// A canonical-name alias.
    Cname(DomainName),
    /// A delegation target.
    Ns(DomainName),
    /// A start-of-authority record (abbreviated to the fields we use).
    Soa {
        /// Primary name server.
        mname: DomainName,
        /// Responsible mailbox, name-encoded.
        rname: DomainName,
        /// Zone serial.
        serial: u32,
    },
    /// Text data (single string).
    Txt(String),
    /// A reverse pointer.
    Ptr(DomainName),
    /// Uninterpreted rdata for unknown types.
    Raw(Vec<u8>),
}

impl RData {
    /// The record type carrying this data ([`QType::Other`] for raw).
    pub fn rtype(&self) -> QType {
        match self {
            RData::A(_) => QType::A,
            RData::Aaaa(_) => QType::AAAA,
            RData::Cname(_) => QType::CNAME,
            RData::Ns(_) => QType::NS,
            RData::Soa { .. } => QType::SOA,
            RData::Txt(_) => QType::TXT,
            RData::Ptr(_) => QType::PTR,
            RData::Raw(_) => QType::Other(0),
        }
    }

    /// The IPv4 address, if this is an A record.
    pub fn as_a(&self) -> Option<Ipv4Addr> {
        match self {
            RData::A(a) => Some(*a),
            _ => None,
        }
    }

    /// The IPv6 address, if this is an AAAA record.
    pub fn as_aaaa(&self) -> Option<Ipv6Addr> {
        match self {
            RData::Aaaa(a) => Some(*a),
            _ => None,
        }
    }
}

/// A resource record.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Record {
    /// Owner name.
    pub name: DomainName,
    /// Time to live, seconds.
    pub ttl: u32,
    /// Class (always `IN` for real records here).
    pub class: QClass,
    /// Typed data.
    pub rdata: RData,
}

impl Record {
    /// An `IN`-class record.
    pub fn new(name: DomainName, ttl: u32, rdata: RData) -> Self {
        Record {
            name,
            ttl,
            class: QClass::IN,
            rdata,
        }
    }
}

/// Header flags the reproduction uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct Flags {
    /// Query (false) / response (true).
    pub qr: bool,
    /// Authoritative answer.
    pub aa: bool,
    /// Truncated.
    pub tc: bool,
    /// Recursion desired.
    pub rd: bool,
    /// Recursion available.
    pub ra: bool,
}

/// A DNS message.
///
/// The OPT pseudo-record of the additional section is kept *typed* (as
/// [`OptRecord`]) rather than in the record list; the wire codec moves it in
/// and out of the additional section transparently.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Message {
    /// Transaction ID.
    pub id: u16,
    /// Header flags.
    pub flags: Flags,
    /// Response code.
    pub rcode: Rcode,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section.
    pub authority: Vec<Record>,
    /// Additional section, excluding OPT.
    pub additional: Vec<Record>,
    /// EDNS0 OPT pseudo-record, if present.
    pub edns: Option<OptRecord>,
}

impl Message {
    /// A recursive query for `name`/`qtype` with a fresh EDNS0 OPT record.
    pub fn query(id: u16, name: DomainName, qtype: QType) -> Message {
        Message {
            id,
            flags: Flags {
                qr: false,
                aa: false,
                tc: false,
                rd: true,
                ra: false,
            },
            rcode: Rcode::NoError,
            questions: vec![Question::new(name, qtype)],
            answers: Vec::new(),
            authority: Vec::new(),
            additional: Vec::new(),
            edns: Some(OptRecord::default()),
        }
    }

    /// The EDNS OPT record, attaching a default one when absent.
    ///
    /// Queries built by [`Message::query`] always carry EDNS; for any other
    /// message this makes "set an EDNS option" total instead of panicking.
    pub fn ensure_edns(&mut self) -> &mut OptRecord {
        self.edns.get_or_insert_with(OptRecord::default)
    }

    /// A response skeleton mirroring this query's ID and question.
    pub fn response_to(&self, rcode: Rcode) -> Message {
        Message {
            id: self.id,
            flags: Flags {
                qr: true,
                aa: false,
                tc: false,
                rd: self.flags.rd,
                ra: false,
            },
            rcode,
            questions: self.questions.clone(),
            answers: Vec::new(),
            authority: Vec::new(),
            additional: Vec::new(),
            edns: self.edns.as_ref().map(|_| OptRecord::default()),
        }
    }

    /// The first question, if any.
    pub fn question(&self) -> Option<&Question> {
        self.questions.first()
    }

    /// All A answers.
    pub fn a_answers(&self) -> Vec<Ipv4Addr> {
        self.answers.iter().filter_map(|r| r.rdata.as_a()).collect()
    }

    /// All AAAA answers.
    pub fn aaaa_answers(&self) -> Vec<Ipv6Addr> {
        self.answers
            .iter()
            .filter_map(|r| r.rdata.as_aaaa())
            .collect()
    }

    /// `true` for a NOERROR response whose answer section is empty —
    /// one of the shapes the blocking survey classifies as intentional
    /// blocking when the authoritative server is known to answer.
    pub fn is_noerror_nodata(&self) -> bool {
        self.flags.qr && self.rcode == Rcode::NoError && self.answers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::mask_domain;

    #[test]
    fn qtype_numbers_round_trip() {
        for t in [
            QType::A,
            QType::AAAA,
            QType::CNAME,
            QType::NS,
            QType::SOA,
            QType::TXT,
            QType::PTR,
            QType::OPT,
            QType::Other(99),
        ] {
            assert_eq!(QType::from_number(t.number()), t);
        }
        assert_eq!(QType::A.number(), 1);
        assert_eq!(QType::AAAA.number(), 28);
        assert_eq!(QType::OPT.number(), 41);
    }

    #[test]
    fn rcode_numbers_and_mnemonics() {
        assert_eq!(Rcode::NxDomain.number(), 3);
        assert_eq!(Rcode::from_number(5), Rcode::Refused);
        assert_eq!(Rcode::from_number(0x13), Rcode::NxDomain); // masked to 4 bits
        assert_eq!(Rcode::NxDomain.mnemonic(), "NXDOMAIN");
        assert_eq!(Rcode::Other(9).mnemonic(), "RCODE9");
        for n in 0..=15u8 {
            assert_eq!(Rcode::from_number(n).number(), n);
        }
    }

    #[test]
    fn query_builder_sets_rd_and_edns() {
        let q = Message::query(0x1234, mask_domain(), QType::A);
        assert!(!q.flags.qr);
        assert!(q.flags.rd);
        assert!(q.edns.is_some());
        assert_eq!(q.question().unwrap().qtype, QType::A);
        assert_eq!(q.question().unwrap().name, mask_domain());
    }

    #[test]
    fn response_mirrors_query() {
        let q = Message::query(7, mask_domain(), QType::AAAA);
        let r = q.response_to(Rcode::NxDomain);
        assert_eq!(r.id, 7);
        assert!(r.flags.qr);
        assert_eq!(r.rcode, Rcode::NxDomain);
        assert_eq!(r.questions, q.questions);
        assert!(r.edns.is_some());
    }

    #[test]
    fn answer_extractors() {
        let mut r = Message::query(1, mask_domain(), QType::A).response_to(Rcode::NoError);
        r.answers.push(Record::new(
            mask_domain(),
            60,
            RData::A(Ipv4Addr::new(17, 1, 2, 3)),
        ));
        r.answers.push(Record::new(
            mask_domain(),
            60,
            RData::Aaaa("2620:149::1".parse().unwrap()),
        ));
        assert_eq!(r.a_answers(), vec![Ipv4Addr::new(17, 1, 2, 3)]);
        assert_eq!(r.aaaa_answers().len(), 1);
        assert!(!r.is_noerror_nodata());
    }

    #[test]
    fn noerror_nodata_shape() {
        let q = Message::query(1, mask_domain(), QType::A);
        let r = q.response_to(Rcode::NoError);
        assert!(r.is_noerror_nodata());
        assert!(!q.is_noerror_nodata()); // queries never count
    }

    #[test]
    fn rdata_type_mapping() {
        assert_eq!(RData::A(Ipv4Addr::LOCALHOST).rtype(), QType::A);
        assert_eq!(RData::Txt("x".into()).rtype(), QType::TXT);
        assert_eq!(
            RData::Soa {
                mname: mask_domain(),
                rname: mask_domain(),
                serial: 1
            }
            .rtype(),
            QType::SOA
        );
        assert!(RData::Cname(mask_domain()).as_a().is_none());
    }
}
