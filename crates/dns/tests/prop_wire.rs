//! Property tests for the DNS wire codec.
//!
//! Round-trips arbitrary messages (names, record mixes, ECS options) through
//! encode/decode, and checks the decoder never panics on mutated bytes.

use std::net::{Ipv4Addr, Ipv6Addr};

use bytes::BytesMut;
use proptest::prelude::*;
use tectonic_dns::{
    decode_message, encode_message, DomainName, EcsOption, Message, MessageEncoder, QType,
    QueryTemplate, RData, Rcode, Record,
};

/// Labels drawn from a DNS-plausible alphabet (the codec is 8-bit safe, but
/// printable labels keep failures readable).
fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9_-]{1,12}").unwrap()
}

fn arb_name() -> impl Strategy<Value = DomainName> {
    prop::collection::vec(arb_label(), 0..6)
        .prop_map(|labels| DomainName::from_labels(labels).unwrap())
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<u32>().prop_map(|b| RData::A(Ipv4Addr::from(b))),
        any::<u128>().prop_map(|b| RData::Aaaa(Ipv6Addr::from(b))),
        arb_name().prop_map(RData::Cname),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Ptr),
        proptest::string::string_regex("[ -~]{0,80}")
            .unwrap()
            .prop_map(RData::Txt),
        (arb_name(), arb_name(), any::<u32>()).prop_map(|(mname, rname, serial)| RData::Soa {
            mname,
            rname,
            serial
        }),
    ]
}

fn arb_record() -> impl Strategy<Value = Record> {
    (arb_name(), any::<u32>(), arb_rdata()).prop_map(|(name, ttl, rdata)| Record {
        name,
        ttl,
        class: tectonic_dns::QClass::IN,
        rdata,
    })
}

fn arb_qtype() -> impl Strategy<Value = QType> {
    prop_oneof![
        Just(QType::A),
        Just(QType::AAAA),
        Just(QType::CNAME),
        Just(QType::NS),
        Just(QType::TXT),
        Just(QType::SOA),
        Just(QType::PTR),
        (0u16..=4096).prop_map(QType::from_number),
    ]
    .prop_filter("OPT is not a question type", |t| *t != QType::OPT)
}

fn arb_ecs() -> impl Strategy<Value = EcsOption> {
    prop_oneof![
        (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| {
            EcsOption::for_v4_net(tectonic_net::Ipv4Net::new(Ipv4Addr::from(bits), len).unwrap())
        }),
        (any::<u128>(), 0u8..=128).prop_map(|(bits, len)| {
            EcsOption::for_v6_net(tectonic_net::Ipv6Net::new(Ipv6Addr::from(bits), len).unwrap())
        }),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        arb_name(),
        arb_qtype(),
        prop::collection::vec(arb_record(), 0..6),
        prop::collection::vec(arb_record(), 0..3),
        prop::option::of(arb_ecs()),
        0u8..=5,
        any::<bool>(),
    )
        .prop_map(|(id, name, qtype, answers, additional, ecs, rcode, qr)| {
            let mut m = Message::query(id, name, qtype);
            m.flags.qr = qr;
            m.rcode = Rcode::from_number(rcode);
            m.answers = answers;
            m.additional = additional;
            if let Some(e) = ecs {
                m.edns.as_mut().unwrap().set_ecs(e);
            }
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn message_round_trips(m in arb_message()) {
        let bytes = encode_message(&m);
        let back = decode_message(&bytes).expect("decode own encoding");
        prop_assert_eq!(back, m);
    }

    #[test]
    fn ecs_payload_round_trips(e in arb_ecs()) {
        let bytes = e.encode();
        let back = EcsOption::decode(&bytes).expect("decode own encoding");
        prop_assert_eq!(back, e);
    }

    #[test]
    fn decoder_never_panics_on_truncation(m in arb_message(), cut in 0usize..2048) {
        let bytes = encode_message(&m);
        let cut = cut % (bytes.len() + 1);
        let _ = decode_message(&bytes[..cut]); // may Err, must not panic
    }

    #[test]
    fn decoder_never_panics_on_bitflips(
        m in arb_message(),
        flips in prop::collection::vec((any::<u16>(), 0u8..8), 1..8),
    ) {
        let mut bytes = encode_message(&m);
        for (pos, bit) in flips {
            let idx = pos as usize % bytes.len();
            bytes[idx] ^= 1 << bit;
        }
        let _ = decode_message(&bytes); // may Err or decode junk, must not panic
    }

    #[test]
    fn decoder_never_panics_on_random_bytes(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = decode_message(&bytes);
    }

    #[test]
    fn reencoding_decoded_is_stable(m in arb_message()) {
        let bytes = encode_message(&m);
        let decoded = decode_message(&bytes).unwrap();
        let bytes2 = encode_message(&decoded);
        let decoded2 = decode_message(&bytes2).unwrap();
        prop_assert_eq!(decoded, decoded2);
    }

    /// A `MessageEncoder` reused across arbitrary messages must emit exactly
    /// what a fresh `encode_message` emits for each of them — stale
    /// compression state leaking between messages would corrupt replies on
    /// the scanner's scratch-buffer path.
    #[test]
    fn reused_encoder_is_byte_identical(ms in prop::collection::vec(arb_message(), 1..8)) {
        let mut encoder = MessageEncoder::new();
        let mut buf = BytesMut::new();
        for m in &ms {
            encoder.encode_into(m, &mut buf);
            prop_assert_eq!(&buf[..], &encode_message(m)[..]);
        }
    }

    /// Template patching must be byte-identical to encoding the equivalent
    /// query from scratch, for any domain, ID and /24 subnet — this is the
    /// fast path the ECS scanner rides for every query it sends.
    #[test]
    fn template_patching_matches_general_encoder(
        name in arb_name(),
        ids in prop::collection::vec(any::<u16>(), 1..6),
        nets in prop::collection::vec(any::<u32>(), 1..6),
    ) {
        let template = QueryTemplate::new_v4_24(&name, QType::A)
            .expect("template construction must succeed for valid names");
        let mut patched = template.instantiate();
        for (&id, &bits) in ids.iter().zip(nets.iter().cycle()) {
            let subnet =
                tectonic_net::Ipv4Net::new(Ipv4Addr::from(bits), 24).unwrap();
            let mut want = Message::query(id, name.clone(), QType::A);
            want.edns
                .as_mut()
                .unwrap()
                .set_ecs(EcsOption::for_v4_net(subnet));
            prop_assert_eq!(patched.patch(id, subnet), &encode_message(&want)[..]);
        }
    }
}
