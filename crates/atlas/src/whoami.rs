//! The resolver-identity service (`whoami.akamai.net`).
//!
//! The paper identifies which resolvers Atlas probes actually use by
//! resolving a name whose authoritative server answers with the *querying
//! resolver's* address. [`WhoamiZone`] implements that behaviour as a
//! dynamic zone hook: an `A` query is answered with the source address the
//! server saw, and a `TXT` query spells it out.

use std::net::IpAddr;
use std::sync::Arc;

use tectonic_dns::server::AuthoritativeServer;
use tectonic_dns::zone::{EcsAnswer, EcsAnswerer, QueryInfo};
use tectonic_dns::{DomainName, QType, Question, RData, Zone};

/// The dynamic answerer echoing the query source.
#[derive(Debug, Default)]
pub struct WhoamiZone;

impl EcsAnswerer for WhoamiZone {
    fn answer(
        &self,
        question: &Question,
        _ecs: Option<&tectonic_dns::EcsOption>,
        info: &QueryInfo,
    ) -> Option<EcsAnswer> {
        if question.name.to_ascii_lower() != "whoami.akamai.net" {
            return None;
        }
        let rdatas = match (question.qtype, info.src) {
            (QType::A, IpAddr::V4(a)) => vec![RData::A(a)],
            (QType::AAAA, IpAddr::V6(a)) => vec![RData::Aaaa(a)],
            (QType::TXT, src) => vec![RData::Txt(format!("resolver={src}"))],
            _ => vec![],
        };
        Some(EcsAnswer {
            rdatas,
            ttl: 0, // identity answers must not be cached
            scope_len: 0,
        })
    }
}

/// Builds an authoritative server hosting only the whoami zone.
pub fn whoami_server() -> AuthoritativeServer {
    let zone = Zone::new(DomainName::literal("akamai.net")).with_dynamic(Arc::new(WhoamiZone));
    AuthoritativeServer::new().with_zone(zone)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use tectonic_dns::server::{NameServer, QueryContext, ServerReply};
    use tectonic_dns::{decode_message, encode_message, Message};
    use tectonic_net::SimTime;

    fn ask(qtype: QType, src: &str) -> Message {
        let auth = whoami_server();
        let q = Message::query(1, "whoami.akamai.net".parse().unwrap(), qtype);
        let ctx = QueryContext {
            src: src.parse().unwrap(),
            now: SimTime(0),
        };
        match auth.handle_query(&encode_message(&q), &ctx) {
            ServerReply::Response(bytes) => decode_message(&bytes).unwrap(),
            ServerReply::Dropped => panic!("dropped"),
        }
    }

    #[test]
    fn a_query_echoes_source() {
        let r = ask(QType::A, "8.8.8.8");
        assert_eq!(r.a_answers(), vec![Ipv4Addr::new(8, 8, 8, 8)]);
        assert_eq!(r.answers[0].ttl, 0);
    }

    #[test]
    fn aaaa_from_v6_source() {
        let r = ask(QType::AAAA, "2001:4860:4860::8888");
        assert_eq!(r.aaaa_answers().len(), 1);
    }

    #[test]
    fn txt_spells_out_source() {
        let r = ask(QType::TXT, "9.9.9.9");
        match &r.answers[0].rdata {
            RData::Txt(s) => assert_eq!(s, "resolver=9.9.9.9"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn family_mismatch_yields_no_data() {
        let r = ask(QType::AAAA, "9.9.9.9");
        assert!(r.is_noerror_nodata());
    }

    #[test]
    fn other_names_in_zone_nxdomain() {
        let auth = whoami_server();
        let q = Message::query(1, "other.akamai.net".parse().unwrap(), QType::A);
        let ctx = QueryContext {
            src: "1.2.3.4".parse().unwrap(),
            now: SimTime(0),
        };
        match auth.handle_query(&encode_message(&q), &ctx) {
            ServerReply::Response(bytes) => {
                let r = decode_message(&bytes).unwrap();
                assert_eq!(r.rcode, tectonic_dns::Rcode::NxDomain);
            }
            ServerReply::Dropped => panic!("dropped"),
        }
    }
}
