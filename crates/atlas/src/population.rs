//! Probe population generation.
//!
//! RIPE Atlas probes are not uniformly distributed: the paper cites the
//! platform's well-known North-America/Europe bias (and argues it roughly
//! matches the relay service's own deployment focus). The generator takes a
//! pool of candidate host sites (typically one per client AS of the
//! simulated Internet) and draws probes with:
//!
//! * a geographic NA/EU weighting,
//! * a resolver mix in which >50 % of probes sit behind the four big
//!   public resolvers (the paper's `whoami.akamai.net` finding),
//! * a small share of resolvers that *block* the relay domains, with the
//!   paper's RCODE mix (72 % NXDOMAIN, 13 % NOERROR, 5 % REFUSED, the rest
//!   SERVFAIL/FORMERR, plus one observed DNS hijack),
//! * a baseline transient-failure probability (the 10 % timeouts).

use std::net::{IpAddr, Ipv4Addr};

use tectonic_dns::resolver::{ResolverKind, ResolverPolicy};
use tectonic_net::{Asn, SimRng};

use tectonic_geo::country::{country_info, CountryCode};

use crate::probe::Probe;

/// A candidate probe host site (usually one per client AS).
#[derive(Debug, Clone)]
pub struct ProbeSite {
    /// Host AS.
    pub asn: Asn,
    /// Country of the AS.
    pub cc: CountryCode,
    /// An address for the probe inside the AS.
    pub probe_addr: Ipv4Addr,
    /// The in-network resolver address (for ISP/local resolver probes).
    pub isp_resolver_addr: Ipv4Addr,
}

/// Population generation parameters.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// Number of probes to create.
    pub probes: usize,
    /// Extra weight multiplier for NA/EU sites (platform bias).
    pub na_eu_bias: f64,
    /// Resolver mix `(kind, share)`; shares are normalised.
    pub resolver_mix: Vec<(ResolverKind, f64)>,
    /// Fraction of probes whose resolver answers-but-fails for the relay
    /// domains (split per `rcode_mix`).
    pub blocking_fraction: f64,
    /// Mix of blocking behaviours, normalised: NXDOMAIN, NOERROR-no-data,
    /// REFUSED, SERVFAIL, FORMERR.
    pub rcode_mix: [f64; 5],
    /// Install exactly one DNS-hijack resolver (the paper's `nextdns.io`
    /// observation) when true and the population is large enough.
    pub one_hijack: bool,
    /// Baseline per-measurement timeout probability (paper: 10 %).
    pub flaky_fraction: f64,
}

impl PopulationConfig {
    /// The paper-shaped defaults (§3, §4.1).
    pub fn paper() -> PopulationConfig {
        PopulationConfig {
            probes: 11_700,
            na_eu_bias: 5.0,
            resolver_mix: vec![
                (ResolverKind::GooglePublic, 0.22),
                (ResolverKind::CloudflarePublic, 0.15),
                (ResolverKind::Quad9, 0.09),
                (ResolverKind::OpenDns, 0.06),
                (ResolverKind::Isp, 0.38),
                (ResolverKind::Local, 0.10),
            ],
            blocking_fraction: 0.075,
            rcode_mix: [0.72, 0.13, 0.05, 0.055, 0.045],
            one_hijack: true,
            flaky_fraction: 0.10,
        }
    }

    /// Scaled-down probe count for tests.
    pub fn with_probes(mut self, probes: usize) -> PopulationConfig {
        self.probes = probes;
        self
    }
}

/// Rough NA/EU test on country centroids.
fn is_na_eu(cc: CountryCode) -> bool {
    let Some(info) = country_info(cc) else {
        return false;
    };
    let europe = info.lat > 34.0 && info.lat < 72.0 && info.lon > -26.0 && info.lon < 46.0;
    let north_america = info.lat > 14.0 && info.lat < 73.0 && info.lon > -170.0 && info.lon < -50.0;
    europe || north_america
}

/// Generates the probe population.
///
/// `public_source` supplies the anycast source address a public resolver
/// uses near a given country (shared with the authoritative zone model so
/// country attribution agrees on both sides).
pub fn generate(
    rng: &SimRng,
    sites: &[ProbeSite],
    config: &PopulationConfig,
    public_source: &dyn Fn(ResolverKind, CountryCode) -> Ipv4Addr,
) -> Vec<Probe> {
    if sites.is_empty() || config.probes == 0 {
        return Vec::new();
    }
    let mut rng = rng.fork("atlas-population");
    let site_weights: Vec<f64> = sites
        .iter()
        .map(|s| {
            if is_na_eu(s.cc) {
                config.na_eu_bias
            } else {
                1.0
            }
        })
        .collect();
    let kind_weights: Vec<f64> = config.resolver_mix.iter().map(|(_, w)| *w).collect();

    let hijack_at = if config.one_hijack && config.probes > 10 {
        Some(rng.index(config.probes))
    } else {
        None
    };

    (0..config.probes)
        .map(|i| {
            let site = &sites[rng.pick_weighted(&site_weights).unwrap_or(0)];
            let kind = config.resolver_mix[rng.pick_weighted(&kind_weights).unwrap_or(0)].0;
            let resolver_addr: IpAddr = match kind {
                ResolverKind::Isp => IpAddr::V4(site.isp_resolver_addr),
                ResolverKind::Local => IpAddr::V4(site.probe_addr),
                public => IpAddr::V4(public_source(public, site.cc)),
            };
            let policy = if Some(i) == hijack_at {
                // A filtering service answering with its own block page.
                ResolverPolicy::Hijack(Ipv4Addr::new(198, 18, 200, 200))
            } else if rng.chance(config.blocking_fraction) {
                match rng.pick_weighted(&config.rcode_mix).unwrap_or(0) {
                    0 => ResolverPolicy::BlockNxDomain,
                    1 => ResolverPolicy::BlockNoData,
                    2 => ResolverPolicy::BlockRefused,
                    3 => ResolverPolicy::BlockServFail,
                    _ => ResolverPolicy::BlockFormErr,
                }
            } else {
                ResolverPolicy::Normal
            };
            Probe {
                id: i as u32,
                asn: site.asn,
                cc: site.cc,
                addr: site.probe_addr,
                resolver_kind: kind,
                resolver_addr,
                policy,
                flaky: config.flaky_fraction,
            }
        })
        .collect()
}

/// Summary statistics of a population.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationStats {
    /// Number of probes.
    pub probes: usize,
    /// Distinct host ASes.
    pub ases: usize,
    /// Distinct countries.
    pub countries: usize,
    /// Share of probes behind the four public resolvers.
    pub public_resolver_share: f64,
    /// Share of probes behind blocking resolvers.
    pub blocking_share: f64,
}

/// Computes [`PopulationStats`].
pub fn stats(probes: &[Probe]) -> PopulationStats {
    use std::collections::HashSet;
    let ases: HashSet<Asn> = probes.iter().map(|p| p.asn).collect();
    let countries: HashSet<CountryCode> = probes.iter().map(|p| p.cc).collect();
    let public = probes
        .iter()
        .filter(|p| p.resolver_kind.is_public())
        .count();
    let blocking = probes.iter().filter(|p| p.is_blocking()).count();
    PopulationStats {
        probes: probes.len(),
        ases: ases.len(),
        countries: countries.len(),
        public_resolver_share: public as f64 / probes.len().max(1) as f64,
        blocking_share: blocking as f64 / probes.len().max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tectonic_geo::country::all_countries;

    fn sites() -> Vec<ProbeSite> {
        // One site per country, round-robin ASNs.
        all_countries()
            .iter()
            .enumerate()
            .map(|(i, c)| ProbeSite {
                asn: Asn(100_000 + i as u32),
                cc: c.code,
                probe_addr: Ipv4Addr::from(0x0100_0000u32 + (i as u32) * 256 + 10),
                isp_resolver_addr: Ipv4Addr::from(0x0100_0000u32 + (i as u32) * 256 + 53),
            })
            .collect()
    }

    fn anycast(kind: ResolverKind, cc: CountryCode) -> Ipv4Addr {
        let k = ResolverKind::PUBLIC
            .iter()
            .position(|x| *x == kind)
            .unwrap() as u32;
        let c = all_countries().iter().position(|x| x.code == cc).unwrap() as u32;
        Ipv4Addr::from(0xAC44_0000u32 + k * 65_536 + c * 4 + 1)
    }

    fn population() -> Vec<Probe> {
        generate(
            &SimRng::new(42),
            &sites(),
            &PopulationConfig::paper().with_probes(4_000),
            &anycast,
        )
    }

    #[test]
    fn population_has_paper_shape() {
        let probes = population();
        let s = stats(&probes);
        assert_eq!(s.probes, 4_000);
        assert!(s.countries > 100, "only {} countries", s.countries);
        assert!(
            (0.45..0.60).contains(&s.public_resolver_share),
            "public share {:.3}",
            s.public_resolver_share
        );
        assert!(
            (0.04..0.08).contains(&s.blocking_share),
            "blocking share {:.3}",
            s.blocking_share
        );
    }

    #[test]
    fn na_eu_bias_shows_in_distribution() {
        let probes = population();
        let na_eu = probes.iter().filter(|p| is_na_eu(p.cc)).count();
        let share = na_eu as f64 / probes.len() as f64;
        assert!(share > 0.4, "NA/EU share {share:.3} too low");
    }

    #[test]
    fn exactly_one_hijack() {
        let probes = population();
        let hijacks = probes
            .iter()
            .filter(|p| matches!(p.policy, ResolverPolicy::Hijack(_)))
            .count();
        assert_eq!(hijacks, 1);
    }

    #[test]
    fn public_probes_use_anycast_sources() {
        let probes = population();
        for p in probes.iter().filter(|p| p.resolver_kind.is_public()) {
            assert_eq!(p.resolver_addr, IpAddr::V4(anycast(p.resolver_kind, p.cc)));
        }
        for p in probes
            .iter()
            .filter(|p| p.resolver_kind == ResolverKind::Isp)
        {
            // ISP resolver is inside the probe's /24 (same site).
            let IpAddr::V4(r) = p.resolver_addr else {
                panic!("v4 expected")
            };
            assert_eq!(
                u32::from(r) >> 8,
                u32::from(p.addr) >> 8,
                "ISP resolver outside probe network"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = population();
        let b = population();
        assert_eq!(a.len(), b.len());
        assert_eq!(a[17].asn, b[17].asn);
        assert_eq!(a[17].policy, b[17].policy);
    }

    #[test]
    fn empty_inputs() {
        let none = generate(&SimRng::new(1), &[], &PopulationConfig::paper(), &anycast);
        assert!(none.is_empty());
        let zero = generate(
            &SimRng::new(1),
            &sites(),
            &PopulationConfig::paper().with_probes(0),
            &anycast,
        );
        assert!(zero.is_empty());
    }

    #[test]
    fn na_eu_classification_spot_checks() {
        assert!(is_na_eu(CountryCode::US));
        assert!(is_na_eu(CountryCode::DE));
        assert!(!is_na_eu(CountryCode::new("JP").unwrap()));
        assert!(!is_na_eu(CountryCode::new("BR").unwrap()));
        assert!(!is_na_eu(CountryCode::new("ZQ").unwrap()));
    }
}
