//! A single measurement probe.

use std::net::{IpAddr, Ipv4Addr};

use tectonic_dns::resolver::{Resolver, ResolverKind, ResolverPolicy};
use tectonic_dns::DomainName;
use tectonic_net::Asn;

use tectonic_geo::country::CountryCode;

/// One probe of the platform.
#[derive(Debug, Clone)]
pub struct Probe {
    /// Platform-assigned probe ID.
    pub id: u32,
    /// AS the probe is hosted in.
    pub asn: Asn,
    /// Country the probe is in.
    pub cc: CountryCode,
    /// The probe's own address.
    pub addr: Ipv4Addr,
    /// Which resolver service the probe uses.
    pub resolver_kind: ResolverKind,
    /// The address that resolver queries authoritatives from.
    pub resolver_addr: IpAddr,
    /// The resolver's blocking policy (almost always `Normal`).
    pub policy: ResolverPolicy,
    /// Probability a measurement from this probe transiently times out
    /// (network flakiness, unrelated to DNS blocking).
    pub flaky: f64,
}

impl Probe {
    /// Builds the DNS resolver object this probe queries through, applying
    /// its policy to the given blocked suffixes.
    pub fn resolver(&self, blocked_suffixes: Vec<DomainName>) -> Resolver {
        Resolver::new(self.resolver_kind, self.resolver_addr)
            .with_policy(self.policy, blocked_suffixes)
    }

    /// Whether the probe's resolver blocks the relay domains.
    pub fn is_blocking(&self) -> bool {
        self.policy.is_blocking()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(policy: ResolverPolicy) -> Probe {
        Probe {
            id: 1,
            asn: Asn(100_001),
            cc: CountryCode::DE,
            addr: Ipv4Addr::new(1, 2, 3, 4),
            resolver_kind: ResolverKind::Isp,
            resolver_addr: "1.2.3.53".parse().unwrap(),
            policy,
            flaky: 0.0,
        }
    }

    #[test]
    fn resolver_applies_policy_to_suffixes() {
        let p = probe(ResolverPolicy::BlockNxDomain);
        let r = p.resolver(vec!["icloud.com".parse().unwrap()]);
        assert!(r.blocks(&"mask.icloud.com".parse().unwrap()));
        assert!(!r.blocks(&"example.org".parse().unwrap()));
        assert!(p.is_blocking());
    }

    #[test]
    fn normal_probe_does_not_block() {
        let p = probe(ResolverPolicy::Normal);
        assert!(!p.is_blocking());
        let r = p.resolver(vec!["icloud.com".parse().unwrap()]);
        assert!(!r.blocks(&"mask.icloud.com".parse().unwrap()));
    }
}
