//! DNS measurement campaigns.
//!
//! A [`DnsCampaign`] runs one `(name, qtype)` measurement across a probe
//! set, the way the paper schedules its A/AAAA resolutions of the mask
//! domains and the control-domain comparison run. Transient timeouts are
//! injected per probe draw (the paper's ~10 % baseline), independent of any
//! resolver policy.

use std::net::{Ipv4Addr, Ipv6Addr};

use serde::{Deserialize, Serialize};
use tectonic_dns::resolver::{ResolutionOutcome, ResolverKind};
use tectonic_dns::server::NameServer;
use tectonic_dns::{DomainName, QType, Rcode};
use tectonic_net::{Asn, SimRng, SimTime};

use tectonic_geo::country::CountryCode;

use crate::probe::Probe;

/// What one probe measured.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MeasurementOutcome {
    /// No response within the platform timeout.
    Timeout,
    /// A DNS response arrived.
    Response {
        /// Its response code.
        rcode: Rcode,
        /// A answers, if any.
        answers_v4: Vec<Ipv4Addr>,
        /// AAAA answers, if any.
        answers_v6: Vec<Ipv6Addr>,
    },
}

impl MeasurementOutcome {
    /// `true` when a response carried at least one address record.
    pub fn has_answers(&self) -> bool {
        match self {
            MeasurementOutcome::Timeout => false,
            MeasurementOutcome::Response {
                answers_v4,
                answers_v6,
                ..
            } => !answers_v4.is_empty() || !answers_v6.is_empty(),
        }
    }

    /// The rcode, if a response arrived.
    pub fn rcode(&self) -> Option<Rcode> {
        match self {
            MeasurementOutcome::Timeout => None,
            MeasurementOutcome::Response { rcode, .. } => Some(*rcode),
        }
    }
}

/// One probe's result row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeResult {
    /// Probe ID.
    pub probe_id: u32,
    /// Probe host AS.
    pub asn: Asn,
    /// Probe country.
    pub cc: CountryCode,
    /// Which resolver kind served the probe.
    #[serde(skip)]
    pub resolver_kind: Option<ResolverKind>,
    /// The measurement outcome.
    pub outcome: MeasurementOutcome,
}

/// A one-off DNS measurement across a probe set.
#[derive(Debug, Clone)]
pub struct DnsCampaign {
    /// The queried name.
    pub qname: DomainName,
    /// The queried type.
    pub qtype: QType,
    /// Suffixes that probes' blocking policies apply to.
    pub policy_suffixes: Vec<DomainName>,
}

impl DnsCampaign {
    /// A campaign against one of the relay mask domains (policies apply).
    pub fn mask(qname: DomainName, qtype: QType) -> DnsCampaign {
        DnsCampaign {
            qname,
            qtype,
            policy_suffixes: vec![DomainName::literal("icloud.com")],
        }
    }

    /// A control campaign against an unrelated domain (policies apply to
    /// the relay suffixes only, so blocking resolvers still answer).
    pub fn control(qname: DomainName, qtype: QType) -> DnsCampaign {
        DnsCampaign {
            qname,
            qtype,
            policy_suffixes: vec![DomainName::literal("icloud.com")],
        }
    }

    /// The campaign's flake-stream root for a given campaign generator.
    ///
    /// Each probe's transient-timeout draw comes from an independent fork
    /// of this root keyed by probe id (see [`DnsCampaign::run_probe`]), so
    /// a probe's outcome depends only on `(seed, probe.id)` — never on how
    /// many probes ran before it or on which shard of the discrete-event
    /// engine it landed.
    pub fn flake_base(rng: &SimRng) -> SimRng {
        rng.fork("campaign-flakes")
    }

    /// Runs the campaign for one probe at simulated time `now`.
    pub fn run_probe(
        &self,
        probe: &Probe,
        auth: &dyn NameServer,
        now: SimTime,
        flake_base: &SimRng,
    ) -> ProbeResult {
        let mut flake_rng = flake_base.fork_indexed("probe-flake", u64::from(probe.id));
        let outcome = if flake_rng.chance(probe.flaky) {
            MeasurementOutcome::Timeout
        } else {
            let resolver = probe.resolver(self.policy_suffixes.clone());
            match resolver.resolve(
                std::net::IpAddr::V4(probe.addr),
                &self.qname,
                self.qtype,
                auth,
                now,
            ) {
                ResolutionOutcome::Timeout => MeasurementOutcome::Timeout,
                ResolutionOutcome::Answered(msg) => MeasurementOutcome::Response {
                    rcode: msg.rcode,
                    answers_v4: msg.a_answers(),
                    answers_v6: msg.aaaa_answers(),
                },
            }
        };
        ProbeResult {
            probe_id: probe.id,
            asn: probe.asn,
            cc: probe.cc,
            resolver_kind: Some(probe.resolver_kind),
            outcome,
        }
    }

    /// Runs the campaign: every probe resolves through its own resolver
    /// against `auth` at simulated time `now`.
    pub fn run(
        &self,
        probes: &[Probe],
        auth: &dyn NameServer,
        now: SimTime,
        rng: &SimRng,
    ) -> Vec<ProbeResult> {
        let flake_base = DnsCampaign::flake_base(rng);
        probes
            .iter()
            .map(|probe| self.run_probe(probe, auth, now, &flake_base))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::IpAddr;
    use std::sync::Arc;
    use tectonic_dns::resolver::ResolverPolicy;
    use tectonic_dns::server::AuthoritativeServer;
    use tectonic_dns::zone::{EcsAnswer, EcsAnswerer, QueryInfo};
    use tectonic_dns::{Question, RData, Zone};

    struct FixedAddr;

    impl EcsAnswerer for FixedAddr {
        fn answer(
            &self,
            question: &Question,
            _ecs: Option<&tectonic_dns::EcsOption>,
            _info: &QueryInfo,
        ) -> Option<EcsAnswer> {
            if question.qtype == QType::A {
                Some(EcsAnswer {
                    rdatas: vec![RData::A(Ipv4Addr::new(17, 9, 9, 9))],
                    ttl: 60,
                    scope_len: 24,
                })
            } else {
                Some(EcsAnswer {
                    rdatas: vec![],
                    ttl: 60,
                    scope_len: 0,
                })
            }
        }
    }

    fn auth() -> AuthoritativeServer {
        let zone = Zone::new("icloud.com".parse().unwrap()).with_dynamic(Arc::new(FixedAddr));
        AuthoritativeServer::new().with_zone(zone)
    }

    fn probe(id: u32, policy: ResolverPolicy, flaky: f64) -> Probe {
        Probe {
            id,
            asn: Asn(100_000 + id),
            cc: CountryCode::US,
            addr: Ipv4Addr::new(1, 0, id as u8, 10),
            resolver_kind: ResolverKind::Isp,
            resolver_addr: IpAddr::V4(Ipv4Addr::new(1, 0, id as u8, 53)),
            policy,
            flaky,
        }
    }

    #[test]
    fn normal_probes_get_answers() {
        let probes = vec![probe(0, ResolverPolicy::Normal, 0.0)];
        let campaign = DnsCampaign::mask("mask.icloud.com".parse().unwrap(), QType::A);
        let results = campaign.run(&probes, &auth(), SimTime(0), &SimRng::new(1));
        assert_eq!(results.len(), 1);
        assert!(results[0].outcome.has_answers());
        assert_eq!(results[0].outcome.rcode(), Some(Rcode::NoError));
    }

    #[test]
    fn blocking_probe_fails_mask_but_not_control() {
        let probes = vec![probe(0, ResolverPolicy::BlockNxDomain, 0.0)];
        let mask = DnsCampaign::mask("mask.icloud.com".parse().unwrap(), QType::A);
        let results = mask.run(&probes, &auth(), SimTime(0), &SimRng::new(1));
        assert_eq!(results[0].outcome.rcode(), Some(Rcode::NxDomain));
        // Control domain: policy does not apply; the auth refuses the
        // out-of-zone name but the probe *does* get a response.
        let control = DnsCampaign::control("control.example".parse().unwrap(), QType::A);
        let results = control.run(&probes, &auth(), SimTime(0), &SimRng::new(1));
        assert_eq!(results[0].outcome.rcode(), Some(Rcode::Refused));
    }

    #[test]
    fn flaky_probes_time_out_sometimes() {
        let probes: Vec<Probe> = (0..200)
            .map(|i| probe(i, ResolverPolicy::Normal, 0.5))
            .collect();
        let campaign = DnsCampaign::mask("mask.icloud.com".parse().unwrap(), QType::A);
        let results = campaign.run(&probes, &auth(), SimTime(0), &SimRng::new(3));
        let timeouts = results
            .iter()
            .filter(|r| r.outcome == MeasurementOutcome::Timeout)
            .count();
        assert!((50..150).contains(&timeouts), "timeouts {timeouts}");
    }

    #[test]
    fn campaign_is_deterministic() {
        let probes: Vec<Probe> = (0..50)
            .map(|i| probe(i, ResolverPolicy::Normal, 0.2))
            .collect();
        let campaign = DnsCampaign::mask("mask.icloud.com".parse().unwrap(), QType::A);
        let a = campaign.run(&probes, &auth(), SimTime(0), &SimRng::new(9));
        let b = campaign.run(&probes, &auth(), SimTime(0), &SimRng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn probe_outcomes_are_order_independent() {
        let probes: Vec<Probe> = (0..60)
            .map(|i| probe(i, ResolverPolicy::Normal, 0.4))
            .collect();
        let mut reversed = probes.clone();
        reversed.reverse();
        let campaign = DnsCampaign::mask("mask.icloud.com".parse().unwrap(), QType::A);
        let auth = auth();
        let seed = SimRng::new(5);
        let forward = campaign.run(&probes, &auth, SimTime(0), &seed);
        let mut backward = campaign.run(&reversed, &auth, SimTime(0), &seed);
        backward.reverse();
        // Each probe's flake draw is keyed by its id, so execution order
        // (and by extension engine sharding) cannot change any outcome.
        assert_eq!(forward, backward);
    }

    #[test]
    fn outcome_helpers() {
        assert!(!MeasurementOutcome::Timeout.has_answers());
        assert_eq!(MeasurementOutcome::Timeout.rcode(), None);
        let r = MeasurementOutcome::Response {
            rcode: Rcode::NoError,
            answers_v4: vec![],
            answers_v6: vec!["2620:149::1".parse().unwrap()],
        };
        assert!(r.has_answers());
    }
}
