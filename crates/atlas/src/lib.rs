//! # tectonic-atlas
//!
//! A distributed-probe measurement platform modelled on RIPE Atlas, as the
//! paper uses it (§3, §4.1):
//!
//! * [`population`] — generates a probe population with the platform's
//!   known skews: ~11 k probes, thousands of ASes, ~168 countries, heavily
//!   biased towards North America and Europe, with >50 % of probes behind
//!   the four big public resolvers,
//! * [`probe`] — one probe: host AS/country/address, resolver assignment,
//!   and a possible resolver blocking policy (the 5.5 % the paper finds),
//! * [`measurement`] — DNS measurement campaigns with transient-failure
//!   injection (the paper's 10 % baseline timeouts),
//! * [`whoami`] — the `whoami.akamai.net`-style service that reveals which
//!   resolver address actually queried the authoritative server.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod measurement;
pub mod population;
pub mod probe;
pub mod whoami;

pub use measurement::{DnsCampaign, MeasurementOutcome, ProbeResult};
pub use population::{PopulationConfig, ProbeSite};
pub use probe::Probe;
pub use whoami::WhoamiZone;
