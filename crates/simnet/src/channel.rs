//! The faulted delivery layer: dice-rolling, stats, and server wrapping.
//!
//! [`FaultedChannel`] owns the scenario's RNG stream (one
//! [`SimRng`] fork per channel, label `"simnet-channel"`) and a per-link
//! [`LinkStats`] ledger. Every fault it injects increments exactly one
//! counter, which is what lets the chaos matrix assert "no silently
//! swallowed faults": the pipeline's own skip/decode/timeout counters must
//! equal the channel's injection counts.
//!
//! This file is on the lintkit strict no-index list and
//! [`FaultedChannel::deliver`] is a panic-reachability entry point: nothing
//! here may index, unwrap, or panic on any input.

use std::collections::BTreeMap;
use std::net::IpAddr;

use bytes::BytesMut;
use parking_lot::Mutex;
use tectonic_dns::server::{NameServer, QueryContext, ReplyOutcome, ServerReply};
use tectonic_net::{Asn, IpNet, SimDuration, SimRng, SimTime};

use crate::{FaultPlan, Link};

/// One RIB mutation travelling over the [`Link::BgpFeed`] event feed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RibEvent {
    /// Announce `net` with the given origin AS.
    Announce(IpNet, Asn),
    /// Withdraw `net`.
    Withdraw(IpNet),
}

/// What [`FaultedChannel::deliver`] decided for one reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Deliver the reply unmodified.
    Deliver,
    /// Silently drop it (client sees a timeout).
    Drop,
    /// Truncate the reply to this many bytes — always below the 12-byte
    /// DNS header, so decoding is guaranteed to fail.
    Truncate(usize),
    /// Overwrite the header count fields with 0xFF — guaranteed decode
    /// failure without changing the length.
    CorruptCounts,
    /// Rewrite the RCODE nibble (blocking resolver).
    RewriteRcode(u8),
}

/// Per-link fault accounting. Every injected fault lands in exactly one
/// counter here; the chaos invariants reconcile these against the
/// pipeline's own report counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Delivery decisions taken (one per reply or datagram).
    pub deliveries: u64,
    /// Replies that reached the client (possibly mutated).
    pub delivered: u64,
    /// Random drops.
    pub dropped: u64,
    /// Drops inside a rate-limit burst outage window.
    pub burst_dropped: u64,
    /// Drops due to a total blackhole.
    pub blackhole_dropped: u64,
    /// Replies truncated below the DNS header.
    pub truncated: u64,
    /// Replies with corrupted count fields.
    pub corrupted: u64,
    /// Replies with a rewritten RCODE.
    pub rcode_rewritten: u64,
    /// Duplicate deliveries injected (idempotent for request/reply links).
    pub duplicated: u64,
    /// Reorderings injected (materialised only on event feeds).
    pub reordered: u64,
    /// Deliveries that carried nonzero jitter.
    pub jitter_events: u64,
    /// Total injected jitter, milliseconds.
    pub jitter_ms_total: u64,
}

impl LinkStats {
    /// All drops regardless of cause — what a client counts as timeouts.
    /// Saturating: a pinned ledger near `u64::MAX` reports the ceiling
    /// rather than wrapping to a small, plausible-looking count.
    pub fn all_dropped(&self) -> u64 {
        self.dropped
            .saturating_add(self.burst_dropped)
            .saturating_add(self.blackhole_dropped)
    }

    /// All mutations that leave the reply undecodable (saturating, as
    /// [`all_dropped`](LinkStats::all_dropped)).
    pub fn undecodable(&self) -> u64 {
        self.truncated.saturating_add(self.corrupted)
    }

    /// Adds another ledger into this one, field by field — how the chaos
    /// harness folds the per-shard channels of an engine run into the one
    /// ledger the invariants reconcile against. Every fold saturates:
    /// counter overflow must pin at `u64::MAX` and keep the invariant
    /// checks comparable, never wrap and fake a healthy ledger.
    pub fn absorb(&mut self, other: &LinkStats) {
        self.deliveries = self.deliveries.saturating_add(other.deliveries);
        self.delivered = self.delivered.saturating_add(other.delivered);
        self.dropped = self.dropped.saturating_add(other.dropped);
        self.burst_dropped = self.burst_dropped.saturating_add(other.burst_dropped);
        self.blackhole_dropped = self
            .blackhole_dropped
            .saturating_add(other.blackhole_dropped);
        self.truncated = self.truncated.saturating_add(other.truncated);
        self.corrupted = self.corrupted.saturating_add(other.corrupted);
        self.rcode_rewritten = self.rcode_rewritten.saturating_add(other.rcode_rewritten);
        self.duplicated = self.duplicated.saturating_add(other.duplicated);
        self.reordered = self.reordered.saturating_add(other.reordered);
        self.jitter_events = self.jitter_events.saturating_add(other.jitter_events);
        self.jitter_ms_total = self.jitter_ms_total.saturating_add(other.jitter_ms_total);
    }
}

/// The seven per-link ledgers, one field per [`Link`] so access never
/// allocates or hashes.
#[derive(Debug, Clone, Default)]
struct ChannelStats {
    scan_auth: LinkStats,
    atlas_auth: LinkStats,
    control_auth: LinkStats,
    relay_dns: LinkStats,
    quic_ingress: LinkStats,
    bgp_feed: LinkStats,
    masque_data: LinkStats,
}

impl ChannelStats {
    fn stats_slot(&mut self, link: Link) -> &mut LinkStats {
        match link {
            Link::ScanAuth => &mut self.scan_auth,
            Link::AtlasAuth => &mut self.atlas_auth,
            Link::ControlAuth => &mut self.control_auth,
            Link::RelayDns => &mut self.relay_dns,
            Link::QuicIngress => &mut self.quic_ingress,
            Link::BgpFeed => &mut self.bgp_feed,
            Link::MasqueData => &mut self.masque_data,
        }
    }

    fn stats_peek(&self, link: Link) -> &LinkStats {
        match link {
            Link::ScanAuth => &self.scan_auth,
            Link::AtlasAuth => &self.atlas_auth,
            Link::ControlAuth => &self.control_auth,
            Link::RelayDns => &self.relay_dns,
            Link::QuicIngress => &self.quic_ingress,
            Link::BgpFeed => &self.bgp_feed,
            Link::MasqueData => &self.masque_data,
        }
    }
}

struct ChannelState {
    rng: SimRng,
    stats: ChannelStats,
}

/// The deterministic fault-injection channel for one scenario run.
///
/// Interior-mutable (one mutex) so it can sit behind shared references in
/// server wrappers while the pipeline drives queries through it.
pub struct FaultedChannel {
    plan: FaultPlan,
    state: Mutex<ChannelState>,
}

impl FaultedChannel {
    /// Builds a channel for `plan`, with its own RNG fork off `seed`.
    pub fn new(plan: FaultPlan, seed: u64) -> FaultedChannel {
        FaultedChannel {
            plan,
            state: Mutex::new(ChannelState {
                // lintkit: allow(rng-fork-order) -- single fork off a fresh
                // per-scenario seed in a serial constructor; no sibling forks
                // share this root, so fork order cannot vary
                rng: SimRng::new(seed).fork("simnet-channel"),
                stats: ChannelStats::default(),
            }),
        }
    }

    /// The scenario plan this channel executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decides the fate of one reply of `reply_len` bytes on `link`, sent
    /// to `src` at `now`. `is_noerror` tells the channel whether the reply
    /// is eligible for a blocking-resolver RCODE rewrite (rewriting an
    /// already-failing reply would double-count the fault).
    ///
    /// Fault precedence: blackhole, burst outage, random drop, then the
    /// non-fatal mutations (duplicate/reorder are counted but idempotent on
    /// request/reply links; truncation, corruption, and RCODE rewrites are
    /// mutually exclusive, first match wins).
    pub fn deliver(
        &self,
        link: Link,
        src: IpAddr,
        now: SimTime,
        reply_len: usize,
        is_noerror: bool,
    ) -> Delivery {
        let faults = self.plan.faults_for(link);
        let mut state = self.state.lock();
        state.stats.stats_slot(link).deliveries += 1;
        if faults.blackhole {
            state.stats.stats_slot(link).blackhole_dropped += 1;
            return Delivery::Drop;
        }
        if let Some(burst) = faults.burst {
            let period = burst.period.as_millis().max(1);
            if now.as_millis() % period < burst.outage.as_millis() {
                state.stats.stats_slot(link).burst_dropped += 1;
                return Delivery::Drop;
            }
        }
        if faults.drop > 0.0 && state.rng.chance(faults.drop) {
            state.stats.stats_slot(link).dropped += 1;
            return Delivery::Drop;
        }
        // Duplication and reordering are draw-and-count on request/reply
        // links: a duplicated or late reply to an id-matched query is
        // discarded by any real client, so the observable pipeline effect
        // is nil — but the draws keep the RNG stream honest and the
        // counters prove the faults were exercised.
        if faults.duplicate > 0.0 && state.rng.chance(faults.duplicate) {
            state.stats.stats_slot(link).duplicated += 1;
        }
        if faults.reorder > 0.0 && state.rng.chance(faults.reorder) {
            state.stats.stats_slot(link).reordered += 1;
        }
        if faults.truncate > 0.0 && state.rng.chance(faults.truncate) {
            // Strictly below the 12-byte DNS header: decode_message cannot
            // succeed, so the fault is always observable.
            let cap = reply_len.min(12) as u64;
            let new_len = state.rng.below(cap) as usize;
            state.stats.stats_slot(link).truncated += 1;
            return Delivery::Truncate(new_len);
        }
        if faults.corrupt > 0.0 && state.rng.chance(faults.corrupt) {
            state.stats.stats_slot(link).corrupted += 1;
            return Delivery::CorruptCounts;
        }
        if let Some(rewrite) = faults.rcode_rewrite {
            if is_noerror && source_fraction(src) < rewrite.fraction {
                state.stats.stats_slot(link).rcode_rewritten += 1;
                state.stats.stats_slot(link).delivered += 1;
                return Delivery::RewriteRcode(rewrite.rcode);
            }
        }
        state.stats.stats_slot(link).delivered += 1;
        Delivery::Deliver
    }

    /// Draws the extra one-way latency for one delivery on `link`. Returns
    /// [`SimDuration::ZERO`] (without consuming the RNG) when the link has
    /// no jitter configured.
    pub fn jitter_draw(&self, link: Link) -> SimDuration {
        let faults = self.plan.faults_for(link);
        if faults.jitter_ms == 0 {
            return SimDuration::ZERO;
        }
        let mut state = self.state.lock();
        let ms = state.rng.below(faults.jitter_ms.saturating_add(1));
        if ms > 0 {
            let slot = state.stats.stats_slot(link);
            slot.jitter_events += 1;
            // The one ledger field fed arbitrary increments rather than
            // unit ticks — saturate so a long jittery run pins instead of
            // wrapping.
            slot.jitter_ms_total = slot.jitter_ms_total.saturating_add(ms);
        }
        SimDuration::from_millis(ms)
    }

    /// Decides whether one QUIC datagram exchange on [`Link::QuicIngress`]
    /// vanishes into a blackhole (configured blackhole or random drop).
    pub fn ingress_blackholed(&self) -> bool {
        let faults = self.plan.faults_for(Link::QuicIngress);
        let mut state = self.state.lock();
        state.stats.stats_slot(Link::QuicIngress).deliveries += 1;
        if faults.blackhole {
            state.stats.stats_slot(Link::QuicIngress).blackhole_dropped += 1;
            return true;
        }
        if faults.drop > 0.0 && state.rng.chance(faults.drop) {
            state.stats.stats_slot(Link::QuicIngress).dropped += 1;
            return true;
        }
        state.stats.stats_slot(Link::QuicIngress).delivered += 1;
        false
    }

    /// Runs a batch of RIB events through the faults on `link`, for real:
    /// drops remove events, duplication repeats them, reordering swaps
    /// adjacent survivors. The returned sequence is what the RIB consumer
    /// should apply.
    pub fn feed_events(&self, link: Link, events: &[RibEvent]) -> Vec<RibEvent> {
        let faults = self.plan.faults_for(link);
        let mut state = self.state.lock();
        let mut out: Vec<RibEvent> = Vec::with_capacity(events.len());
        for event in events {
            state.stats.stats_slot(link).deliveries += 1;
            if faults.blackhole || (faults.drop > 0.0 && state.rng.chance(faults.drop)) {
                if faults.blackhole {
                    state.stats.stats_slot(link).blackhole_dropped += 1;
                } else {
                    state.stats.stats_slot(link).dropped += 1;
                }
                continue;
            }
            state.stats.stats_slot(link).delivered += 1;
            out.push(*event);
            if faults.duplicate > 0.0 && state.rng.chance(faults.duplicate) {
                state.stats.stats_slot(link).duplicated += 1;
                out.push(*event);
            }
        }
        if faults.reorder > 0.0 {
            let mut i = 1;
            while i < out.len() {
                if state.rng.chance(faults.reorder) {
                    out.swap(i - 1, i);
                    state.stats.stats_slot(link).reordered += 1;
                }
                i += 1;
            }
        }
        out
    }

    /// A snapshot of one link's fault ledger.
    pub fn stats_for(&self, link: Link) -> LinkStats {
        self.state.lock().stats.stats_peek(link).clone()
    }

    /// A snapshot of every link's ledger, keyed by link.
    pub fn stats(&self) -> BTreeMap<Link, LinkStats> {
        let state = self.state.lock();
        Link::ALL
            .iter()
            .map(|&link| (link, state.stats.stats_peek(link).clone()))
            .collect()
    }
}

/// Maps a source address to a stable position in `[0, 1)` (FNV-1a hash),
/// so a "fraction of sources behind blocking resolvers" selects the same
/// sources on every run and for every query from that source.
pub fn source_fraction(src: IpAddr) -> f64 {
    let hash = match src {
        IpAddr::V4(v4) => fnv1a(&v4.octets()),
        IpAddr::V6(v6) => fnv1a(&v6.octets()),
    };
    (hash >> 11) as f64 / (1u64 << 53) as f64
}

/// 64-bit FNV-1a over a byte slice, finished with a splitmix64-style
/// avalanche: raw FNV leaves the high bits nearly constant when inputs
/// differ only in their trailing byte (adjacent IPv4 addresses), and the
/// fraction mapping reads the high bits.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    hash ^ (hash >> 33)
}

/// Rewrites the RCODE nibble in a wire-format DNS header, in place. A
/// no-op on replies shorter than the header (already undecodable).
fn rewrite_rcode_nibble(bytes: &mut [u8], rcode: u8) {
    if let Some(flags) = bytes.get_mut(3) {
        *flags = (*flags & 0xF0) | (rcode & 0x0F);
    }
}

/// Stomps the four header count fields (bytes 4..12) with 0xFF, in place.
/// 65535 claimed records against a short body guarantees a decode error.
fn stomp_count_fields(bytes: &mut [u8]) {
    for byte in bytes.iter_mut().take(12).skip(4) {
        *byte = 0xFF;
    }
}

/// True when the wire reply's RCODE nibble is NoError (eligible for a
/// blocking-resolver rewrite).
fn reply_is_noerror(bytes: &[u8]) -> bool {
    bytes.get(3).is_some_and(|flags| flags & 0x0F == 0)
}

/// A [`NameServer`] wrapper that routes every reply through the channel's
/// fault plan for one link: jitter perturbs the arrival timestamp the
/// inner server sees, and the delivery decision drops or mutates the reply
/// bytes. Organic drops by the inner server (its own rate limiter) bypass
/// the channel entirely, so the fault ledger counts injected faults only.
///
/// The inner server must be `Sync`: the chaos harness shares one wrapper
/// per engine shard across the engine's scoped worker threads.
pub struct FaultedServer<'a> {
    channel: &'a FaultedChannel,
    link: Link,
    inner: &'a (dyn NameServer + Sync),
}

impl<'a> FaultedServer<'a> {
    /// Wraps `inner` so its replies traverse `link` of `channel`.
    pub fn new(
        channel: &'a FaultedChannel,
        link: Link,
        inner: &'a (dyn NameServer + Sync),
    ) -> Self {
        FaultedServer {
            channel,
            link,
            inner,
        }
    }
}

impl NameServer for FaultedServer<'_> {
    fn handle_query(&self, wire: &[u8], ctx: &QueryContext) -> ServerReply {
        let jitter = self.channel.jitter_draw(self.link);
        let ctx = QueryContext {
            src: ctx.src,
            now: ctx.now + jitter,
        };
        let mut bytes = match self.inner.handle_query(wire, &ctx) {
            ServerReply::Response(bytes) => bytes,
            ServerReply::Dropped => return ServerReply::Dropped,
        };
        let noerror = reply_is_noerror(&bytes);
        match self
            .channel
            .deliver(self.link, ctx.src, ctx.now, bytes.len(), noerror)
        {
            Delivery::Deliver => ServerReply::Response(bytes),
            Delivery::Drop => ServerReply::Dropped,
            Delivery::Truncate(len) => {
                bytes.truncate(len);
                ServerReply::Response(bytes)
            }
            Delivery::CorruptCounts => {
                stomp_count_fields(&mut bytes);
                ServerReply::Response(bytes)
            }
            Delivery::RewriteRcode(rcode) => {
                rewrite_rcode_nibble(&mut bytes, rcode);
                ServerReply::Response(bytes)
            }
        }
    }

    fn handle_query_into(
        &self,
        wire: &[u8],
        ctx: &QueryContext,
        out: &mut BytesMut,
    ) -> ReplyOutcome {
        let jitter = self.channel.jitter_draw(self.link);
        let ctx = QueryContext {
            src: ctx.src,
            now: ctx.now + jitter,
        };
        match self.inner.handle_query_into(wire, &ctx, out) {
            ReplyOutcome::Written => {}
            ReplyOutcome::Dropped => return ReplyOutcome::Dropped,
        }
        let noerror = reply_is_noerror(out);
        match self
            .channel
            .deliver(self.link, ctx.src, ctx.now, out.len(), noerror)
        {
            Delivery::Deliver => ReplyOutcome::Written,
            Delivery::Drop => ReplyOutcome::Dropped,
            Delivery::Truncate(len) => {
                out.truncate(len);
                ReplyOutcome::Written
            }
            Delivery::CorruptCounts => {
                stomp_count_fields(out);
                ReplyOutcome::Written
            }
            Delivery::RewriteRcode(rcode) => {
                rewrite_rcode_nibble(out, rcode);
                ReplyOutcome::Written
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scenarios, Burst, LinkFaults, RcodeRewrite};
    use std::net::Ipv4Addr;

    fn src(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(192, 0, 2, last))
    }

    fn deliver_n(channel: &FaultedChannel, link: Link, n: usize) -> Vec<Delivery> {
        (0..n)
            .map(|i| {
                channel.deliver(
                    link,
                    src((i % 250) as u8),
                    SimTime(1_000 + i as u64 * 137),
                    64,
                    true,
                )
            })
            .collect()
    }

    #[test]
    fn ledger_folds_saturate_instead_of_wrapping() {
        // A ledger pinned at the ceiling plus a busy shard ledger must
        // stay pinned — wrapping would fake a small, healthy count and
        // slip past every chaos invariant.
        let mut pinned = LinkStats {
            deliveries: u64::MAX,
            dropped: u64::MAX - 1,
            jitter_ms_total: u64::MAX,
            ..LinkStats::default()
        };
        let shard = LinkStats {
            deliveries: 10,
            dropped: 7,
            burst_dropped: 3,
            blackhole_dropped: 2,
            truncated: 1,
            corrupted: 1,
            jitter_ms_total: 1_000,
            ..LinkStats::default()
        };
        pinned.absorb(&shard);
        assert_eq!(pinned.deliveries, u64::MAX, "fold saturates");
        assert_eq!(pinned.dropped, u64::MAX, "near-ceiling fold pins");
        assert_eq!(pinned.jitter_ms_total, u64::MAX);
        // The derived views saturate too: three drop causes summing past
        // the ceiling report the ceiling.
        assert_eq!(pinned.all_dropped(), u64::MAX);
        assert_eq!(shard.all_dropped(), 12);
        assert_eq!(shard.undecodable(), 2);
        let mut top = LinkStats {
            truncated: u64::MAX,
            ..LinkStats::default()
        };
        top.absorb(&shard);
        assert_eq!(top.undecodable(), u64::MAX);
    }

    #[test]
    fn inert_plan_delivers_everything_untouched() {
        let channel = FaultedChannel::new(FaultPlan::named("inert"), 7);
        let outcomes = deliver_n(&channel, Link::ScanAuth, 200);
        assert!(outcomes.iter().all(|d| *d == Delivery::Deliver));
        let stats = channel.stats_for(Link::ScanAuth);
        assert_eq!(stats.deliveries, 200);
        assert_eq!(stats.delivered, 200);
        assert_eq!(stats.all_dropped() + stats.undecodable(), 0);
    }

    #[test]
    fn same_seed_same_plan_is_bit_identical() {
        let a = FaultedChannel::new(scenarios::by_name("kitchen-sink").expect("plan"), 42);
        let b = FaultedChannel::new(scenarios::by_name("kitchen-sink").expect("plan"), 42);
        assert_eq!(
            deliver_n(&a, Link::ScanAuth, 500),
            deliver_n(&b, Link::ScanAuth, 500)
        );
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn every_fault_lands_in_exactly_one_counter() {
        let plan = FaultPlan::named("mix").with_link(
            Link::ScanAuth,
            LinkFaults {
                drop: 0.2,
                truncate: 0.2,
                corrupt: 0.2,
                ..LinkFaults::default()
            },
        );
        let channel = FaultedChannel::new(plan, 3);
        let outcomes = deliver_n(&channel, Link::ScanAuth, 1000);
        let stats = channel.stats_for(Link::ScanAuth);
        let drops = outcomes.iter().filter(|d| **d == Delivery::Drop).count() as u64;
        let truncs = outcomes
            .iter()
            .filter(|d| matches!(d, Delivery::Truncate(_)))
            .count() as u64;
        let corrupts = outcomes
            .iter()
            .filter(|d| **d == Delivery::CorruptCounts)
            .count() as u64;
        assert_eq!(stats.dropped, drops);
        assert_eq!(stats.truncated, truncs);
        assert_eq!(stats.corrupted, corrupts);
        assert!(drops > 0 && truncs > 0 && corrupts > 0);
        assert_eq!(stats.deliveries, 1000);
        assert_eq!(
            stats.delivered + stats.all_dropped() + stats.undecodable(),
            1000
        );
    }

    #[test]
    fn truncation_always_lands_below_the_header() {
        let plan = FaultPlan::named("trunc").with_link(
            Link::ScanAuth,
            LinkFaults {
                truncate: 1.0,
                ..LinkFaults::default()
            },
        );
        let channel = FaultedChannel::new(plan, 5);
        for i in 0..100 {
            match channel.deliver(Link::ScanAuth, src(1), SimTime(i), 300, true) {
                Delivery::Truncate(len) => assert!(len < 12),
                other => panic!("expected truncation, got {other:?}"),
            }
        }
    }

    #[test]
    fn burst_outage_tracks_the_clock_window() {
        let plan = FaultPlan::named("burst").with_link(
            Link::ScanAuth,
            LinkFaults {
                burst: Some(Burst {
                    period: SimDuration::from_millis(1000),
                    outage: SimDuration::from_millis(100),
                }),
                ..LinkFaults::default()
            },
        );
        let channel = FaultedChannel::new(plan, 9);
        let in_window = channel.deliver(Link::ScanAuth, src(1), SimTime(2_050), 64, true);
        let outside = channel.deliver(Link::ScanAuth, src(1), SimTime(2_500), 64, true);
        assert_eq!(in_window, Delivery::Drop);
        assert_eq!(outside, Delivery::Deliver);
        assert_eq!(channel.stats_for(Link::ScanAuth).burst_dropped, 1);
    }

    #[test]
    fn rcode_rewrite_is_stable_per_source_and_skips_failures() {
        let plan = FaultPlan::named("block").with_link(
            Link::AtlasAuth,
            LinkFaults {
                rcode_rewrite: Some(RcodeRewrite {
                    fraction: 0.3,
                    rcode: 3,
                }),
                ..LinkFaults::default()
            },
        );
        let channel = FaultedChannel::new(plan, 11);
        let mut rewritten = 0usize;
        for i in 0..=255u8 {
            let first = channel.deliver(Link::AtlasAuth, src(i), SimTime(1), 64, true);
            let second = channel.deliver(Link::AtlasAuth, src(i), SimTime(2), 64, true);
            assert_eq!(first, second, "per-source decision must be stable");
            // A reply that already fails is never rewritten (no
            // double-counted faults).
            let failing = channel.deliver(Link::AtlasAuth, src(i), SimTime(3), 64, false);
            assert_eq!(failing, Delivery::Deliver);
            if first == Delivery::RewriteRcode(3) {
                rewritten += 1;
            }
        }
        assert!(
            (40..=115).contains(&rewritten),
            "expected roughly 30% of 256 sources, got {rewritten}"
        );
    }

    #[test]
    fn feed_events_materialise_drop_duplicate_reorder() {
        let nets: Vec<IpNet> = (0..40u8)
            .map(|i| {
                IpNet::from(
                    tectonic_net::Ipv4Net::new(Ipv4Addr::new(10, i, 0, 0), 16).expect("valid net"),
                )
            })
            .collect();
        let events: Vec<RibEvent> = nets.iter().map(|n| RibEvent::Withdraw(*n)).collect();
        let plan = FaultPlan::named("feed").with_link(
            Link::BgpFeed,
            LinkFaults {
                drop: 0.2,
                duplicate: 0.2,
                reorder: 0.3,
                ..LinkFaults::default()
            },
        );
        let channel = FaultedChannel::new(plan, 13);
        let out = channel.feed_events(Link::BgpFeed, &events);
        let stats = channel.stats_for(Link::BgpFeed);
        assert_eq!(stats.deliveries, events.len() as u64);
        assert_eq!(
            out.len() as u64,
            stats.delivered + stats.duplicated,
            "output length must reconcile with the ledger"
        );
        assert!(stats.dropped > 0 && stats.duplicated > 0 && stats.reordered > 0);
    }

    #[test]
    fn faulted_server_mutations_are_observable_on_the_wire() {
        struct Fixed;
        impl NameServer for Fixed {
            fn handle_query(&self, _wire: &[u8], _ctx: &QueryContext) -> ServerReply {
                // Minimal NoError header: id 0xBEEF, QR set, zero counts.
                let mut reply = vec![0xBE, 0xEF, 0x80, 0x00];
                reply.extend_from_slice(&[0u8; 8]);
                reply.extend_from_slice(&[0xAA; 20]);
                ServerReply::Response(reply)
            }
        }
        let plan = FaultPlan::named("rewrite").with_link(
            Link::AtlasAuth,
            LinkFaults {
                rcode_rewrite: Some(RcodeRewrite {
                    fraction: 1.0,
                    rcode: 3,
                }),
                ..LinkFaults::default()
            },
        );
        let channel = FaultedChannel::new(plan, 17);
        let inner = Fixed;
        let server = FaultedServer::new(&channel, Link::AtlasAuth, &inner);
        let ctx = QueryContext {
            src: src(1),
            now: SimTime(1),
        };
        match server.handle_query(&[0u8; 12], &ctx) {
            ServerReply::Response(bytes) => {
                assert_eq!(bytes.get(3).copied().map(|b| b & 0x0F), Some(3));
                assert_eq!(bytes.len(), 32, "rewrite must not change length");
            }
            ServerReply::Dropped => panic!("rewrite plan must not drop"),
        }
        let mut buf = BytesMut::new();
        let outcome = server.handle_query_into(&[0u8; 12], &ctx, &mut buf);
        assert_eq!(outcome, ReplyOutcome::Written);
        assert_eq!(buf.get(3).copied().map(|b| b & 0x0F), Some(3));
        assert_eq!(channel.stats_for(Link::AtlasAuth).rcode_rewritten, 2);
    }
}
