//! `tectonic-simnet` — deterministic fault injection for the paper pipeline.
//!
//! The paper's measurements survived a hostile network: rate-limiting
//! resolvers, Atlas probes behind blocking resolvers that rewrite RCODEs
//! (§3), truncated and garbage DNS replies, ingress nodes that ignore
//! standard QUIC Initials (§6), and routing churn. The reproduction's
//! pipelines, in contrast, were only ever exercised on the happy path. This
//! crate inserts a *deterministic* fault layer between every simulated
//! client and server so the chaos matrix (`tests/chaos_matrix.rs`,
//! `xtask chaos`) can prove each artifact is either invariant under faults
//! or degrades accountably.
//!
//! Determinism is load-bearing: every random draw comes from a
//! [`SimRng`](tectonic_net::SimRng) fork and every timestamp from the
//! caller's [`SimTime`](tectonic_net::SimTime) — no wall clock, no OS
//! entropy — so the `determinism-taint` lint stays clean and same-seed runs
//! are byte-identical.
//!
//! The pieces:
//!
//! * [`FaultPlan`] — a named scenario description: per-[`Link`] packet
//!   loss, duplication, reordering, latency jitter, reply truncation and
//!   corruption, rate-limit bursts, blocking-resolver RCODE rewrites,
//!   ingress blackholes, and a BGP announce/withdraw flap spec. Built via
//!   [`FaultPlan::named`] + [`FaultPlan::with_link`], or looked up in the
//!   [`scenarios`] registry.
//! * [`FaultedChannel`](channel::FaultedChannel) — the delivery layer that
//!   rolls the dice, keeps per-link [`LinkStats`](channel::LinkStats), and
//!   wraps any [`NameServer`](tectonic_dns::server::NameServer) via
//!   [`FaultedServer`](channel::FaultedServer).

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod channel;

use std::collections::BTreeMap;

use tectonic_net::SimDuration;

pub use channel::{Delivery, FaultedChannel, FaultedServer, LinkStats, RibEvent};

/// A faultable edge of the simulated pipeline. Every wrapper and stats
/// bucket is keyed by one of these, so a scenario can degrade the ECS scan
/// without touching the Atlas campaign and vice versa.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Link {
    /// Scanner → authoritative server (the ECS discovery scan).
    ScanAuth,
    /// Atlas probes → mask authoritative server (A/AAAA campaigns).
    AtlasAuth,
    /// Atlas probes → the experiment's control-domain server.
    ControlAuth,
    /// Relay client → open resolver (ingress discovery per request).
    RelayDns,
    /// QUIC prober → ingress node datagram path.
    QuicIngress,
    /// BGP session → RIB announce/withdraw event feed.
    BgpFeed,
    /// Relay client → egress tunnelled CONNECT-UDP datagram path (§4).
    MasqueData,
}

impl Link {
    /// Every link, in stats/report order.
    pub const ALL: [Link; 7] = [
        Link::ScanAuth,
        Link::AtlasAuth,
        Link::ControlAuth,
        Link::RelayDns,
        Link::QuicIngress,
        Link::BgpFeed,
        Link::MasqueData,
    ];

    /// Stable lowercase label used in reports and RNG fork seeds.
    pub fn label(self) -> &'static str {
        match self {
            Link::ScanAuth => "scan-auth",
            Link::AtlasAuth => "atlas-auth",
            Link::ControlAuth => "control-auth",
            Link::RelayDns => "relay-dns",
            Link::QuicIngress => "quic-ingress",
            Link::BgpFeed => "bgp-feed",
            Link::MasqueData => "masque-data",
        }
    }
}

/// Rewrite the RCODE of a fraction of otherwise-successful replies —
/// modelling the paper's §3 population of probes behind blocking resolvers.
///
/// The affected fraction is selected by *source address* (a stable hash of
/// the querying probe), not per reply, because a blocking resolver blocks
/// every query from the clients behind it, not a coin-flip per query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RcodeRewrite {
    /// Fraction of source addresses behind a blocking resolver, in `0..=1`.
    pub fraction: f64,
    /// The RCODE those sources see (low nibble; 3 = NXDOMAIN, 5 = REFUSED).
    pub rcode: u8,
}

/// Periodic total-outage windows — a rate limiter tripping in bursts. For
/// `outage` milliseconds out of every `period`, the link drops everything.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burst {
    /// Cycle length.
    pub period: SimDuration,
    /// Outage window at the start of each cycle.
    pub outage: SimDuration,
}

/// Withdraw-and-restore churn over the RIB event feed: every `one_in`-th
/// egress prefix is withdrawn, then re-announced, through the faulted
/// [`Link::BgpFeed`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlapSpec {
    /// Withdraw every `one_in`-th prefix (2 = half the table).
    pub one_in: usize,
}

/// The fault mix on one [`Link`]. `Default` is fully inert — every field
/// zero/`None`/`false` — so a plan only describes its deviations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkFaults {
    /// Probability a reply is silently dropped.
    pub drop: f64,
    /// Probability a reply would be duplicated (counted; idempotent
    /// request/reply delivery makes the duplicate itself a no-op).
    pub duplicate: f64,
    /// Probability a reply would arrive out of order (counted; materialised
    /// for real on event feeds via
    /// [`feed_events`](channel::FaultedChannel::feed_events)).
    pub reorder: f64,
    /// Max extra one-way latency, drawn uniformly from `0..=jitter_ms`.
    pub jitter_ms: u64,
    /// Probability a reply is truncated below the DNS header (guaranteed
    /// undecodable).
    pub truncate: f64,
    /// Probability a reply's count fields are corrupted (guaranteed
    /// undecodable).
    pub corrupt: f64,
    /// Blocking-resolver RCODE rewriting for a source-address fraction.
    pub rcode_rewrite: Option<RcodeRewrite>,
    /// Periodic rate-limit outage windows.
    pub burst: Option<Burst>,
    /// Total blackhole: nothing is ever delivered.
    pub blackhole: bool,
}

impl LinkFaults {
    /// True when every fault on this link is disabled.
    pub fn is_inert(&self) -> bool {
        *self == LinkFaults::default()
    }
}

/// A complete, named chaos scenario: the per-link fault mixes plus an
/// optional BGP flap. Plans are plain data — the dice live in
/// [`FaultedChannel`](channel::FaultedChannel).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    name: String,
    faults: BTreeMap<Link, LinkFaults>,
    flap: Option<FlapSpec>,
}

/// Shared inert faults returned for links a plan never mentions.
static INERT: LinkFaults = LinkFaults {
    drop: 0.0,
    duplicate: 0.0,
    reorder: 0.0,
    jitter_ms: 0,
    truncate: 0.0,
    corrupt: 0.0,
    rcode_rewrite: None,
    burst: None,
    blackhole: false,
};

impl FaultPlan {
    /// Starts an empty (fault-free) plan under `name`.
    pub fn named(name: &str) -> FaultPlan {
        FaultPlan {
            name: name.to_string(),
            faults: BTreeMap::new(),
            flap: None,
        }
    }

    /// Sets the fault mix for one link, replacing any previous mix.
    pub fn with_link(mut self, link: Link, faults: LinkFaults) -> FaultPlan {
        self.faults.insert(link, faults);
        self
    }

    /// Adds a BGP withdraw/restore flap to the plan.
    pub fn with_flap(mut self, flap: FlapSpec) -> FaultPlan {
        self.flap = Some(flap);
        self
    }

    /// The scenario name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The fault mix on `link` (inert if the plan never mentioned it).
    pub fn faults_for(&self, link: Link) -> &LinkFaults {
        self.faults.get(&link).unwrap_or(&INERT)
    }

    /// The flap spec, if any.
    pub fn flap(&self) -> Option<FlapSpec> {
        self.flap
    }

    /// True when the plan injects nothing at all.
    pub fn is_inert(&self) -> bool {
        self.flap.is_none() && self.faults.values().all(LinkFaults::is_inert)
    }
}

/// The named-scenario registry the chaos matrix iterates over.
///
/// Adding a scenario: give it a plan in [`by_name`](scenarios::by_name),
/// list it in [`scenarios::ALL`], and teach
/// `tectonic::chaos::check_invariants` what must hold under it (see
/// DESIGN.md §10). `broken-fixture` is deliberately *not* in `ALL`: it
/// exists so the CLI smoke test can watch an invariant violation fail the
/// run.
pub mod scenarios {
    use super::{Burst, FaultPlan, FlapSpec, Link, LinkFaults, RcodeRewrite};
    use tectonic_net::SimDuration;

    /// Every scenario the matrix runs, in execution order.
    pub const ALL: [&str; 12] = [
        "baseline",
        "lossy-resolver",
        "flaky-network",
        "truncator",
        "garbage-replies",
        "rate-limit-storm",
        "blocking-resolvers",
        "control-outage",
        "ingress-blackhole",
        "bgp-flap",
        "relay-session-storm",
        "kitchen-sink",
    ];

    /// Looks up a named scenario plan. Includes the deliberately broken
    /// `broken-fixture` plan (not part of [`ALL`]) used to test that the
    /// invariant checker actually fails runs.
    pub fn by_name(name: &str) -> Option<FaultPlan> {
        let plan = match name {
            // No faults: must reproduce the golden artifacts byte-for-byte.
            "baseline" => FaultPlan::named(name),
            // Heavy loss on the scan path; the retry budget must absorb it
            // with artifacts unchanged.
            "lossy-resolver" => FaultPlan::named(name).with_link(
                Link::ScanAuth,
                LinkFaults {
                    drop: 0.2,
                    ..LinkFaults::default()
                },
            ),
            // Duplication/reordering/jitter everywhere it is harmless:
            // idempotent request/reply delivery must shrug it off.
            "flaky-network" => {
                let noisy = LinkFaults {
                    duplicate: 0.3,
                    reorder: 0.2,
                    jitter_ms: 50,
                    ..LinkFaults::default()
                };
                FaultPlan::named(name)
                    .with_link(Link::ScanAuth, noisy.clone())
                    .with_link(Link::AtlasAuth, noisy)
            }
            // Replies cut below the DNS header: every one must surface as a
            // decode error, never a crash.
            "truncator" => FaultPlan::named(name).with_link(
                Link::ScanAuth,
                LinkFaults {
                    truncate: 0.15,
                    ..LinkFaults::default()
                },
            ),
            // Corrupted count fields: same contract as truncation.
            "garbage-replies" => FaultPlan::named(name).with_link(
                Link::ScanAuth,
                LinkFaults {
                    corrupt: 0.15,
                    ..LinkFaults::default()
                },
            ),
            // A rate limiter tripping in periodic bursts; the scan's paced
            // retries must ride out each 200 ms outage window.
            "rate-limit-storm" => FaultPlan::named(name).with_link(
                Link::ScanAuth,
                LinkFaults {
                    burst: Some(Burst {
                        period: SimDuration::from_millis(5_000),
                        outage: SimDuration::from_millis(200),
                    }),
                    ..LinkFaults::default()
                },
            ),
            // The paper's §3 population: ~8 % of probes behind resolvers
            // that rewrite NoError to NXDOMAIN.
            "blocking-resolvers" => FaultPlan::named(name).with_link(
                Link::AtlasAuth,
                LinkFaults {
                    rcode_rewrite: Some(RcodeRewrite {
                        fraction: 0.08,
                        rcode: 3,
                    }),
                    ..LinkFaults::default()
                },
            ),
            // The control domain goes dark: Refused verdicts lose their
            // corroboration and must degrade to Broken, never Blocked.
            "control-outage" => FaultPlan::named(name).with_link(
                Link::ControlAuth,
                LinkFaults {
                    blackhole: true,
                    ..LinkFaults::default()
                },
            ),
            // Relay ingress discovery and QUIC datagrams silently dropped.
            "ingress-blackhole" => FaultPlan::named(name)
                .with_link(
                    Link::RelayDns,
                    LinkFaults {
                        drop: 0.3,
                        ..LinkFaults::default()
                    },
                )
                .with_link(
                    Link::QuicIngress,
                    LinkFaults {
                        drop: 0.3,
                        ..LinkFaults::default()
                    },
                ),
            // Withdraw half the egress table, then restore it: Table 3 must
            // shrink monotonically and recover exactly.
            "bgp-flap" => FaultPlan::named(name).with_flap(FlapSpec { one_in: 2 }),
            // A burst of concurrent CONNECT-UDP sessions through a lossy,
            // rate-limited tunnel: every injected datagram must reconcile
            // as delivered, channel-dropped, or egress-dropped, and token
            // grants must respect the per-user daily budget.
            "relay-session-storm" => FaultPlan::named(name).with_link(
                Link::MasqueData,
                LinkFaults {
                    drop: 0.15,
                    truncate: 0.05,
                    corrupt: 0.05,
                    burst: Some(Burst {
                        period: SimDuration::from_millis(2_000),
                        outage: SimDuration::from_millis(200),
                    }),
                    ..LinkFaults::default()
                },
            ),
            // Everything at once, at survivable rates.
            "kitchen-sink" => FaultPlan::named(name)
                .with_link(
                    Link::ScanAuth,
                    LinkFaults {
                        drop: 0.1,
                        duplicate: 0.1,
                        jitter_ms: 20,
                        ..LinkFaults::default()
                    },
                )
                .with_link(
                    Link::AtlasAuth,
                    LinkFaults {
                        rcode_rewrite: Some(RcodeRewrite {
                            fraction: 0.05,
                            rcode: 3,
                        }),
                        ..LinkFaults::default()
                    },
                )
                .with_link(
                    Link::RelayDns,
                    LinkFaults {
                        drop: 0.1,
                        ..LinkFaults::default()
                    },
                )
                .with_link(
                    Link::QuicIngress,
                    LinkFaults {
                        drop: 0.2,
                        ..LinkFaults::default()
                    },
                )
                .with_link(
                    Link::MasqueData,
                    LinkFaults {
                        drop: 0.1,
                        ..LinkFaults::default()
                    },
                )
                // Duplication/reordering only — no loss — so the restore
                // leg replays every withdrawal exactly.
                .with_link(
                    Link::BgpFeed,
                    LinkFaults {
                        duplicate: 0.2,
                        reorder: 0.2,
                        ..LinkFaults::default()
                    },
                )
                .with_flap(FlapSpec { one_in: 3 }),
            // Deliberately broken: injects scan-path loss while its
            // invariant demands zero drops. Exists only to prove the
            // checker fails runs (cli_smoke).
            "broken-fixture" => FaultPlan::named(name).with_link(
                Link::ScanAuth,
                LinkFaults {
                    drop: 0.5,
                    ..LinkFaults::default()
                },
            ),
            _ => return None,
        };
        Some(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_every_listed_scenario() {
        for name in scenarios::ALL {
            let plan = scenarios::by_name(name).expect("registered scenario must resolve");
            assert_eq!(plan.name(), name);
        }
        assert!(scenarios::ALL.len() >= 8, "matrix needs >=8 scenarios");
    }

    #[test]
    fn baseline_is_inert_and_unknown_is_none() {
        assert!(scenarios::by_name("baseline").expect("baseline").is_inert());
        assert!(scenarios::by_name("no-such-scenario").is_none());
        assert!(!scenarios::by_name("broken-fixture")
            .expect("broken fixture")
            .is_inert());
    }

    #[test]
    fn unmentioned_links_fall_back_to_inert() {
        let plan = scenarios::by_name("lossy-resolver").expect("lossy");
        assert!(plan.faults_for(Link::ScanAuth).drop > 0.0);
        assert!(plan.faults_for(Link::AtlasAuth).is_inert());
        assert!(!plan.is_inert());
    }
}
