//! Shared setup for the tectonic benchmark suite.
//!
//! Every bench target regenerates one of the paper's tables or figures.
//! Deployments are cached per scale so targets that share a scale don't pay
//! the build cost repeatedly within one process.
//!
//! The benches print their regenerated artefact once, before timing the
//! computational kernel, so `cargo bench` output doubles as the
//! reproduction record used in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::sync::OnceLock;

use tectonic_relay::{Deployment, DeploymentConfig};

/// The scale divisor used by the benchmark deployments: client world and
/// egress list are 1/16 of paper scale, ingress fleets and prefix censuses
/// stay at paper scale (they are small).
pub const BENCH_SCALE: u64 = 16;

/// The deterministic seed every bench uses.
pub const BENCH_SEED: u64 = 2022;

static DEPLOYMENT: OnceLock<Deployment> = OnceLock::new();
static PAPER_DEPLOYMENT: OnceLock<Deployment> = OnceLock::new();

/// The shared 1/16-scale deployment.
pub fn bench_deployment() -> &'static Deployment {
    DEPLOYMENT.get_or_init(|| Deployment::build(BENCH_SEED, DeploymentConfig::scaled(BENCH_SCALE)))
}

/// A deployment with paper-scale ingress fleets, egress list and prefix
/// structure, but a reduced client world (the censuses and fleet analyses
/// don't touch it, so the memory cost would be wasted).
pub fn paper_deployment() -> &'static Deployment {
    PAPER_DEPLOYMENT.get_or_init(|| {
        let mut config = DeploymentConfig::paper();
        config.client_world = config.client_world.scaled_down(128);
        Deployment::build(BENCH_SEED, config)
    })
}

/// Prints a banner separating artefact output from criterion noise.
pub fn banner(title: &str) {
    let rule = "================================================================";
    // lintkit: allow(no-print) -- bench harness banner; stdout IS the reproduction record here
    println!("\n{rule}\n== {title}\n== (simulated deployment, scale 1/{BENCH_SCALE}, seed {BENCH_SEED})\n{rule}");
}
