//! Table 1 — ingress relay counts per AS, January through April, for the
//! default (QUIC) and fallback (TCP) domains.
//!
//! Regenerates the table by running the ECS enumeration scan at each epoch
//! against the simulated deployment, then benchmarks one full scan.

use criterion::{criterion_group, criterion_main, Criterion};
use tectonic_bench::{banner, bench_deployment};
use tectonic_core::ecs_scan::EcsScanner;
use tectonic_core::report::render_table1;
use tectonic_net::{Epoch, SimClock};
use tectonic_relay::Domain;

fn regenerate_and_print() {
    let d = bench_deployment();
    let auth = d.auth_server_unlimited();
    let scanner = EcsScanner::default();
    let rows: Vec<_> = Epoch::SCANS
        .iter()
        .map(|epoch| {
            let mut clock = SimClock::new(epoch.start());
            let default = scanner.scan(Domain::MaskQuic.name(), &auth, &d.rib, &mut clock);
            let fallback = if *epoch == Epoch::Jan2022 {
                None // the paper's January scan lacked the fallback domain
            } else {
                let mut clock = SimClock::new(epoch.start());
                Some(scanner.scan(Domain::MaskH2.name(), &auth, &d.rib, &mut clock))
            };
            (*epoch, default, fallback)
        })
        .collect();
    banner("Table 1: ingress relays per AS and epoch");
    print!("{}", render_table1(&rows));
    let apr = &rows[3].1;
    println!(
        "April QUIC ingress total: {} (paper: 1586); scan duration {} h (paper: ~40 h at full scale)",
        apr.total(),
        apr.duration.as_secs() / 3600,
    );
}

fn bench(c: &mut Criterion) {
    regenerate_and_print();
    let d = bench_deployment();
    let auth = d.auth_server_unlimited();
    let scanner = EcsScanner::default();
    // Timing kernel: a fixed 32k-subnet slice so the measured work is
    // independent of the deployment scale (the full scan ran above).
    let slice: Vec<_> = scanner
        .candidate_subnets(&d.rib)
        .into_iter()
        .take(32_768)
        .collect();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("ecs_scan_32k_subnets", |b| {
        b.iter(|| {
            let mut clock = SimClock::new(Epoch::Apr2022.start());
            scanner.scan_subnets(Domain::MaskQuic.name(), &slice, &auth, &d.rib, &mut clock)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
