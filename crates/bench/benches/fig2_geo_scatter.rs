//! Figures 2 and 5 — geolocation of egress subnets per providing AS,
//! rendered as per-operator point clouds (lat/lon series), split by IP
//! version for Figure 5.

use criterion::{criterion_group, criterion_main, Criterion};
use tectonic_bench::{banner, paper_deployment};
use tectonic_core::egress_analysis::EgressAnalysis;
use tectonic_net::Asn;

fn bench(c: &mut Criterion) {
    let d = paper_deployment();
    let analysis = EgressAnalysis::new(&d.egress_list, &d.rib);
    let points = analysis.geo_points(&d.universe);
    banner("Figures 2/5: egress subnet geolocation per operator");
    for asn in [Asn::AKAMAI_PR, Asn::AKAMAI_EG, Asn::CLOUDFLARE, Asn::FASTLY] {
        for v4 in [true, false] {
            let subset: Vec<_> = points
                .iter()
                .filter(|p| p.asn == asn && p.v4 == v4)
                .collect();
            if subset.is_empty() {
                continue;
            }
            let (mut na, mut eu, mut rest) = (0usize, 0usize, 0usize);
            for p in &subset {
                if p.lon < -50.0 && p.lat > 14.0 {
                    na += 1;
                } else if p.lon > -26.0 && p.lon < 46.0 && p.lat > 34.0 {
                    eu += 1;
                } else {
                    rest += 1;
                }
            }
            println!(
                "{:<11} {}: {:>6} located subnets — {:>5.1}% NA, {:>5.1}% EU, {:>5.1}% elsewhere",
                asn.label(),
                if v4 { "IPv4" } else { "IPv6" },
                subset.len(),
                100.0 * na as f64 / subset.len() as f64,
                100.0 * eu as f64 / subset.len() as f64,
                100.0 * rest as f64 / subset.len() as f64,
            );
        }
    }
    println!("(paper: strong focus on North America and Europe, US ≈ 58% of subnets)");

    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("geo_points_full_list", |b| {
        b.iter(|| analysis.geo_points(&d.universe))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
