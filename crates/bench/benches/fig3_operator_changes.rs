//! Figure 3 — egress operator changes over a scan day, open vs fixed DNS.
//!
//! The device sits at a DE vantage point where (as at the authors'
//! location) only Cloudflare and Akamai PR appear as egress operators.

use criterion::{criterion_group, criterion_main, Criterion};
use tectonic_bench::{banner, bench_deployment};
use tectonic_core::relay_scan::{RelayScanConfig, RelayScanSeries};
use tectonic_core::report::render_fig3;
use tectonic_geo::country::CountryCode;
use tectonic_net::{Asn, Epoch};
use tectonic_relay::{DnsMode, Domain};

fn bench(c: &mut Criterion) {
    let d = bench_deployment();
    let auth = d.auth_server_unlimited();
    let vantage_ops = vec![Asn::CLOUDFLARE, Asn::AKAMAI_PR];
    let open_device = d.vantage_device(CountryCode::DE, DnsMode::Open, vantage_ops.clone());
    let forced = d
        .fleets
        .fleet_v4(Epoch::Apr2022, Domain::MaskQuic, Asn::AKAMAI_PR)[0];
    let fixed_device = d.vantage_device(CountryCode::DE, DnsMode::Fixed(forced), vantage_ops);
    let config = RelayScanConfig::operator_series();
    let start = Epoch::May2022.start();
    let open = RelayScanSeries::run(&open_device, &auth, &config, start);
    let fixed = RelayScanSeries::run(&fixed_device, &auth, &config, start);
    banner("Figure 3: egress operator changes over the scan day");
    print!("{}", render_fig3(&open, &fixed));
    println!(
        "(paper: only Cloudflare and AkamaiPR visible; a handful of changes, no regular pattern)"
    );

    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("relay_scan_day", |b| {
        b.iter(|| RelayScanSeries::run(&open_device, &auth, &config, start))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
