//! R4 — egress address rotation (§4.3): 48 h of 30-second request rounds;
//! the paper saw six addresses from four subnets with a >66 % change rate
//! and diverging parallel requests.

use criterion::{criterion_group, criterion_main, Criterion};
use tectonic_bench::{banner, bench_deployment};
use tectonic_core::relay_scan::{RelayScanConfig, RelayScanSeries};
use tectonic_core::report::render_rotation;
use tectonic_core::rotation::RotationReport;
use tectonic_geo::country::CountryCode;
use tectonic_net::{Asn, Epoch};
use tectonic_relay::DnsMode;

fn bench(c: &mut Criterion) {
    let d = bench_deployment();
    let auth = d.auth_server_unlimited();
    let device = d.vantage_device(
        CountryCode::DE,
        DnsMode::Open,
        vec![Asn::CLOUDFLARE, Asn::AKAMAI_PR],
    );
    let config = RelayScanConfig::rotation_series();
    let series = RelayScanSeries::run(&device, &auth, &config, Epoch::May2022.start());
    let report = RotationReport::from_series(&series);
    banner("R4: egress address rotation (48 h, 30 s rounds)");
    print!("{}", render_rotation(&report));
    println!("(paper: 6 addresses / 4 subnets, >66% change rate, parallel requests diverge)");

    let mut group = c.benchmark_group("r4");
    group.sample_size(10);
    group.bench_function("rotation_scan_48h", |b| {
        b.iter(|| {
            let series = RelayScanSeries::run(&device, &auth, &config, Epoch::May2022.start());
            RotationReport::from_series(&series)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
