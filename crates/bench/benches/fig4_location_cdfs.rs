//! Figure 4 — CDFs of subnets per city (a, b) and per country (c, d), for
//! IPv4 and IPv6, per egress operator AS.

use criterion::{criterion_group, criterion_main, Criterion};
use tectonic_bench::{banner, paper_deployment};
use tectonic_core::egress_analysis::EgressAnalysis;
use tectonic_core::report::render_fig4;

fn bench(c: &mut Criterion) {
    let d = paper_deployment();
    let analysis = EgressAnalysis::new(&d.egress_list, &d.rib);
    banner("Figure 4: subnet-location CDFs per operator");
    print!(
        "{}",
        render_fig4(&analysis.cdf(true, true), "a: IPv4 cities")
    );
    print!(
        "{}",
        render_fig4(&analysis.cdf(true, false), "b: IPv6 cities")
    );
    print!(
        "{}",
        render_fig4(&analysis.cdf(false, true), "c: IPv4 countries")
    );
    print!(
        "{}",
        render_fig4(&analysis.cdf(false, false), "d: IPv6 countries")
    );
    println!("(paper: heavily skewed — few cities/countries hold most subnets)");

    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("cdf_cities_v6", |b| b.iter(|| analysis.cdf(true, false)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
