//! R3 — the service-blocking survey (§4.1): share of probes behind
//! resolvers that block the relay domains, with the RCODE breakdown.

use criterion::{criterion_group, criterion_main, Criterion};
use tectonic_atlas::population::PopulationConfig;
use tectonic_bench::{banner, bench_deployment};
use tectonic_core::atlas_campaign::AtlasSetup;
use tectonic_core::blocking::survey;
use tectonic_core::report::render_blocking;
use tectonic_dns::server::AuthoritativeServer;
use tectonic_dns::{QType, RData, Record, Zone};
use tectonic_net::Epoch;
use tectonic_relay::Domain;

fn control_server() -> AuthoritativeServer {
    let mut zone = Zone::new("atlas-measurements.net".parse().unwrap());
    zone.add_record(Record::new(
        "control.atlas-measurements.net".parse().unwrap(),
        300,
        RData::A("93.184.216.34".parse().unwrap()),
    ));
    AuthoritativeServer::new().with_zone(zone)
}

fn bench(c: &mut Criterion) {
    let d = bench_deployment();
    let atlas = AtlasSetup::build(d, &PopulationConfig::paper().with_probes(11_700), 3);
    let mask_results = atlas.run_mask_campaign(d, Domain::MaskQuic, QType::A, Epoch::Apr2022, 3);
    let control = control_server();
    let control_results = atlas.run_control_campaign(&control, Epoch::Apr2022, 4);
    let is_ingress = |addr: std::net::IpAddr| d.fleets.is_ingress(addr);
    let report = survey(&mask_results, &control_results, &is_ingress);
    banner("R3: service-blocking survey (11,700 probes)");
    print!("{}", render_blocking(&report));
    println!(
        "(paper: 10% timeouts, 7% failing responses — 72% NXDOMAIN / 13% NOERROR / 5% REFUSED, \
         645 probes = 5.5% blocked, one hijack)"
    );

    let mut group = c.benchmark_group("r3");
    group.sample_size(10);
    group.bench_function("blocking_classification", |b| {
        b.iter(|| survey(&mask_results, &control_results, &is_ingress))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
