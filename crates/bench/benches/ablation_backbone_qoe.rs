//! Ablation — the CDN backbone optimisation (§2's Argo discussion):
//! does the two-hop relay equalise its latency drawback?

use criterion::{criterion_group, criterion_main, Criterion};
use tectonic_bench::{banner, bench_deployment};
use tectonic_core::qoe::{qoe_experiment, render_qoe};
use tectonic_relay::LatencyModel;

fn bench(c: &mut Criterion) {
    let d = bench_deployment();
    let optimised = qoe_experiment(d, &LatencyModel::default(), 5_000, 7);
    let plain = qoe_experiment(
        d,
        &LatencyModel {
            backbone_factor: 1.25,
            ..LatencyModel::default()
        },
        5_000,
        7,
    );
    banner("Ablation: CDN backbone optimisation vs plain routing (QoE)");
    print!("{}", render_qoe(&optimised, &plain));
    println!(
        "(the paper's §2 hypothesis: backbone measures \"might be enough to \
         equalize any latency drawbacks due to the two-hop relay system\")"
    );

    let model = LatencyModel::default();
    let mut group = c.benchmark_group("ablation_qoe");
    group.bench_function("qoe_5k_connections", |b| {
        b.iter(|| qoe_experiment(d, &model, 5_000, 7))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
