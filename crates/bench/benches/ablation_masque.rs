//! Ablation — the §4 CONNECT-UDP session storm, serial driver against the
//! sharded discrete-event engine.
//!
//! The session layer's contract is that the engine is unobservable in the
//! report (same seed ⇒ byte-identical per-session metrics at any worker
//! count — `tests/masque_load.rs` pins it), so the only thing left to
//! measure is wall-clock: `run_serial` vs `run_engine` at 1/4/8 workers,
//! on a small (256-session) and a large (4,800-session, ≥2,000
//! concurrent) storm. `xtask bench-report --suite masque` distils the
//! medians into `BENCH_masque.json` with derived sessions/sec rows.

use criterion::{criterion_group, criterion_main, Criterion};
use tectonic_bench::{banner, BENCH_SEED};
use tectonic_core::masque_load::{run_engine, run_serial, PerfectChannel, StormConfig};
use tectonic_relay::{Deployment, DeploymentConfig};

fn bench(c: &mut Criterion) {
    let deployment = Deployment::build(BENCH_SEED, DeploymentConfig::scaled(512));
    // Session counts here are mirrored by the sessions/sec derivation in
    // `xtask bench-report --suite masque`; keep them in sync.
    let small = StormConfig::sized(64, 2, 0xBE9C);
    let large = StormConfig::sized(1200, 2, 0xBE9C);

    // The equivalence claim once, at the large scale: the engine report
    // must be identical to the serial report, not merely equal in totals.
    let serial = run_serial(&deployment, &large, &PerfectChannel);
    let engine8 = run_engine(&deployment, &large, &PerfectChannel, 8);
    banner("Ablation: CONNECT-UDP session storm, serial vs discrete-event engine");
    println!(
        "large storm: {} sessions ({} peak concurrent), {} datagrams echoed",
        serial.sessions.len(),
        serial.peak_concurrent,
        serial.replies_received
    );
    println!("engine(8w) report identical: {}", serial == engine8);

    let mut group = c.benchmark_group("ablation_masque");
    group.sample_size(10);
    for (label, cfg) in [("small", &small), ("large", &large)] {
        group.bench_function(format!("serial_{label}"), |b| {
            b.iter(|| run_serial(&deployment, cfg, &PerfectChannel))
        });
        for workers in [1usize, 4, 8] {
            group.bench_function(format!("engine_w{workers}_{label}"), |b| {
                b.iter(|| run_engine(&deployment, cfg, &PerfectChannel, workers))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
