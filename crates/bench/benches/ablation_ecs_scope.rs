//! Ablation — the §7 ethics optimisations: query counts with and without
//! honouring server-returned ECS scopes and the routed-space filter.

use criterion::{criterion_group, criterion_main, Criterion};
use tectonic_bench::{banner, bench_deployment};
use tectonic_core::ecs_scan::{EcsScanConfig, EcsScanner};
use tectonic_net::{Epoch, SimClock};
use tectonic_relay::Domain;

fn bench(c: &mut Criterion) {
    let d = bench_deployment();
    let auth = d.auth_server_unlimited();

    let scan_with = |respect_scopes: bool| {
        let scanner = EcsScanner::new(EcsScanConfig {
            respect_scopes,
            ..EcsScanConfig::default()
        });
        let mut clock = SimClock::new(Epoch::Apr2022.start());
        scanner.scan(Domain::MaskQuic.name(), &auth, &d.rib, &mut clock)
    };
    let with_scopes = scan_with(true);
    let without_scopes = scan_with(false);
    banner("Ablation: ECS scope honouring (§7 ethics optimisation)");
    println!(
        "scopes honoured : {:>9} queries, {:>9} skipped, {:>4} addresses, {:>3} h",
        with_scopes.queries_sent,
        with_scopes.skipped_by_scope,
        with_scopes.total(),
        with_scopes.duration.as_secs() / 3600,
    );
    println!(
        "scopes ignored  : {:>9} queries, {:>9} skipped, {:>4} addresses, {:>3} h",
        without_scopes.queries_sent,
        without_scopes.skipped_by_scope,
        without_scopes.total(),
        without_scopes.duration.as_secs() / 3600,
    );
    println!(
        "query savings   : {:.1}% with identical discovery results ({})",
        100.0 * (1.0 - with_scopes.queries_sent as f64 / without_scopes.queries_sent as f64),
        with_scopes.discovered == without_scopes.discovered,
    );
    // The routed-space filter.
    let scanner = EcsScanner::default();
    let routed = scanner.candidate_subnets(&d.rib).len();
    let unrouted_scanner = EcsScanner::new(EcsScanConfig {
        skip_unrouted: false,
        ..EcsScanConfig::default()
    });
    let unicast = unrouted_scanner.candidate_subnets(&d.rib).len();
    println!(
        "routed-space filter: {routed} of {unicast} unicast /24s queried ({:.1}% skipped)",
        100.0 * (1.0 - routed as f64 / unicast as f64)
    );

    // Timing kernels on a fixed 32k-subnet slice.
    let slice: Vec<_> = scanner
        .candidate_subnets(&d.rib)
        .into_iter()
        .take(32_768)
        .collect();
    let kernel = |respect_scopes: bool| {
        let scanner = EcsScanner::new(EcsScanConfig {
            respect_scopes,
            ..EcsScanConfig::default()
        });
        let mut clock = SimClock::new(Epoch::Apr2022.start());
        scanner.scan_subnets(Domain::MaskQuic.name(), &slice, &auth, &d.rib, &mut clock)
    };
    let mut group = c.benchmark_group("ablation_ecs_scope");
    group.sample_size(10);
    group.bench_function("scan_with_scopes_32k", |b| b.iter(|| kernel(true)));
    group.bench_function("scan_without_scopes_32k", |b| b.iter(|| kernel(false)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
