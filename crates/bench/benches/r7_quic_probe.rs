//! R7 — QUIC probing of ingress nodes (§3): standard Initials time out,
//! a forced negotiation reveals QUIC v1 + drafts 29–27.

use criterion::{criterion_group, criterion_main, Criterion};
use tectonic_bench::{banner, bench_deployment};
use tectonic_core::quic_probe::QuicProbeReport;
use tectonic_core::report::render_quic;
use tectonic_quic::{IngressQuicBehavior, QuicProber};

fn bench(c: &mut Criterion) {
    let d = bench_deployment();
    let report = QuicProbeReport::probe(d, 200);
    banner("R7: QUIC probing of ingress nodes");
    print!("{}", render_quic(&report));
    println!(
        "matches the paper's observation: {}",
        report.matches_paper()
    );
    println!("(paper: no Initial response; VN advertises QUICv1 and drafts 29–27)");

    let behavior = IngressQuicBehavior::default();
    let prober = QuicProber;
    let mut group = c.benchmark_group("r7");
    group.bench_function("probe_pair_wire_round_trip", |b| {
        b.iter(|| prober.probe_ingress(&behavior))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
