//! Table 3 — egress subnets, BGP prefixes, addresses and country coverage
//! per operating AS, at full paper scale (the egress list is cheap enough).

use criterion::{criterion_group, criterion_main, Criterion};
use tectonic_bench::{banner, paper_deployment};
use tectonic_core::egress_analysis::EgressAnalysis;
use tectonic_core::report::render_table3;

fn bench(c: &mut Criterion) {
    let d = paper_deployment();
    let analysis = EgressAnalysis::new(&d.egress_list, &d.rib);
    let table = analysis.table3();
    banner("Table 3: egress subnets per operating AS (May snapshot, paper scale)");
    print!("{}", render_table3(&table));
    println!(
        "(paper: AkamaiPR 9890/301/57589 + 142826/1172, AkamaiEG 1602/1/5100 + 23495/1, \
         Cloudflare 18218/112/18218 + 26988/2, Fastly 8530/81/17060 + 8530/81)"
    );
    println!(
        "blank-city rows: {:.1}% (paper: 1.6%); countries <50 subnets: {} (paper: 123)",
        analysis.blank_city_share() * 100.0,
        analysis.countries_below(50)
    );
    let pops = tectonic_geo::country::pop_countries(130);
    let phantoms = analysis.phantom_locations(tectonic_net::Asn::AKAMAI_PR, &pops);
    println!(
        "AkamaiPR represents {} countries with no physical PoP (e.g. {:?}) —          the published location is the client's, not the relay's",
        phantoms.len(),
        phantoms.iter().take(3).collect::<Vec<_>>()
    );

    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("egress_table3_full_list", |b| {
        b.iter(|| {
            let analysis = EgressAnalysis::new(&d.egress_list, &d.rib);
            analysis.table3()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
