//! R2 — IPv6 ingress enumeration via Atlas AAAA measurements (§4.1):
//! 1575 addresses in the paper, split 346 Apple / 1229 Akamai PR, because
//! ECS over IPv6 always answers with scope 0.

use criterion::{criterion_group, criterion_main, Criterion};
use tectonic_atlas::population::PopulationConfig;
use tectonic_bench::{banner, bench_deployment};
use tectonic_core::atlas_campaign::{AtlasCampaignReport, AtlasSetup};
use tectonic_dns::server::{NameServer, QueryContext, ServerReply};
use tectonic_dns::{decode_message, encode_message, EcsOption, Message, QType};
use tectonic_net::{Asn, Epoch};
use tectonic_relay::Domain;

/// Demonstrates why ECS cannot enumerate IPv6: the scope comes back 0.
fn show_v6_scope_zero(d: &tectonic_relay::Deployment) {
    let auth = d.auth_server_unlimited();
    let mut q = Message::query(1, Domain::MaskQuic.name(), QType::AAAA);
    q.edns
        .as_mut()
        .unwrap()
        .set_ecs(EcsOption::for_v4_net("100.64.0.0/24".parse().unwrap()));
    let ctx = QueryContext {
        src: d.world.ases()[0].host_addr(1).into(),
        now: Epoch::Apr2022.start(),
    };
    if let ServerReply::Response(bytes) = auth.handle_query(&encode_message(&q), &ctx) {
        let r = decode_message(&bytes).unwrap();
        let scope = r.edns.as_ref().and_then(|o| o.ecs()).map(|e| e.scope_len);
        println!(
            "AAAA ECS response: {} records, scope {:?} (scope 0 ⇒ ECS enumeration impossible)",
            r.aaaa_answers().len(),
            scope
        );
    }
}

fn bench(c: &mut Criterion) {
    let d = bench_deployment();
    banner("R2: IPv6 ingress enumeration via Atlas AAAA campaign (April)");
    show_v6_scope_zero(d);
    let atlas = AtlasSetup::build(d, &PopulationConfig::paper().with_probes(3_000), 9);
    let results = atlas.run_mask_campaign(d, Domain::MaskQuic, QType::AAAA, Epoch::Apr2022, 9);
    let report = AtlasCampaignReport::aggregate(d, &results);
    println!(
        "distinct IPv6 ingress addresses: {} — Apple {}, AkamaiPR {}",
        report.v6_addresses.len(),
        report.v6_count_for(Asn::APPLE),
        report.v6_count_for(Asn::AKAMAI_PR),
    );
    println!("(paper: 1575 total = 346 Apple + 1229 AkamaiPR)");

    let mut group = c.benchmark_group("r2");
    group.sample_size(10);
    group.bench_function("atlas_aaaa_campaign", |b| {
        b.iter(|| atlas.run_mask_campaign(d, Domain::MaskQuic, QType::AAAA, Epoch::Apr2022, 9))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
