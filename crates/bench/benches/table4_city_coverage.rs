//! Table 4 — covered cities per egress operator (total / IPv4 / IPv6).

use criterion::{criterion_group, criterion_main, Criterion};
use tectonic_bench::{banner, paper_deployment};
use tectonic_core::egress_analysis::EgressAnalysis;
use tectonic_core::report::render_table4;

fn bench(c: &mut Criterion) {
    let d = paper_deployment();
    let analysis = EgressAnalysis::new(&d.egress_list, &d.rib);
    let table = analysis.table4();
    banner("Table 4: covered cities per egress operator (paper scale)");
    print!("{}", render_table4(&table));
    println!(
        "(paper: AkamaiPR 14088/853/14085, AkamaiEG 7507/455/7507, \
         Cloudflare 5228/1134/5228, Fastly 848/848/848)"
    );

    let mut group = c.benchmark_group("table4");
    group.sample_size(10);
    group.bench_function("egress_table4_full_list", |b| b.iter(|| analysis.table4()));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
