//! Ablation — the prefix-trie RIB against a linear scan baseline.
//!
//! Every ECS query does at least two RIB lookups (routed check + client-AS
//! attribution); this bench quantifies why the trie matters.

use std::net::IpAddr;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use tectonic_bench::{banner, bench_deployment};
use tectonic_net::{Asn, IpNet, SimRng};

/// The naive baseline: longest match by scanning every announcement.
fn linear_lookup(routes: &[(IpNet, Asn)], addr: IpAddr) -> Option<(IpNet, Asn)> {
    routes
        .iter()
        .filter(|(net, _)| net.contains(addr))
        .max_by_key(|(net, _)| net.len())
        .copied()
}

fn bench(c: &mut Criterion) {
    let d = bench_deployment();
    let routes: Vec<(IpNet, Asn)> = d.rib.iter().collect();
    let mut rng = SimRng::new(99);
    let addrs: Vec<IpAddr> = (0..1024)
        .map(|_| IpAddr::V4(std::net::Ipv4Addr::from(rng.next_u64_raw() as u32)))
        .collect();
    banner("Ablation: RIB longest-prefix match — trie vs linear scan");
    println!("routes in table : {}", routes.len());
    // Correctness cross-check before timing.
    for addr in addrs.iter().take(128) {
        assert_eq!(d.rib.lookup(*addr), linear_lookup(&routes, *addr));
    }
    println!("trie and linear scan agree on 128 random addresses");

    let mut group = c.benchmark_group("ablation_rib_lpm");
    group.bench_function("trie_1k_lookups", |b| {
        b.iter_batched(
            || addrs.clone(),
            |addrs| addrs.iter().filter(|a| d.rib.lookup(**a).is_some()).count(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("linear_1k_lookups", |b| {
        b.iter_batched(
            || addrs.clone(),
            |addrs| {
                addrs
                    .iter()
                    .filter(|a| linear_lookup(&routes, **a).is_some())
                    .count()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
