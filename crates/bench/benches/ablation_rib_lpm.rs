//! Ablation — longest-prefix match engines at routing-table scale.
//!
//! Every ECS query does at least two RIB lookups (routed check + client-AS
//! attribution), and a full scan performs tens of millions of them. This
//! bench compares the three engines at 1k / 100k / 900k prefixes (900k is
//! the order of the real IPv4 DFZ):
//!
//! * `linear`  — longest match by scanning every announcement,
//! * `trie`    — the mutable pointer-chasing [`PrefixTrie`],
//! * `frozen`  — the compiled flat [`FrozenLpm`] snapshot.
//!
//! Lookups stream through a 256k-address pool so the walked node/entry
//! working set does not fit in cache — the regime a real scan runs in
//! (every reply burst carries fresh addresses). `frozen_batch1024_*` runs
//! one [`FrozenLpm::lookup_batch`] per 1024-address window;
//! `frozen_single_x1024_*` performs the same windows one address at a time
//! — the pair isolates the batching win at equal work.
//!
//! The churn benches (100k / 900k only) measure the table under BGP-flap
//! load: `overlay_lookup_{1,10}pct_*` is steady-state lookup through a
//! [`DeltaOverlay`] holding 1% / 10% of the table as pending patches
//! (compare against `frozen_single_*` for the overlay tax), and the
//! `update_*` trio prices one announcement under each maintenance
//! strategy — `update_full_refreeze_*` rebuilds the whole table per
//! update, `update_overlay_*` patches the overlay and subtree-compacts
//! when the patch budget fills (the amortized steady-state path), and
//! `compact_512_*` isolates one 512-patch subtree compaction.

use std::net::IpAddr;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use tectonic_bench::banner;
use tectonic_net::{Asn, DeltaOverlay, IpNet, Ipv4Net, PrefixTrie, SimRng};

/// Addresses cycled through by every benchmark (windows of `BATCH`).
const POOL: usize = 1 << 18;
/// Addresses per `lookup_batch` call.
const BATCH: usize = 1024;

/// The naive baseline: longest match by scanning every announcement.
fn linear_lookup(routes: &[(IpNet, Asn)], addr: IpAddr) -> Option<(IpNet, Asn)> {
    routes
        .iter()
        .filter(|(net, _)| net.contains(addr))
        .max_by_key(|(net, _)| net.len())
        .copied()
}

/// One synthetic churn announcement, same shape as the base table's.
fn churn_net(rng: &mut SimRng) -> (IpNet, Asn) {
    loop {
        let len = 10 + (rng.next_u64_raw() % 15) as u8; // /10 ..= /24
        let bits = rng.next_u64_raw() as u32;
        if let Ok(net) = Ipv4Net::new(std::net::Ipv4Addr::from(bits), len) {
            return (
                IpNet::V4(net),
                Asn((rng.next_u64_raw() % 70_000) as u32 + 1),
            );
        }
    }
}

/// A synthetic IPv4 table of roughly `target` random announcements.
fn synthetic_table(target: usize, rng: &mut SimRng) -> PrefixTrie<Asn> {
    let mut trie = PrefixTrie::new();
    while trie.len() < target {
        let len = 10 + (rng.next_u64_raw() % 15) as u8; // /10 ..= /24
        let bits = rng.next_u64_raw() as u32;
        if let Ok(net) = Ipv4Net::new(std::net::Ipv4Addr::from(bits), len) {
            trie.insert(net, Asn((rng.next_u64_raw() % 70_000) as u32 + 1));
        }
    }
    trie
}

fn bench(c: &mut Criterion) {
    banner("Ablation: RIB longest-prefix match — linear vs trie vs FrozenLpm");
    let mut rng = SimRng::new(99);
    let pool: Vec<IpAddr> = (0..POOL)
        .map(|_| IpAddr::V4(std::net::Ipv4Addr::from(rng.next_u64_raw() as u32)))
        .collect();

    let mut group = c.benchmark_group("ablation_rib_lpm");
    group.sample_size(20);
    for (label, target) in [("1k", 1_000usize), ("100k", 100_000), ("900k", 900_000)] {
        let trie = synthetic_table(target, &mut rng);
        let frozen = trie.freeze();
        let routes: Vec<(IpNet, Asn)> = trie.iter().map(|(n, a)| (n, *a)).collect();
        println!("table {label}: {} prefixes", routes.len());

        // Correctness cross-check before timing: all three engines agree.
        let sample = &pool[..BATCH];
        let mut batch = Vec::new();
        frozen.lookup_batch(sample, &mut batch);
        for (addr, got) in sample.iter().zip(&batch) {
            let trie_hit = trie.longest_match(*addr).map(|(n, v)| (n, *v));
            assert_eq!(got.map(|(n, v)| (n, *v)), trie_hit, "frozen vs trie");
        }
        for addr in sample.iter().take(128) {
            let trie_hit = trie.longest_match(*addr).map(|(n, v)| (n, *v));
            assert_eq!(linear_lookup(&routes, *addr), trie_hit, "linear vs trie");
        }
        println!("table {label}: linear, trie and frozen agree");

        // Single lookups stream the pool so consecutive walks don't reuse
        // each other's cache lines.
        let mut i = 0usize;
        group.bench_function(format!("linear_single_{label}"), |b| {
            b.iter(|| {
                i = (i + 1) & (POOL - 1);
                linear_lookup(&routes, pool[i])
            })
        });
        let mut i = 0usize;
        group.bench_function(format!("trie_single_{label}"), |b| {
            b.iter(|| {
                i = (i + 1) & (POOL - 1);
                trie.longest_match(pool[i])
            })
        });
        let mut i = 0usize;
        group.bench_function(format!("frozen_single_{label}"), |b| {
            b.iter(|| {
                i = (i + 1) & (POOL - 1);
                frozen.longest_match(pool[i])
            })
        });

        // Batched vs one-by-one over identical 1024-address windows.
        let mut out = Vec::with_capacity(BATCH);
        let mut w = 0usize;
        group.bench_function(format!("frozen_batch1024_{label}"), |b| {
            b.iter(|| {
                w = (w + BATCH) & (POOL - 1);
                frozen.lookup_batch(&pool[w..w + BATCH.min(POOL - w)], &mut out);
                out.len()
            })
        });
        let mut w = 0usize;
        group.bench_function(format!("frozen_single_x1024_{label}"), |b| {
            b.iter(|| {
                w = (w + BATCH) & (POOL - 1);
                pool[w..w + BATCH.min(POOL - w)]
                    .iter()
                    .filter(|a| frozen.longest_match(**a).is_some())
                    .count()
            })
        });

        // Churn regime: lookups through a dirty overlay and the per-update
        // cost of each maintenance strategy. Only meaningful at DFZ-ish
        // scale, where a full rebuild per update is visibly absurd.
        if label == "1k" {
            continue;
        }

        // Dirty overlays holding 1% / 10% of the table as pending patches,
        // each cross-checked against a from-scratch rebuild before timing.
        let mut overlays = Vec::new();
        for (tag, num) in [("1pct", target / 100), ("10pct", target / 10)] {
            let mut delta = DeltaOverlay::new();
            let mut mirror: PrefixTrie<Asn> = trie.iter().map(|(n, a)| (n, *a)).collect();
            for _ in 0..num {
                let (net, asn) = churn_net(&mut rng);
                delta.announce(net, asn);
                mirror.insert(net, asn);
            }
            let rebuilt = mirror.freeze();
            for addr in sample.iter().take(256) {
                assert_eq!(
                    delta.longest_match(&frozen, *addr).map(|(n, v)| (n, *v)),
                    rebuilt.longest_match(*addr).map(|(n, v)| (n, *v)),
                    "overlay vs rebuild at {tag}"
                );
            }
            overlays.push((tag, delta));
        }
        println!("table {label}: overlay and full rebuild agree at 1% and 10% churn");
        for (tag, delta) in &overlays {
            let mut i = 0usize;
            group.bench_function(format!("overlay_lookup_{tag}_{label}"), |b| {
                b.iter(|| {
                    i = (i + 1) & (POOL - 1);
                    delta.longest_match(&frozen, pool[i])
                })
            });
        }

        // Strategy 1: rebuild the whole table on every announcement.
        let mut work: PrefixTrie<Asn> = trie.iter().map(|(n, a)| (n, *a)).collect();
        let mut rng_full = SimRng::new(7);
        group.bench_function(format!("update_full_refreeze_{label}"), |b| {
            b.iter(|| {
                let (net, asn) = churn_net(&mut rng_full);
                work.insert(net, asn);
                work.freeze().len()
            })
        });

        // Strategy 2: announce into the overlay, subtree-compacting when
        // the patch budget fills — the amortized steady-state update path.
        let mut live = trie
            .iter()
            .map(|(n, a)| (n, *a))
            .collect::<PrefixTrie<Asn>>()
            .freeze();
        let mut delta = DeltaOverlay::new();
        let mut rng_ov = SimRng::new(8);
        group.bench_function(format!("update_overlay_{label}"), |b| {
            b.iter(|| {
                let (net, asn) = churn_net(&mut rng_ov);
                delta.announce(net, asn);
                if delta.should_compact(live.len()) {
                    live.refreeze_subtree(&delta);
                    delta.clear();
                }
                delta.len()
            })
        });

        // Strategy 3 in isolation: one 512-patch subtree compaction. The
        // setup applies a 1-patch refreeze to the snapshot so the
        // copy-on-write unshare lands outside the timed window.
        let mut rng_cp = SimRng::new(9);
        let mut delta512 = DeltaOverlay::new();
        for _ in 0..512 {
            let (net, asn) = churn_net(&mut rng_cp);
            delta512.announce(net, asn);
        }
        let mut warm = DeltaOverlay::new();
        let (wnet, wasn) = churn_net(&mut rng_cp);
        warm.announce(wnet, wasn);
        group.bench_function(format!("compact_512_{label}"), |b| {
            b.iter_batched(
                || {
                    let mut f = frozen.snapshot();
                    f.refreeze_subtree(&warm);
                    f
                },
                |mut f| {
                    f.refreeze_subtree(&delta512);
                    f.len()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
