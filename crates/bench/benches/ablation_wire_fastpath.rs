//! Ablation — the zero-allocation wire fast path against the general
//! per-query encoder.
//!
//! The ECS scan sends one near-identical query per routed /24 (~11 M at
//! Internet scale), so per-query constant factors dominate the simulated
//! campaign's real runtime. This ablation times three levels:
//!
//! * **encode kernel** — building the query bytes: template patch (5 bytes
//!   rewritten in place) vs `Message` construction + `encode_message`,
//! * **query kernel** — the full round trip the scanner performs per subnet:
//!   encode, serve, decode; the fast path also writes the reply into a
//!   reused scratch buffer via `handle_query_into`,
//! * **full scan** — `EcsScanner::scan` on a 1/256-scale deployment with
//!   `use_fast_path` on and off, confirming identical discovery.

use bytes::BytesMut;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tectonic_bench::banner;
use tectonic_core::ecs_scan::{EcsScanConfig, EcsScanner};
use tectonic_dns::server::{NameServer, QueryContext, ReplyOutcome, ServerReply};
use tectonic_dns::{decode_message, encode_message, EcsOption, Message, QType, QueryTemplate};
use tectonic_net::{Epoch, Ipv4Net, SimClock};
use tectonic_relay::{Deployment, DeploymentConfig, Domain};

fn bench(c: &mut Criterion) {
    let d = Deployment::build(tectonic_bench::BENCH_SEED, DeploymentConfig::scaled(256));
    let auth = d.auth_server_unlimited();
    let domain = Domain::MaskQuic.name();
    let subnet: Ipv4Net = "17.64.3.0/24".parse().unwrap();
    let ctx = QueryContext {
        src: "138.246.253.10".parse().unwrap(),
        now: Epoch::Apr2022.start(),
    };

    banner("Ablation: wire fast path (template patch + scratch reply)");

    let mut group = c.benchmark_group("ablation_wire_fastpath");
    group.sample_size(10);

    // Encode kernel: query bytes only.
    group.bench_function("encode_general", |b| {
        let mut id = 0u16;
        b.iter(|| {
            id = id.wrapping_add(1);
            let mut query = Message::query(id, domain.clone(), QType::A);
            query
                .edns
                .as_mut()
                .expect("query has EDNS")
                .set_ecs(EcsOption::for_v4_net(subnet));
            black_box(encode_message(&query))
        })
    });
    group.bench_function("encode_template_patch", |b| {
        let template = QueryTemplate::new_v4_24(&domain, QType::A).expect("template");
        let mut patched = template.instantiate();
        let mut id = 0u16;
        b.iter(|| {
            id = id.wrapping_add(1);
            black_box(patched.patch(id, subnet).len())
        })
    });

    // Query kernel: encode + serve + decode, as the scanner does per /24.
    group.bench_function("query_general", |b| {
        let mut id = 0u16;
        b.iter(|| {
            id = id.wrapping_add(1);
            let mut query = Message::query(id, domain.clone(), QType::A);
            query
                .edns
                .as_mut()
                .expect("query has EDNS")
                .set_ecs(EcsOption::for_v4_net(subnet));
            let wire = encode_message(&query);
            match auth.handle_query(&wire, &ctx) {
                ServerReply::Response(bytes) => decode_message(&bytes).ok(),
                ServerReply::Dropped => None,
            }
        })
    });
    group.bench_function("query_fast_path", |b| {
        let template = QueryTemplate::new_v4_24(&domain, QType::A).expect("template");
        let mut patched = template.instantiate();
        let mut reply = BytesMut::new();
        let mut id = 0u16;
        b.iter(|| {
            id = id.wrapping_add(1);
            let wire = patched.patch(id, subnet);
            match auth.handle_query_into(wire, &ctx, &mut reply) {
                ReplyOutcome::Written => decode_message(&reply).ok(),
                ReplyOutcome::Dropped => None,
            }
        })
    });

    // Full scan, both paths; discovery must be identical.
    let start = Epoch::Apr2022.start();
    let scan_with = |use_fast_path: bool| {
        let scanner = EcsScanner::new(EcsScanConfig {
            use_fast_path,
            ..EcsScanConfig::default()
        });
        let mut clock = SimClock::new(start);
        scanner.scan(Domain::MaskQuic.name(), &auth, &d.rib, &mut clock)
    };
    let fast = scan_with(true);
    let general = scan_with(false);
    println!(
        "full scan: {} queries, {} addresses; identical reports: {}",
        fast.queries_sent,
        fast.total(),
        fast == general
    );
    assert_eq!(
        fast, general,
        "fast path changed scan results — ablation invalid"
    );
    group.bench_function("scan_general", |b| b.iter(|| scan_with(false)));
    group.bench_function("scan_fast_path", |b| b.iter(|| scan_with(true)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
