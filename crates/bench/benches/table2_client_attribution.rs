//! Table 2 — client ASes served per ingress operator, joined with
//! APNIC-style AS populations.

use criterion::{criterion_group, criterion_main, Criterion};
use tectonic_bench::{banner, bench_deployment};
use tectonic_core::attribution::Table2;
use tectonic_core::ecs_scan::EcsScanner;
use tectonic_core::report::render_table2;
use tectonic_net::{Epoch, SimClock};
use tectonic_relay::Domain;

fn bench(c: &mut Criterion) {
    let d = bench_deployment();
    let auth = d.auth_server_unlimited();
    let scanner = EcsScanner::default();
    let mut clock = SimClock::new(Epoch::Apr2022.start());
    let report = scanner.scan(Domain::MaskQuic.name(), &auth, &d.rib, &mut clock);
    let table = Table2::build(&report, &d.aspop);
    banner("Table 2: client ASes served by each ingress operator (April scan)");
    print!("{}", render_table2(&table));
    println!(
        "(paper: AkamaiPR 994M users / 34.6k ASes, Apple 105M / 20.8k, Both 2373M / 17.3k, Apple share in Both 76%)"
    );

    let mut group = c.benchmark_group("table2");
    group.bench_function("attribution_join", |b| {
        b.iter(|| Table2::build(&report, &d.aspop))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
