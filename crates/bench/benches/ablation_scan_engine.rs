//! Ablation — the sharded discrete-event scan engine against the serial
//! scanner and the legacy round-robin parallel path.
//!
//! The engine's contract is that worker count is unobservable in the
//! report, so the only thing left to measure is wall-clock: serial vs
//! `scan_parallel` (the legacy deal-by-index path, per-worker scope
//! honouring) vs `scan_engine` at 1/4/8 workers, on a small (~10 k
//! clients) and a large (~1 M clients) deployment. `xtask bench-report
//! --suite scan` distils the medians into `BENCH_scan.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use tectonic_bench::{banner, bench_deployment, BENCH_SEED};
use tectonic_core::ecs_scan::EcsScanner;
use tectonic_engine::EngineConfig;
use tectonic_net::{Epoch, SimClock};
use tectonic_relay::{Deployment, DeploymentConfig, Domain};

fn bench(c: &mut Criterion) {
    let scanner = EcsScanner::default();
    let start = Epoch::Apr2022.start();
    let large = bench_deployment();
    let small = Deployment::build(BENCH_SEED, DeploymentConfig::scaled(256));

    // The full comparison once, at the large scale: the engine must
    // discover exactly what the serial scan discovers.
    let large_auth = large.auth_server_unlimited();
    let mut clock = SimClock::new(start);
    let serial = scanner.scan(Domain::MaskQuic.name(), &large_auth, &large.rib, &mut clock);
    let engine8 = scanner.scan_engine(
        Domain::MaskQuic.name(),
        &large_auth,
        &large.rib,
        start,
        &EngineConfig::new(8, 8),
    );
    banner("Ablation: serial vs legacy-parallel vs discrete-event engine");
    println!(
        "large scan : {} /24 subnets queried (~{} clients), {} addresses",
        serial.queries_sent,
        serial.queries_sent * 256,
        serial.total()
    );
    println!(
        "engine(8w8): identical discovery: {}, identical counters: {}",
        serial.discovered == engine8.discovered,
        serial.queries_sent == engine8.queries_sent
            && serial.skipped_by_scope == engine8.skipped_by_scope
    );

    let small_auth = small.auth_server_unlimited();
    let mut group = c.benchmark_group("ablation_scan_engine");
    group.sample_size(10);
    for (label, d, auth) in [
        ("small", &small, &small_auth),
        ("large", large, &large_auth),
    ] {
        group.bench_function(format!("serial_{label}"), |b| {
            b.iter(|| {
                let mut clock = SimClock::new(start);
                scanner.scan(Domain::MaskQuic.name(), auth, &d.rib, &mut clock)
            })
        });
        group.bench_function(format!("legacy8_{label}"), |b| {
            b.iter(|| scanner.scan_parallel(Domain::MaskQuic.name(), auth, &d.rib, start, 8))
        });
        for workers in [1usize, 4, 8] {
            group.bench_function(format!("engine_w{workers}_{label}"), |b| {
                b.iter(|| {
                    scanner.scan_engine(
                        Domain::MaskQuic.name(),
                        auth,
                        &d.rib,
                        start,
                        &EngineConfig::new(8, workers),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
