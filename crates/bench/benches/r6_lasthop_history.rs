//! R6 — traceroute last-hop sharing and the BGP first-seen check (§6).
//!
//! The paper validates the correlation concern by tracerouting to an
//! ingress and an egress address in AS36183 and finding the same last-hop
//! router, and by scanning monthly BGP snapshots back to 2016 to show the
//! AS first appeared in June 2021.

use criterion::{criterion_group, criterion_main, Criterion};
use tectonic_bench::{banner, paper_deployment};
use tectonic_net::{Asn, Epoch};
use tectonic_relay::Domain;

fn bench(c: &mut Criterion) {
    let d = paper_deployment();
    banner("R6: last-hop sharing + BGP visibility history");

    // Pick one ingress and search egress subnets sharing its last hop.
    let client_asn = d.world.ases()[0].asn;
    let ingress = d
        .fleets
        .fleet_v4(Epoch::Apr2022, Domain::MaskQuic, Asn::AKAMAI_PR)[0];
    let ingress_trace =
        d.routers
            .traceroute(client_asn, Asn::AKAMAI_PR, std::net::IpAddr::V4(ingress));
    println!("traceroute to ingress {ingress}:");
    for (ttl, hop) in ingress_trace.iter().enumerate() {
        println!("  {:>2}  {}  [{}]", ttl + 1, hop.addr, hop.asn);
    }
    let shared = d
        .egress_list
        .entries()
        .iter()
        .filter(|e| e.subnet.is_v4())
        .filter(|e| {
            d.rib
                .lookup_net(&e.subnet)
                .is_some_and(|(_, asn)| asn == Asn::AKAMAI_PR)
        })
        .find(|e| {
            d.routers.shares_last_hop(
                Asn::AKAMAI_PR,
                std::net::IpAddr::V4(ingress),
                e.subnet.network(),
            )
        });
    match shared {
        Some(e) => {
            let trace = d
                .routers
                .traceroute(client_asn, Asn::AKAMAI_PR, e.subnet.network());
            println!("egress subnet {} shares the last hop:", e.subnet);
            for (ttl, hop) in trace.iter().enumerate() {
                println!("  {:>2}  {}  [{}]", ttl + 1, hop.addr, hop.asn);
            }
            assert_eq!(trace.last(), ingress_trace.last());
        }
        None => println!("no egress subnet shares this ingress's last hop (unexpected)"),
    }

    // BGP history.
    let first = d.history.first_seen(Asn::AKAMAI_PR);
    println!(
        "AkamaiPR first visible in BGP: {} (paper: 2021-06, the Private Relay launch)",
        first.map(|m| m.to_string()).unwrap_or_default()
    );
    println!(
        "AkamaiPR peering degree: {} (single peer: {:?})",
        d.topology.degree(Asn::AKAMAI_PR),
        d.topology
            .neighbors(Asn::AKAMAI_PR)
            .first()
            .map(|a| a.label())
    );

    // The timing-correlation attack the shared infrastructure enables.
    let attack = tectonic_core::correlation_attack::run_attack(
        &tectonic_core::correlation_attack::AttackConfig::default(),
        2022,
    );
    print!(
        "{}",
        tectonic_core::correlation_attack::render_attack(&attack)
    );

    let mut group = c.benchmark_group("r6");
    group.bench_function("first_seen_scan", |b| {
        b.iter(|| d.history.first_seen(Asn::AKAMAI_PR))
    });
    group.bench_function("timing_attack_40_sessions", |b| {
        b.iter(|| {
            tectonic_core::correlation_attack::run_attack(
                &tectonic_core::correlation_attack::AttackConfig::default(),
                2022,
            )
        })
    });
    group.bench_function("traceroute", |b| {
        b.iter(|| {
            d.routers
                .traceroute(client_asn, Asn::AKAMAI_PR, std::net::IpAddr::V4(ingress))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
