//! R1 — RIPE Atlas validation of the ECS scan (§4.1): the Atlas A
//! campaign's address set must be (almost) a subset of the ECS scan's,
//! with the ECS scan uncovering additional addresses.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use criterion::{criterion_group, criterion_main, Criterion};
use tectonic_atlas::population::PopulationConfig;
use tectonic_bench::{banner, bench_deployment};
use tectonic_core::atlas_campaign::{AtlasCampaignReport, AtlasSetup};
use tectonic_core::ecs_scan::EcsScanner;
use tectonic_dns::QType;
use tectonic_net::{Epoch, SimClock};
use tectonic_relay::Domain;

fn bench(c: &mut Criterion) {
    let d = bench_deployment();
    let auth = d.auth_server_unlimited();
    let scanner = EcsScanner::default();
    let mut clock = SimClock::new(Epoch::Apr2022.start());
    let ecs = scanner.scan(Domain::MaskQuic.name(), &auth, &d.rib, &mut clock);
    let atlas = AtlasSetup::build(d, &PopulationConfig::paper().with_probes(2_000), 7);
    let results = atlas.run_mask_campaign(d, Domain::MaskQuic, QType::A, Epoch::Apr2022, 7);
    let report = AtlasCampaignReport::aggregate(d, &results);
    let atlas_ingress: BTreeSet<Ipv4Addr> = report
        .v4_addresses
        .iter()
        .filter(|a| d.fleets.is_ingress(std::net::IpAddr::V4(**a)))
        .copied()
        .collect();
    let in_ecs = atlas_ingress.intersection(&ecs.discovered).count();
    banner("R1: Atlas validation of the ECS scan (April, default domain)");
    println!("ECS scan addresses   : {}", ecs.total());
    println!("Atlas addresses      : {}", atlas_ingress.len());
    println!(
        "Atlas ∩ ECS          : {} ({} missing from ECS)",
        in_ecs,
        atlas_ingress.len() - in_ecs
    );
    println!("ECS-only addresses   : {}", ecs.total() - in_ecs);
    println!("(paper: Atlas 1382 vs ECS 1586; all but one Atlas address also in ECS)");

    let mut group = c.benchmark_group("r1");
    group.sample_size(10);
    group.bench_function("atlas_a_campaign", |b| {
        b.iter(|| atlas.run_mask_campaign(d, Domain::MaskQuic, QType::A, Epoch::Apr2022, 7))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
