//! Ablation — parallel scan workers against the sequential
//! single-source scanner.
//!
//! The paper scans from a single vantage point and is rate-limit bound.
//! Sharding across source addresses trades ethical footprint for speed;
//! this ablation quantifies the wall-clock side of that trade.

use criterion::{criterion_group, criterion_main, Criterion};
use tectonic_bench::{banner, bench_deployment};
use tectonic_core::ecs_scan::EcsScanner;
use tectonic_net::{Epoch, SimClock};
use tectonic_relay::Domain;

fn bench(c: &mut Criterion) {
    let d = bench_deployment();
    let auth = d.auth_server_unlimited();
    let scanner = EcsScanner::default();
    let start = Epoch::Apr2022.start();

    let mut clock = SimClock::new(start);
    let seq = scanner.scan(Domain::MaskQuic.name(), &auth, &d.rib, &mut clock);
    let par = scanner.scan_parallel(Domain::MaskQuic.name(), &auth, &d.rib, start, 8);
    banner("Ablation: sequential vs 8-way parallel ECS scan");
    println!(
        "sequential : {} queries, {} addresses, simulated {} min",
        seq.queries_sent,
        seq.total(),
        seq.duration.as_secs() / 60
    );
    println!(
        "parallel(8): {} queries, {} addresses, simulated {} min (slowest worker)",
        par.queries_sent,
        par.total(),
        par.duration.as_secs() / 60
    );
    println!("identical discovery: {}", seq.discovered == par.discovered);

    // Timing kernels on a 1/256-scale deployment so one iteration is
    // tens of milliseconds; the full comparison ran above.
    let small = tectonic_relay::Deployment::build(
        tectonic_bench::BENCH_SEED,
        tectonic_relay::DeploymentConfig::scaled(256),
    );
    let small_auth = small.auth_server_unlimited();
    let mut group = c.benchmark_group("ablation_scan_parallel");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut clock = SimClock::new(start);
            scanner.scan(Domain::MaskQuic.name(), &small_auth, &small.rib, &mut clock)
        })
    });
    for workers in [2usize, 4, 8] {
        group.bench_function(format!("parallel_{workers}"), |b| {
            b.iter(|| {
                scanner.scan_parallel(
                    Domain::MaskQuic.name(),
                    &small_auth,
                    &small.rib,
                    start,
                    workers,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
