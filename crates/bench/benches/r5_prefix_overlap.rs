//! R5 — the §6 prefix census of AS36183 (Akamai PR): announced prefixes,
//! how many carry ingress or egress relays, and the used share (92.2 %).

use criterion::{criterion_group, criterion_main, Criterion};
use tectonic_bench::{banner, paper_deployment};
use tectonic_core::correlation::CorrelationReport;
use tectonic_core::report::render_correlation;
use tectonic_net::Epoch;

fn bench(c: &mut Criterion) {
    let d = paper_deployment();
    let report = CorrelationReport::audit(d, Epoch::Apr2022);
    banner("R5: AkamaiPR prefix census (paper scale)");
    print!("{}", render_correlation(&report));
    println!("(paper: 478 IPv4 + 1335 IPv6 announced; ingress in 201, egress in 1472; 92.2% used)");

    let mut group = c.benchmark_group("r5");
    group.sample_size(10);
    group.bench_function("prefix_census", |b| {
        b.iter(|| CorrelationReport::audit(d, Epoch::Apr2022))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
