//! Property tests for the RIB: longest-prefix match against a brute-force
//! reference, announce/withdraw laws, and per-origin bookkeeping.

use std::net::{IpAddr, Ipv4Addr};

use proptest::prelude::*;
use tectonic_bgp::Rib;
use tectonic_net::{Asn, IpNet, Ipv4Net};

fn arb_route() -> impl Strategy<Value = (IpNet, Asn)> {
    (any::<u32>(), 0u8..=28, 1u32..2000).prop_map(|(bits, len, asn)| {
        (
            IpNet::V4(Ipv4Net::new(Ipv4Addr::from(bits), len).unwrap()),
            Asn(asn),
        )
    })
}

/// Reference longest-prefix match over a plain list (last announce wins
/// for duplicate prefixes).
fn reference_lookup(routes: &[(IpNet, Asn)], addr: IpAddr) -> Option<(IpNet, Asn)> {
    let mut dedup: Vec<(IpNet, Asn)> = Vec::new();
    for (net, asn) in routes {
        if let Some(slot) = dedup.iter_mut().find(|(n, _)| n == net) {
            slot.1 = *asn;
        } else {
            dedup.push((*net, *asn));
        }
    }
    dedup
        .into_iter()
        .filter(|(net, _)| net.contains(addr))
        .max_by_key(|(net, _)| net.len())
}

proptest! {
    #[test]
    fn rib_matches_reference(
        routes in prop::collection::vec(arb_route(), 1..80),
        addrs in prop::collection::vec(any::<u32>(), 1..40),
    ) {
        let mut rib = Rib::new();
        for (net, asn) in &routes {
            rib.announce(*net, *asn);
        }
        for bits in addrs {
            let addr = IpAddr::V4(Ipv4Addr::from(bits));
            prop_assert_eq!(rib.lookup(addr), reference_lookup(&routes, addr));
        }
    }

    #[test]
    fn withdraw_undoes_announce(routes in prop::collection::vec(arb_route(), 1..60)) {
        let mut rib = Rib::new();
        let mut unique: Vec<(IpNet, Asn)> = Vec::new();
        for (net, asn) in routes {
            if !unique.iter().any(|(n, _)| *n == net) {
                unique.push((net, asn));
                rib.announce(net, asn);
            }
        }
        prop_assert_eq!(rib.len(), unique.len());
        for (net, asn) in &unique {
            prop_assert_eq!(rib.withdraw(net), Some(*asn));
        }
        prop_assert!(rib.is_empty());
        for (net, _) in &unique {
            prop_assert!(rib.lookup(net.network()).is_none());
        }
    }

    #[test]
    fn prefixes_of_partitions_the_table(routes in prop::collection::vec(arb_route(), 1..60)) {
        let mut rib = Rib::new();
        for (net, asn) in &routes {
            rib.announce(*net, *asn);
        }
        let total: usize = rib
            .origins()
            .iter()
            .map(|asn| rib.prefixes_of(*asn).len())
            .sum();
        prop_assert_eq!(total, rib.len());
        // Every prefix listed for an origin really has that origin.
        for &asn in rib.origins() {
            for p in rib.prefixes_of(asn) {
                prop_assert_eq!(rib.origin_of(p), Some(asn));
            }
        }
    }

    #[test]
    fn reannounce_is_last_writer_wins(
        net_bits in any::<u32>(),
        len in 0u8..=24,
        asns in prop::collection::vec(1u32..100, 1..10),
    ) {
        let net = IpNet::V4(Ipv4Net::new(Ipv4Addr::from(net_bits), len).unwrap());
        let mut rib = Rib::new();
        for asn in &asns {
            rib.announce(net, Asn(*asn));
        }
        prop_assert_eq!(rib.len(), 1);
        prop_assert_eq!(rib.origin_of(&net), Some(Asn(*asns.last().unwrap())));
        // The loser ASes keep no stale per-origin entries.
        for asn in &asns[..asns.len() - 1] {
            if asn != asns.last().unwrap() {
                prop_assert!(rib.prefixes_of(Asn(*asn)).is_empty());
            }
        }
    }
}
