//! AS-level topology: peering links between autonomous systems.
//!
//! The paper's §6 notes that AS36183 (Akamai&#8239;PR) has exactly one
//! publicly visible peering link — to AS20940 (Akamai&#8239;EG). The
//! simulated topology reproduces that degree-1 attachment, and the
//! correlation auditor reads it back out.

use std::collections::{BTreeSet, HashMap, VecDeque};

use tectonic_net::Asn;

/// An undirected AS-level graph.
#[derive(Debug, Default, Clone)]
pub struct AsTopology {
    edges: HashMap<Asn, BTreeSet<Asn>>,
}

impl AsTopology {
    /// An empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an undirected peering/transit link. Self-links are ignored.
    pub fn add_link(&mut self, a: Asn, b: Asn) {
        if a == b {
            return;
        }
        self.edges.entry(a).or_default().insert(b);
        self.edges.entry(b).or_default().insert(a);
    }

    /// Ensures the AS exists in the graph even without links.
    pub fn add_as(&mut self, asn: Asn) {
        self.edges.entry(asn).or_default();
    }

    /// Whether a direct link exists.
    pub fn has_link(&self, a: Asn, b: Asn) -> bool {
        self.edges.get(&a).is_some_and(|n| n.contains(&b))
    }

    /// The neighbours of `asn`, sorted.
    pub fn neighbors(&self, asn: Asn) -> Vec<Asn> {
        self.edges
            .get(&asn)
            .map(|n| n.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Degree of `asn` (0 if unknown).
    pub fn degree(&self, asn: Asn) -> usize {
        self.edges.get(&asn).map(BTreeSet::len).unwrap_or(0)
    }

    /// Whether the AS is present at all.
    pub fn contains(&self, asn: Asn) -> bool {
        self.edges.contains_key(&asn)
    }

    /// Number of ASes in the graph.
    pub fn as_count(&self) -> usize {
        self.edges.len()
    }

    /// Shortest AS path between two ASes (inclusive), by BFS.
    pub fn path(&self, from: Asn, to: Asn) -> Option<Vec<Asn>> {
        if from == to {
            return Some(vec![from]);
        }
        if !self.edges.contains_key(&from) || !self.edges.contains_key(&to) {
            return None;
        }
        let mut prev: HashMap<Asn, Asn> = HashMap::new();
        let mut queue = VecDeque::from([from]);
        while let Some(cur) = queue.pop_front() {
            for &next in self.edges.get(&cur).into_iter().flatten() {
                if next == from || prev.contains_key(&next) {
                    continue;
                }
                prev.insert(next, cur);
                if next == to {
                    let mut path = vec![to];
                    let mut node = to;
                    while let Some(&p) = prev.get(&node) {
                        path.push(p);
                        node = p;
                        if node == from {
                            break;
                        }
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(next);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn links_are_undirected() {
        let mut t = AsTopology::new();
        t.add_link(Asn::AKAMAI_PR, Asn::AKAMAI_EG);
        assert!(t.has_link(Asn::AKAMAI_PR, Asn::AKAMAI_EG));
        assert!(t.has_link(Asn::AKAMAI_EG, Asn::AKAMAI_PR));
        assert!(!t.has_link(Asn::AKAMAI_PR, Asn::APPLE));
    }

    #[test]
    fn self_links_ignored() {
        let mut t = AsTopology::new();
        t.add_link(Asn::APPLE, Asn::APPLE);
        assert_eq!(t.degree(Asn::APPLE), 0);
    }

    #[test]
    fn akamai_pr_degree_one_scenario() {
        // Reproduce the paper's single-peering observation.
        let mut t = AsTopology::new();
        t.add_link(Asn::AKAMAI_PR, Asn::AKAMAI_EG);
        t.add_link(Asn::AKAMAI_EG, Asn(3356));
        t.add_link(Asn::APPLE, Asn(3356));
        assert_eq!(t.degree(Asn::AKAMAI_PR), 1);
        assert_eq!(t.neighbors(Asn::AKAMAI_PR), vec![Asn::AKAMAI_EG]);
    }

    #[test]
    fn bfs_path_is_shortest() {
        let mut t = AsTopology::new();
        // Triangle with a longer detour.
        t.add_link(Asn(1), Asn(2));
        t.add_link(Asn(2), Asn(3));
        t.add_link(Asn(1), Asn(4));
        t.add_link(Asn(4), Asn(5));
        t.add_link(Asn(5), Asn(3));
        let p = t.path(Asn(1), Asn(3)).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p[0], Asn(1));
        assert_eq!(*p.last().unwrap(), Asn(3));
    }

    #[test]
    fn path_to_self_and_unknown() {
        let mut t = AsTopology::new();
        t.add_as(Asn(10));
        assert_eq!(t.path(Asn(10), Asn(10)), Some(vec![Asn(10)]));
        assert_eq!(t.path(Asn(10), Asn(99)), None);
        assert_eq!(t.path(Asn(99), Asn(10)), None);
    }

    #[test]
    fn disconnected_components() {
        let mut t = AsTopology::new();
        t.add_link(Asn(1), Asn(2));
        t.add_link(Asn(3), Asn(4));
        assert_eq!(t.path(Asn(1), Asn(4)), None);
        assert_eq!(t.as_count(), 4);
    }
}
