//! Monthly AS-visibility history.
//!
//! The paper examined monthly BGP snapshots from 2016 through 2022 and found
//! AS36183's first appearance in June 2021 — the month iCloud Private Relay
//! was announced at WWDC. [`VisibilityHistory`] stores per-month visible-AS
//! sets and answers first-seen queries.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::{Deserialize, Serialize};
use tectonic_net::Asn;

/// A calendar month.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Month {
    /// Year (e.g. 2021).
    pub year: u16,
    /// Month 1–12.
    pub month: u8,
}

impl Month {
    /// Creates a month; panics on `month` outside 1–12 in debug builds.
    pub fn new(year: u16, month: u8) -> Month {
        debug_assert!((1..=12).contains(&month));
        Month { year, month }
    }

    /// The following month.
    pub fn next(&self) -> Month {
        if self.month == 12 {
            Month::new(self.year + 1, 1)
        } else {
            Month::new(self.year, self.month + 1)
        }
    }

    /// Inclusive iterator from `self` through `end`.
    pub fn through(self, end: Month) -> impl Iterator<Item = Month> {
        let mut cur = self;
        std::iter::from_fn(move || {
            if cur > end {
                None
            } else {
                let out = cur;
                cur = cur.next();
                Some(out)
            }
        })
    }
}

impl fmt::Display for Month {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}", self.year, self.month)
    }
}

/// Monthly snapshots of the set of globally visible ASes.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct VisibilityHistory {
    snapshots: BTreeMap<Month, BTreeSet<Asn>>,
}

impl VisibilityHistory {
    /// An empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `asn` as visible in `month`.
    pub fn record(&mut self, month: Month, asn: Asn) {
        self.snapshots.entry(month).or_default().insert(asn);
    }

    /// Records a whole visible-AS set for `month`.
    pub fn record_many(&mut self, month: Month, asns: impl IntoIterator<Item = Asn>) {
        self.snapshots.entry(month).or_default().extend(asns);
    }

    /// Whether `asn` was visible in `month` (false for missing snapshots).
    pub fn visible_in(&self, month: Month, asn: Asn) -> bool {
        self.snapshots
            .get(&month)
            .is_some_and(|set| set.contains(&asn))
    }

    /// First month in which `asn` appears, scanning chronologically.
    pub fn first_seen(&self, asn: Asn) -> Option<Month> {
        self.snapshots
            .iter()
            .find(|(_, set)| set.contains(&asn))
            .map(|(m, _)| *m)
    }

    /// The months with snapshots, in order.
    pub fn months(&self) -> Vec<Month> {
        self.snapshots.keys().copied().collect()
    }

    /// Number of visible ASes in `month` (0 for missing snapshots).
    pub fn as_count(&self, month: Month) -> usize {
        self.snapshots.get(&month).map(BTreeSet::len).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn month_ordering_and_next() {
        assert!(Month::new(2021, 12) < Month::new(2022, 1));
        assert_eq!(Month::new(2021, 12).next(), Month::new(2022, 1));
        assert_eq!(Month::new(2021, 5).next(), Month::new(2021, 6));
        assert_eq!(Month::new(2020, 1).to_string(), "2020-01");
    }

    #[test]
    fn through_is_inclusive() {
        let months: Vec<Month> = Month::new(2021, 11).through(Month::new(2022, 2)).collect();
        assert_eq!(months.len(), 4);
        assert_eq!(months[0], Month::new(2021, 11));
        assert_eq!(months[3], Month::new(2022, 2));
        // Empty when start > end.
        assert_eq!(Month::new(2022, 3).through(Month::new(2022, 2)).count(), 0);
    }

    #[test]
    fn first_seen_finds_earliest_month() {
        let mut h = VisibilityHistory::new();
        for m in Month::new(2016, 1).through(Month::new(2022, 6)) {
            h.record(m, Asn::APPLE);
            if m >= Month::new(2021, 6) {
                h.record(m, Asn::AKAMAI_PR);
            }
        }
        assert_eq!(h.first_seen(Asn::APPLE), Some(Month::new(2016, 1)));
        assert_eq!(h.first_seen(Asn::AKAMAI_PR), Some(Month::new(2021, 6)));
        assert_eq!(h.first_seen(Asn(99999)), None);
    }

    #[test]
    fn visible_in_specific_months() {
        let mut h = VisibilityHistory::new();
        h.record(Month::new(2021, 6), Asn::AKAMAI_PR);
        assert!(h.visible_in(Month::new(2021, 6), Asn::AKAMAI_PR));
        assert!(!h.visible_in(Month::new(2021, 5), Asn::AKAMAI_PR));
        assert!(!h.visible_in(Month::new(2021, 6), Asn::APPLE));
    }

    #[test]
    fn record_many_and_counts() {
        let mut h = VisibilityHistory::new();
        h.record_many(Month::new(2022, 1), [Asn(1), Asn(2), Asn(3)]);
        h.record_many(Month::new(2022, 1), [Asn(3), Asn(4)]);
        assert_eq!(h.as_count(Month::new(2022, 1)), 4);
        assert_eq!(h.as_count(Month::new(2022, 2)), 0);
        assert_eq!(h.months(), vec![Month::new(2022, 1)]);
    }
}
