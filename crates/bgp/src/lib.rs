//! # tectonic-bgp
//!
//! The BGP-shaped substrate the paper's analyses consume:
//!
//! * [`rib`] — a routing information base with longest-prefix match. The
//!   ECS scanner uses it to skip unrouted space (the paper's §7 ethics
//!   optimisation); the egress analysis uses it to aggregate subnets into
//!   routed prefixes (Table 3); the correlation analysis counts which
//!   announced prefixes carry relays (§6, 92.2 %).
//! * [`topology`] — an AS-level graph with peering links, supporting the
//!   observation that AS36183 has a single publicly visible peering (to
//!   Akamai's AS20940).
//! * [`history`] — monthly AS-visibility snapshots (2016–2022), supporting
//!   the finding that AS36183 first appeared in June 2021, coinciding with
//!   the Private Relay launch.
//! * [`aspop`] — per-AS user populations in the style of the APNIC aspop
//!   dataset, the join key for Table 2.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod aspop;
pub mod history;
pub mod rib;
pub mod topology;

pub use aspop::AsPopulation;
pub use history::{Month, VisibilityHistory};
pub use rib::{LookupMemo, Rib, RouteEntry};
pub use topology::AsTopology;
