//! APNIC-style AS user populations.
//!
//! Table 2 of the paper joins the ECS scan's client-AS attribution with the
//! APNIC "Visible ASNs: Customer Populations" dataset to estimate how many
//! *users* each ingress operator serves. We cannot redistribute that
//! dataset, so [`AsPopulation::synthesize`] generates a heavy-tailed
//! population with the same character: a few hundred eyeball ASes hold the
//! bulk of the ~5 B modelled users.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use tectonic_net::{Asn, SimRng};

/// Per-AS estimated user counts.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct AsPopulation {
    users: HashMap<Asn, u64>,
}

impl AsPopulation {
    /// An empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the user estimate for `asn`.
    pub fn set(&mut self, asn: Asn, users: u64) {
        self.users.insert(asn, users);
    }

    /// The user estimate for `asn` (0 when absent, like the live dataset's
    /// treatment of invisible ASes).
    pub fn get(&self, asn: Asn) -> u64 {
        self.users.get(&asn).copied().unwrap_or(0)
    }

    /// Number of ASes with estimates.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// `true` when no AS has an estimate.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Total users across a set of ASes.
    pub fn total_for<'a>(&self, asns: impl IntoIterator<Item = &'a Asn>) -> u64 {
        asns.into_iter().map(|a| self.get(*a)).sum()
    }

    /// Total users across the whole dataset.
    pub fn total(&self) -> u64 {
        self.users.values().sum()
    }

    /// Generates a heavy-tailed population over `asns`.
    ///
    /// Draws Pareto(min=2 k, α≈1.05) per AS, then rescales so the total hits
    /// `target_total` users. The APNIC dataset's top-heavy shape (a handful
    /// of >100 M-user ASes, a long tail of tiny ones) emerges from the tail
    /// index.
    pub fn synthesize(rng: &mut SimRng, asns: &[Asn], target_total: u64) -> AsPopulation {
        if asns.is_empty() || target_total == 0 {
            return AsPopulation::new();
        }
        let raw: Vec<f64> = asns.iter().map(|_| rng.pareto(2_000.0, 1.05)).collect();
        let raw_total: f64 = raw.iter().sum();
        let scale = target_total as f64 / raw_total;
        let mut pop = AsPopulation::new();
        for (asn, r) in asns.iter().zip(raw) {
            pop.set(*asn, (r * scale).round().max(1.0) as u64);
        }
        pop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_total() {
        let mut p = AsPopulation::new();
        p.set(Asn(1), 100);
        p.set(Asn(2), 250);
        assert_eq!(p.get(Asn(1)), 100);
        assert_eq!(p.get(Asn(3)), 0);
        assert_eq!(p.total(), 350);
        assert_eq!(p.total_for([Asn(1), Asn(3)].iter()), 100);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn synthesize_hits_target_roughly() {
        let mut rng = SimRng::new(42);
        let asns: Vec<Asn> = (1..=5000).map(Asn).collect();
        let target = 3_000_000_000u64;
        let pop = AsPopulation::synthesize(&mut rng, &asns, target);
        assert_eq!(pop.len(), 5000);
        let total = pop.total();
        let ratio = total as f64 / target as f64;
        assert!((0.99..1.01).contains(&ratio), "total {total}");
    }

    #[test]
    fn synthesize_is_heavy_tailed() {
        let mut rng = SimRng::new(7);
        let asns: Vec<Asn> = (1..=10_000).map(Asn).collect();
        let pop = AsPopulation::synthesize(&mut rng, &asns, 5_000_000_000);
        let mut counts: Vec<u64> = asns.iter().map(|a| pop.get(*a)).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top1pct: u64 = counts.iter().take(100).sum();
        let total: u64 = counts.iter().sum();
        // Top 1 % of ASes should hold a dominant share of users.
        assert!(
            top1pct as f64 / total as f64 > 0.3,
            "tail too light: top-1% share {:.3}",
            top1pct as f64 / total as f64
        );
        // Everyone got at least one user.
        assert!(counts.iter().all(|c| *c >= 1));
    }

    #[test]
    fn synthesize_edge_cases() {
        let mut rng = SimRng::new(1);
        assert!(AsPopulation::synthesize(&mut rng, &[], 100).is_empty());
        assert!(AsPopulation::synthesize(&mut rng, &[Asn(1)], 0).is_empty());
    }

    #[test]
    fn synthesize_is_deterministic() {
        let asns: Vec<Asn> = (1..=100).map(Asn).collect();
        let a = AsPopulation::synthesize(&mut SimRng::new(5), &asns, 1_000_000);
        let b = AsPopulation::synthesize(&mut SimRng::new(5), &asns, 1_000_000);
        for asn in &asns {
            assert_eq!(a.get(*asn), b.get(*asn));
        }
    }
}
