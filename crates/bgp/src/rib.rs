//! The routing information base.

use std::collections::HashMap;
use std::net::IpAddr;

use serde::{Deserialize, Serialize};
use tectonic_net::{Asn, IpNet, PrefixTrie};

/// One announced route.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RouteEntry {
    /// Origin AS of the announcement.
    pub origin: Asn,
}

/// A longest-prefix-match routing table over announced prefixes.
///
/// The reproduction uses a single global RIB (the "BGP collector view"): the
/// relay deployment announces its prefixes here, the client-side Internet
/// model announces eyeball prefixes, and the scanner and analyses query it.
#[derive(Debug, Default)]
pub struct Rib {
    routes: PrefixTrie<RouteEntry>,
    /// Per-AS announced prefix lists, kept alongside the trie for the
    /// prefix-census analyses (Table 3, §6).
    by_origin: HashMap<Asn, Vec<IpNet>>,
}

impl Rib {
    /// An empty RIB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Announces `prefix` with origin `asn`. Re-announcing an existing
    /// prefix replaces the origin (and returns the previous one).
    pub fn announce(&mut self, prefix: impl Into<IpNet>, origin: Asn) -> Option<Asn> {
        let prefix = prefix.into();
        let prev = self.routes.insert(prefix, RouteEntry { origin });
        if let Some(prev) = &prev {
            if prev.origin != origin {
                if let Some(list) = self.by_origin.get_mut(&prev.origin) {
                    list.retain(|p| p != &prefix);
                }
                self.by_origin.entry(origin).or_default().push(prefix);
            }
        } else {
            self.by_origin.entry(origin).or_default().push(prefix);
        }
        prev.map(|e| e.origin)
    }

    /// Withdraws `prefix`, returning its origin if it was announced.
    pub fn withdraw(&mut self, prefix: &IpNet) -> Option<Asn> {
        let prev = self.routes.remove(prefix);
        if let Some(entry) = &prev {
            if let Some(list) = self.by_origin.get_mut(&entry.origin) {
                list.retain(|p| p != prefix);
            }
        }
        prev.map(|e| e.origin)
    }

    /// Number of announced prefixes (both families).
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// `true` when nothing is announced.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Longest-prefix match for an address.
    pub fn lookup(&self, addr: IpAddr) -> Option<(IpNet, Asn)> {
        self.routes
            .longest_match(addr)
            .map(|(net, entry)| (net, entry.origin))
    }

    /// The most specific announced prefix fully covering `net`.
    pub fn lookup_net(&self, net: &IpNet) -> Option<(IpNet, Asn)> {
        self.routes
            .longest_match_net(net)
            .map(|(covering, entry)| (covering, entry.origin))
    }

    /// Whether `addr` falls in any announced prefix — the scanner's
    /// "is this space routed at all" check.
    pub fn is_routed(&self, addr: IpAddr) -> bool {
        self.routes.longest_match(addr).is_some()
    }

    /// Whether `net` is fully covered by an announcement.
    pub fn is_routed_net(&self, net: &IpNet) -> bool {
        self.routes.longest_match_net(net).is_some()
    }

    /// The origin AS of the exact prefix, if announced.
    pub fn origin_of(&self, prefix: &IpNet) -> Option<Asn> {
        self.routes.exact(prefix).map(|e| e.origin)
    }

    /// All prefixes announced by `asn` (unspecified order).
    pub fn prefixes_of(&self, asn: Asn) -> &[IpNet] {
        self.by_origin.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates every `(prefix, origin)` announcement.
    pub fn iter(&self) -> impl Iterator<Item = (IpNet, Asn)> + '_ {
        self.routes.iter().map(|(net, entry)| (net, entry.origin))
    }

    /// The set of origin ASes with at least one announcement.
    pub fn origins(&self) -> Vec<Asn> {
        let mut asns: Vec<Asn> = self
            .by_origin
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(a, _)| *a)
            .collect();
        asns.sort();
        asns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(s: &str) -> IpNet {
        s.parse().unwrap()
    }

    #[test]
    fn announce_and_lookup() {
        let mut rib = Rib::new();
        rib.announce(net("17.0.0.0/8"), Asn::APPLE);
        rib.announce(net("23.32.0.0/11"), Asn::AKAMAI_EG);
        let (p, asn) = rib.lookup("17.5.6.7".parse().unwrap()).unwrap();
        assert_eq!(p, net("17.0.0.0/8"));
        assert_eq!(asn, Asn::APPLE);
        assert!(rib.lookup("8.8.8.8".parse().unwrap()).is_none());
        assert!(rib.is_routed("23.33.0.1".parse().unwrap()));
        assert!(!rib.is_routed("198.51.100.1".parse().unwrap()));
    }

    #[test]
    fn more_specific_wins() {
        let mut rib = Rib::new();
        rib.announce(net("23.32.0.0/11"), Asn::AKAMAI_EG);
        rib.announce(net("23.32.5.0/24"), Asn::AKAMAI_PR);
        let (_, asn) = rib.lookup("23.32.5.9".parse().unwrap()).unwrap();
        assert_eq!(asn, Asn::AKAMAI_PR);
        let (_, asn) = rib.lookup("23.33.0.1".parse().unwrap()).unwrap();
        assert_eq!(asn, Asn::AKAMAI_EG);
    }

    #[test]
    fn reannounce_moves_origin() {
        let mut rib = Rib::new();
        rib.announce(net("203.0.113.0/24"), Asn(64512));
        assert_eq!(rib.announce(net("203.0.113.0/24"), Asn(64513)), Some(Asn(64512)));
        assert_eq!(rib.origin_of(&net("203.0.113.0/24")), Some(Asn(64513)));
        assert!(rib.prefixes_of(Asn(64512)).is_empty());
        assert_eq!(rib.prefixes_of(Asn(64513)), &[net("203.0.113.0/24")]);
        assert_eq!(rib.len(), 1);
    }

    #[test]
    fn reannounce_same_origin_is_idempotent() {
        let mut rib = Rib::new();
        rib.announce(net("203.0.113.0/24"), Asn(64512));
        rib.announce(net("203.0.113.0/24"), Asn(64512));
        assert_eq!(rib.prefixes_of(Asn(64512)).len(), 1);
    }

    #[test]
    fn withdraw_removes_route() {
        let mut rib = Rib::new();
        rib.announce(net("17.0.0.0/8"), Asn::APPLE);
        assert_eq!(rib.withdraw(&net("17.0.0.0/8")), Some(Asn::APPLE));
        assert_eq!(rib.withdraw(&net("17.0.0.0/8")), None);
        assert!(rib.is_empty());
        assert!(rib.prefixes_of(Asn::APPLE).is_empty());
        assert!(rib.lookup("17.1.1.1".parse().unwrap()).is_none());
    }

    #[test]
    fn lookup_net_requires_full_cover() {
        let mut rib = Rib::new();
        rib.announce(net("100.64.0.0/10"), Asn(64512));
        assert!(rib.is_routed_net(&net("100.64.3.0/24")));
        assert!(!rib.is_routed_net(&net("100.0.0.0/8")));
        let (covering, asn) = rib.lookup_net(&net("100.64.3.0/24")).unwrap();
        assert_eq!(covering, net("100.64.0.0/10"));
        assert_eq!(asn, Asn(64512));
    }

    #[test]
    fn families_are_separate() {
        let mut rib = Rib::new();
        rib.announce(net("2620:149::/32"), Asn::APPLE);
        assert!(rib.is_routed("2620:149::1".parse().unwrap()));
        assert!(!rib.is_routed("38.32.1.1".parse().unwrap()));
    }

    #[test]
    fn origins_and_iter() {
        let mut rib = Rib::new();
        rib.announce(net("17.0.0.0/8"), Asn::APPLE);
        rib.announce(net("23.32.0.0/11"), Asn::AKAMAI_EG);
        rib.announce(net("2620:149::/32"), Asn::APPLE);
        assert_eq!(rib.origins(), vec![Asn::APPLE, Asn::AKAMAI_EG]);
        assert_eq!(rib.iter().count(), 3);
        assert_eq!(rib.prefixes_of(Asn::APPLE).len(), 2);
    }
}
