//! The routing information base.

use std::collections::HashMap;
use std::net::IpAddr;

use serde::{Deserialize, Serialize};
use tectonic_net::{Asn, BatchScratch, DeltaOverlay, FrozenLpm, IpNet, PrefixTrie};

/// One announced route.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RouteEntry {
    /// Origin AS of the announcement.
    pub origin: Asn,
}

/// A longest-prefix-match routing table over announced prefixes.
///
/// The reproduction uses a single global RIB (the "BGP collector view"): the
/// relay deployment announces its prefixes here, the client-side Internet
/// model announces eyeball prefixes, and the scanner and analyses query it.
///
/// The trie is the build-side structure; once the table is loaded, callers
/// [`freeze`](Rib::freeze) it and every read API runs on the compiled
/// [`FrozenLpm`] snapshot instead of chasing trie pointers. Mutations
/// ([`announce`](Rib::announce) / [`withdraw`](Rib::withdraw)) no longer
/// throw the snapshot away: they land in a bounded [`DeltaOverlay`]
/// consulted after the frozen walk (result-identical to a rebuild), and
/// once the overlay crosses its compaction threshold the dirty subtrees
/// are re-frozen in place ([`FrozenLpm::refreeze_subtree`]) — O(affected
/// subtree) per update burst instead of O(table). Every visible mutation,
/// including a compaction, bumps the generation counter that fences
/// [`LookupMemo`] reuse.
#[derive(Debug)]
pub struct Rib {
    routes: PrefixTrie<RouteEntry>,
    /// Compiled snapshot of `routes` as of the last freeze/compaction;
    /// `None` until the first [`freeze`](Rib::freeze) (or when ablated
    /// off). Stays live across mutations — churn goes through `delta`.
    frozen: Option<FrozenLpm<RouteEntry>>,
    /// Pending announce/withdraw patches against `frozen`; empty whenever
    /// `frozen` is `None` or freshly (re)built.
    delta: DeltaOverlay<RouteEntry>,
    /// Ablation switch mirroring the scanner's `use_fast_path`: when off,
    /// [`freeze`](Rib::freeze) is a no-op and every lookup walks the trie.
    frozen_enabled: bool,
    /// Bumped on every visible mutation — announce, withdraw, and overlay
    /// compaction (which relocates arena segments under batch scratch) —
    /// so memoised lookups from an older generation are discarded.
    generation: u64,
    /// Per-AS announced prefix lists, kept alongside the trie for the
    /// prefix-census analyses (Table 3, §6). Entries are removed when their
    /// last prefix is withdrawn, so every present key has prefixes.
    by_origin: HashMap<Asn, Vec<IpNet>>,
    /// Sorted cache of `by_origin`'s keys, maintained incrementally so
    /// [`origins`](Rib::origins) is a free borrow instead of a collect+sort.
    origins: Vec<Asn>,
}

impl Default for Rib {
    fn default() -> Self {
        Rib {
            routes: PrefixTrie::new(),
            frozen: None,
            delta: DeltaOverlay::new(),
            frozen_enabled: true,
            generation: 0,
            by_origin: HashMap::new(),
            origins: Vec::new(),
        }
    }
}

impl Rib {
    /// An empty RIB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compiles the current table into a [`FrozenLpm`] snapshot so
    /// steady-state lookups stop walking the pointer trie. Call after the
    /// load phase; later mutations are absorbed by the delta overlay, so
    /// a re-freeze is an optimisation (dropping accumulated patches and
    /// arena garbage), never a correctness requirement. A no-op when the
    /// frozen engine is ablated off.
    pub fn freeze(&mut self) {
        if self.frozen_enabled {
            self.frozen = Some(self.routes.freeze());
            self.delta.clear();
            self.generation = self.generation.wrapping_add(1);
        }
    }

    /// Ablation switch for the compiled engine (mirrors the scanner's
    /// `use_fast_path`). Disabling drops the snapshot (and any pending
    /// overlay patches) and pins all lookups to the pointer trie;
    /// re-enabling freezes immediately.
    pub fn set_frozen_enabled(&mut self, enabled: bool) {
        self.frozen_enabled = enabled;
        if enabled {
            self.freeze();
        } else {
            self.frozen = None;
            self.delta.clear();
            self.generation = self.generation.wrapping_add(1);
        }
    }

    /// Whether lookups currently run on a compiled snapshot (possibly with
    /// a pending delta overlay — still the fast path).
    pub fn is_frozen(&self) -> bool {
        self.frozen.is_some()
    }

    /// Number of overlay patches pending against the frozen snapshot —
    /// zero in steady state, bounded by the compaction threshold under
    /// churn. Diagnostics/test hook.
    pub fn pending_patches(&self) -> usize {
        self.delta.len()
    }

    /// A cheap copy-on-write epoch snapshot of the compiled table
    /// ([`FrozenLpm::snapshot`]), or `None` when the frozen engine is off.
    /// Pending overlay patches are compacted in first so the snapshot
    /// captures exactly the current routes; k epoch handles share arenas
    /// until the live table diverges.
    pub fn snapshot(&mut self) -> Option<FrozenLpm<RouteEntry>> {
        if !self.delta.is_empty() {
            if let Some(frozen) = self.frozen.as_mut() {
                frozen.refreeze_subtree(&self.delta);
                self.delta.clear();
                self.generation = self.generation.wrapping_add(1);
            }
        }
        self.frozen.as_ref().map(FrozenLpm::snapshot)
    }

    /// Records a visible mutation: bumps the [`LookupMemo`] generation
    /// fence and, when a snapshot is live, folds the overlay into it once
    /// the patch budget is exhausted (O(affected subtree)), falling back to
    /// a full rebuild only when compactions have left more arena garbage
    /// than live entries.
    fn after_mutation(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        let rebuild = match self.frozen.as_mut() {
            Some(frozen) if self.delta.should_compact(frozen.len()) => {
                frozen.refreeze_subtree(&self.delta);
                self.delta.clear();
                frozen.garbage() > frozen.len()
            }
            _ => false,
        };
        if rebuild {
            self.frozen = Some(self.routes.freeze());
        }
    }

    /// Announces `prefix` with origin `asn`. Re-announcing an existing
    /// prefix replaces the origin (and returns the previous one).
    pub fn announce(&mut self, prefix: impl Into<IpNet>, origin: Asn) -> Option<Asn> {
        let prefix = prefix.into();
        if self.frozen.is_some() {
            self.delta.announce(prefix, RouteEntry { origin });
        }
        let prev = self.routes.insert(prefix, RouteEntry { origin });
        if let Some(prev) = &prev {
            if prev.origin != origin {
                self.unindex_prefix(prev.origin, &prefix);
                self.index_prefix(origin, prefix);
            }
        } else {
            self.index_prefix(origin, prefix);
        }
        self.after_mutation();
        prev.map(|e| e.origin)
    }

    /// Withdraws `prefix`, returning its origin if it was announced.
    pub fn withdraw(&mut self, prefix: &IpNet) -> Option<Asn> {
        if let Some(frozen) = &self.frozen {
            self.delta.withdraw(prefix, frozen);
        }
        let prev = self.routes.remove(prefix);
        if let Some(entry) = &prev {
            self.unindex_prefix(entry.origin, prefix);
        }
        self.after_mutation();
        prev.map(|e| e.origin)
    }

    fn index_prefix(&mut self, origin: Asn, prefix: IpNet) {
        let list = self.by_origin.entry(origin).or_default();
        if list.is_empty() {
            if let Err(at) = self.origins.binary_search(&origin) {
                self.origins.insert(at, origin);
            }
        }
        list.push(prefix);
    }

    fn unindex_prefix(&mut self, origin: Asn, prefix: &IpNet) {
        if let Some(list) = self.by_origin.get_mut(&origin) {
            list.retain(|p| p != prefix);
            if list.is_empty() {
                self.by_origin.remove(&origin);
                if let Ok(at) = self.origins.binary_search(&origin) {
                    self.origins.remove(at);
                }
            }
        }
    }

    /// Number of announced prefixes (both families).
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// `true` when nothing is announced.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Longest-prefix match for an address.
    pub fn lookup(&self, addr: IpAddr) -> Option<(IpNet, Asn)> {
        match &self.frozen {
            Some(lpm) => self
                .delta
                .lookup(lpm, addr)
                .map(|(net, entry)| (net, entry.origin)),
            None => self
                .routes
                .longest_match(addr)
                .map(|(net, entry)| (net, entry.origin)),
        }
    }

    /// Longest-prefix match for a burst of addresses; `out` is cleared and
    /// receives exactly `addrs.iter().map(|a| lookup(*a))`. On a frozen RIB
    /// this is one [`FrozenLpm::lookup_batch`] call (interleaved walks), so
    /// the scanner's reply-attribution loop pays one dispatch per burst.
    pub fn lookup_batch(&self, addrs: &[IpAddr], out: &mut Vec<Option<(IpNet, Asn)>>) {
        let mut scratch = BatchScratch::new();
        self.lookup_batch_in(&mut scratch, addrs, out);
    }

    /// [`lookup_batch`](Rib::lookup_batch) against caller-owned walk state:
    /// a reply-attribution loop that reuses one [`BatchScratch`] across
    /// bursts keeps the whole frozen-path lookup allocation-free.
    pub fn lookup_batch_in(
        &self,
        scratch: &mut BatchScratch,
        addrs: &[IpAddr],
        out: &mut Vec<Option<(IpNet, Asn)>>,
    ) {
        match &self.frozen {
            Some(lpm) => {
                self.delta
                    .lookup_batch_map_in(lpm, scratch, addrs, out, |m| {
                        m.map(|(net, entry)| (net, entry.origin))
                    });
            }
            None => {
                out.clear();
                out.extend(addrs.iter().map(|a| self.lookup(*a)));
            }
        }
    }

    /// The most specific announced prefix fully covering `net`.
    pub fn lookup_net(&self, net: &IpNet) -> Option<(IpNet, Asn)> {
        match &self.frozen {
            Some(lpm) => self
                .delta
                .longest_match_net(lpm, net)
                .map(|(covering, entry)| (covering, entry.origin)),
            None => self
                .routes
                .longest_match_net(net)
                .map(|(covering, entry)| (covering, entry.origin)),
        }
    }

    /// Whether `addr` falls in any announced prefix — the scanner's
    /// "is this space routed at all" check.
    pub fn is_routed(&self, addr: IpAddr) -> bool {
        self.lookup(addr).is_some()
    }

    /// Whether `net` is fully covered by an announcement.
    pub fn is_routed_net(&self, net: &IpNet) -> bool {
        self.lookup_net(net).is_some()
    }

    /// The origin AS of the exact prefix, if announced.
    pub fn origin_of(&self, prefix: &IpNet) -> Option<Asn> {
        match &self.frozen {
            Some(lpm) => self.delta.exact(lpm, prefix).map(|e| e.origin),
            None => self.routes.exact(prefix).map(|e| e.origin),
        }
    }

    /// All prefixes announced by `asn` (unspecified order).
    pub fn prefixes_of(&self, asn: Asn) -> &[IpNet] {
        self.by_origin.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates every `(prefix, origin)` announcement.
    pub fn iter(&self) -> impl Iterator<Item = (IpNet, Asn)> + '_ {
        self.routes.iter().map(|(net, entry)| (net, entry.origin))
    }

    /// The set of origin ASes with at least one announcement, ascending.
    ///
    /// Maintained incrementally on announce/withdraw, so this is O(1).
    pub fn origins(&self) -> &[Asn] {
        &self.origins
    }

    /// Longest-prefix match that remembers the previous answer.
    ///
    /// The ECS scanner looks up millions of addresses in ascending order, so
    /// consecutive queries overwhelmingly land in the same announced prefix.
    /// When the previous match was a *leaf* (no more-specific prefix below
    /// it — see [`PrefixTrie::longest_match_leaf`]) and still contains
    /// `addr`, the memoised answer is provably identical to a full walk and
    /// is returned without touching the table.
    ///
    /// The memo carries the RIB generation it was filled at; any announce or
    /// withdraw bumps the generation, so a stale memo is discarded here no
    /// matter how the caller interleaved lookups and mutations.
    pub fn lookup_memoized(&self, addr: IpAddr, memo: &mut LookupMemo) -> Option<(IpNet, Asn)> {
        if memo.generation == self.generation {
            if let Some((net, asn, true)) = memo.last {
                if net.contains(addr) {
                    return Some((net, asn));
                }
            }
        } else {
            memo.last = None;
        }
        memo.generation = self.generation;
        let matched = match &self.frozen {
            Some(lpm) => self
                .delta
                .longest_match_leaf(lpm, addr)
                .map(|(net, entry, leaf)| (net, entry.origin, leaf)),
            None => self
                .routes
                .longest_match_leaf(addr)
                .map(|(net, entry, leaf)| (net, entry.origin, leaf)),
        };
        match matched {
            Some((net, origin, leaf)) => {
                memo.last = Some((net, origin, leaf));
                Some((net, origin))
            }
            None => {
                memo.last = None;
                None
            }
        }
    }
}

/// Scratch state for [`Rib::lookup_memoized`]: the last match, whether it
/// was a leaf (safe to reuse for any address it contains), and the RIB
/// generation it was taken from (reuse across mutations is rejected).
#[derive(Debug, Default, Clone)]
pub struct LookupMemo {
    last: Option<(IpNet, Asn, bool)>,
    generation: u64,
}

impl LookupMemo {
    /// A fresh memo (first lookup takes the slow path).
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(s: &str) -> IpNet {
        s.parse().unwrap()
    }

    #[test]
    fn announce_and_lookup() {
        let mut rib = Rib::new();
        rib.announce(net("17.0.0.0/8"), Asn::APPLE);
        rib.announce(net("23.32.0.0/11"), Asn::AKAMAI_EG);
        let (p, asn) = rib.lookup("17.5.6.7".parse().unwrap()).unwrap();
        assert_eq!(p, net("17.0.0.0/8"));
        assert_eq!(asn, Asn::APPLE);
        assert!(rib.lookup("8.8.8.8".parse().unwrap()).is_none());
        assert!(rib.is_routed("23.33.0.1".parse().unwrap()));
        assert!(!rib.is_routed("198.51.100.1".parse().unwrap()));
    }

    #[test]
    fn more_specific_wins() {
        let mut rib = Rib::new();
        rib.announce(net("23.32.0.0/11"), Asn::AKAMAI_EG);
        rib.announce(net("23.32.5.0/24"), Asn::AKAMAI_PR);
        let (_, asn) = rib.lookup("23.32.5.9".parse().unwrap()).unwrap();
        assert_eq!(asn, Asn::AKAMAI_PR);
        let (_, asn) = rib.lookup("23.33.0.1".parse().unwrap()).unwrap();
        assert_eq!(asn, Asn::AKAMAI_EG);
    }

    #[test]
    fn reannounce_moves_origin() {
        let mut rib = Rib::new();
        rib.announce(net("203.0.113.0/24"), Asn(64512));
        assert_eq!(
            rib.announce(net("203.0.113.0/24"), Asn(64513)),
            Some(Asn(64512))
        );
        assert_eq!(rib.origin_of(&net("203.0.113.0/24")), Some(Asn(64513)));
        assert!(rib.prefixes_of(Asn(64512)).is_empty());
        assert_eq!(rib.prefixes_of(Asn(64513)), &[net("203.0.113.0/24")]);
        assert_eq!(rib.len(), 1);
    }

    #[test]
    fn reannounce_same_origin_is_idempotent() {
        let mut rib = Rib::new();
        rib.announce(net("203.0.113.0/24"), Asn(64512));
        rib.announce(net("203.0.113.0/24"), Asn(64512));
        assert_eq!(rib.prefixes_of(Asn(64512)).len(), 1);
    }

    #[test]
    fn withdraw_removes_route() {
        let mut rib = Rib::new();
        rib.announce(net("17.0.0.0/8"), Asn::APPLE);
        assert_eq!(rib.withdraw(&net("17.0.0.0/8")), Some(Asn::APPLE));
        assert_eq!(rib.withdraw(&net("17.0.0.0/8")), None);
        assert!(rib.is_empty());
        assert!(rib.prefixes_of(Asn::APPLE).is_empty());
        assert!(rib.lookup("17.1.1.1".parse().unwrap()).is_none());
    }

    #[test]
    fn lookup_net_requires_full_cover() {
        let mut rib = Rib::new();
        rib.announce(net("100.64.0.0/10"), Asn(64512));
        assert!(rib.is_routed_net(&net("100.64.3.0/24")));
        assert!(!rib.is_routed_net(&net("100.0.0.0/8")));
        let (covering, asn) = rib.lookup_net(&net("100.64.3.0/24")).unwrap();
        assert_eq!(covering, net("100.64.0.0/10"));
        assert_eq!(asn, Asn(64512));
    }

    #[test]
    fn families_are_separate() {
        let mut rib = Rib::new();
        rib.announce(net("2620:149::/32"), Asn::APPLE);
        assert!(rib.is_routed("2620:149::1".parse().unwrap()));
        assert!(!rib.is_routed("38.32.1.1".parse().unwrap()));
    }

    #[test]
    fn origins_and_iter() {
        let mut rib = Rib::new();
        rib.announce(net("17.0.0.0/8"), Asn::APPLE);
        rib.announce(net("23.32.0.0/11"), Asn::AKAMAI_EG);
        rib.announce(net("2620:149::/32"), Asn::APPLE);
        assert_eq!(rib.origins(), vec![Asn::APPLE, Asn::AKAMAI_EG]);
        assert_eq!(rib.iter().count(), 3);
        assert_eq!(rib.prefixes_of(Asn::APPLE).len(), 2);
    }

    #[test]
    fn origins_cache_tracks_withdraw_and_reannounce() {
        let mut rib = Rib::new();
        rib.announce(net("17.0.0.0/8"), Asn::APPLE);
        rib.announce(net("2620:149::/32"), Asn::APPLE);
        rib.announce(net("23.32.0.0/11"), Asn::AKAMAI_EG);
        // Withdrawing one of two Apple prefixes keeps Apple listed.
        rib.withdraw(&net("2620:149::/32"));
        assert_eq!(rib.origins(), vec![Asn::APPLE, Asn::AKAMAI_EG]);
        // Withdrawing the last one drops Apple entirely.
        rib.withdraw(&net("17.0.0.0/8"));
        assert_eq!(rib.origins(), vec![Asn::AKAMAI_EG]);
        // Re-announcing under a different origin moves the prefix between
        // origin sets and drops the now-empty old origin.
        rib.announce(net("23.32.0.0/11"), Asn::APPLE);
        assert_eq!(rib.origins(), vec![Asn::APPLE]);
        rib.withdraw(&net("23.32.0.0/11"));
        assert!(rib.origins().is_empty());
        assert!(rib.is_empty());
    }

    #[test]
    fn frozen_lookups_match_trie_lookups() {
        let mut rib = Rib::new();
        rib.announce(net("17.0.0.0/8"), Asn::APPLE);
        rib.announce(net("17.5.0.0/16"), Asn(64512));
        rib.announce(net("23.32.0.0/11"), Asn::AKAMAI_EG);
        rib.announce(net("2620:149::/32"), Asn::APPLE);
        assert!(!rib.is_frozen());
        rib.freeze();
        assert!(rib.is_frozen());
        let mut cold = Rib::new();
        cold.set_frozen_enabled(false);
        for (p, asn) in rib.iter().collect::<Vec<_>>() {
            cold.announce(p, asn);
        }
        for a in [
            "17.5.1.2",
            "17.9.9.9",
            "23.33.0.1",
            "8.8.8.8",
            "2620:149::7",
        ] {
            let a: IpAddr = a.parse().unwrap();
            assert_eq!(rib.lookup(a), cold.lookup(a), "{a}");
            assert_eq!(rib.is_routed(a), cold.is_routed(a));
        }
        for n in ["17.5.3.0/24", "17.0.0.0/8", "16.0.0.0/8", "2620:149:a::/48"] {
            let n = net(n);
            assert_eq!(rib.lookup_net(&n), cold.lookup_net(&n), "{n}");
            assert_eq!(rib.origin_of(&n), cold.origin_of(&n));
        }
    }

    #[test]
    fn lookup_batch_matches_single_lookups_frozen_and_not() {
        let mut rib = Rib::new();
        rib.announce(net("17.0.0.0/8"), Asn::APPLE);
        rib.announce(net("23.32.0.0/11"), Asn::AKAMAI_EG);
        let addrs: Vec<IpAddr> = ["17.1.1.1", "8.8.8.8", "23.33.0.1", "17.2.3.4", "9.9.9.9"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let want: Vec<_> = addrs.iter().map(|a| rib.lookup(*a)).collect();
        let mut out = Vec::new();
        rib.lookup_batch(&addrs, &mut out);
        assert_eq!(out, want, "trie path");
        rib.freeze();
        rib.lookup_batch(&addrs, &mut out);
        assert_eq!(out, want, "frozen path");
    }

    #[test]
    fn mutations_patch_the_snapshot_in_place() {
        let mut rib = Rib::new();
        rib.announce(net("17.0.0.0/8"), Asn::APPLE);
        rib.freeze();
        assert!(rib.is_frozen());
        // Announce stays on the fast path: the snapshot survives and the
        // new route is visible through the overlay.
        rib.announce(net("17.5.0.0/16"), Asn(64512));
        assert!(rib.is_frozen());
        assert_eq!(rib.pending_patches(), 1);
        let (p, _) = rib.lookup("17.5.1.1".parse().unwrap()).unwrap();
        assert_eq!(p, net("17.5.0.0/16"));
        // Withdraw tombstones it and the lookup falls back to the /8.
        rib.withdraw(&net("17.5.0.0/16"));
        assert!(rib.is_frozen());
        let (p, _) = rib.lookup("17.5.1.1".parse().unwrap()).unwrap();
        assert_eq!(p, net("17.0.0.0/8"));
        // Withdrawing the base route itself leaves nothing.
        rib.withdraw(&net("17.0.0.0/8"));
        assert!(rib.is_frozen());
        assert!(rib.lookup("17.5.1.1".parse().unwrap()).is_none());
        // An explicit re-freeze flushes the pending patches.
        rib.freeze();
        assert_eq!(rib.pending_patches(), 0);
        assert!(rib.lookup("17.5.1.1".parse().unwrap()).is_none());
    }

    #[test]
    fn overlay_lookups_match_trie_under_churn() {
        // Interleave announce/withdraw against a frozen RIB and check every
        // read API against a trie-only control after each step.
        let mut rib = Rib::new();
        let mut cold = Rib::new();
        cold.set_frozen_enabled(false);
        let seed = [
            ("17.0.0.0/8", Asn::APPLE),
            ("17.5.0.0/16", Asn(64512)),
            ("23.32.0.0/11", Asn::AKAMAI_EG),
            ("2620:149::/32", Asn::APPLE),
        ];
        for (p, a) in seed {
            rib.announce(net(p), a);
            cold.announce(net(p), a);
        }
        rib.freeze();
        let steps: Vec<(bool, &str, Asn)> = vec![
            (true, "17.5.3.0/24", Asn(64513)),
            (false, "17.5.0.0/16", Asn(0)),
            (true, "17.5.0.0/16", Asn(64514)),
            (false, "23.32.0.0/11", Asn(0)),
            (true, "198.51.100.0/24", Asn(64515)),
            (false, "198.51.100.0/24", Asn(0)),
        ];
        let probes = [
            "17.5.3.9",
            "17.5.1.1",
            "17.9.9.9",
            "23.33.0.1",
            "8.8.8.8",
            "2620:149::1",
            "198.51.100.7",
        ];
        for (is_announce, p, a) in steps {
            if is_announce {
                rib.announce(net(p), a);
                cold.announce(net(p), a);
            } else {
                rib.withdraw(&net(p));
                cold.withdraw(&net(p));
            }
            assert!(rib.is_frozen());
            for s in probes {
                let addr: IpAddr = s.parse().unwrap();
                assert_eq!(rib.lookup(addr), cold.lookup(addr), "{s} after {p}");
            }
            let mut got = Vec::new();
            let mut want = Vec::new();
            let addrs: Vec<IpAddr> = probes.iter().map(|s| s.parse().unwrap()).collect();
            rib.lookup_batch(&addrs, &mut got);
            cold.lookup_batch(&addrs, &mut want);
            assert_eq!(got, want, "batch after {p}");
            for n in ["17.5.3.0/24", "17.5.0.0/16", "23.32.0.0/11", "16.0.0.0/8"] {
                let n = net(n);
                assert_eq!(rib.lookup_net(&n), cold.lookup_net(&n), "{n} after {p}");
                assert_eq!(rib.origin_of(&n), cold.origin_of(&n), "{n} after {p}");
            }
        }
    }

    #[test]
    fn memoized_lookup_sees_overlay_only_update() {
        // Regression: the memo generation must fence overlay patches that
        // never drop the snapshot (the old tests only covered the full
        // invalidation path).
        let mut rib = Rib::new();
        rib.announce(net("17.0.0.0/8"), Asn::APPLE);
        rib.freeze();
        let mut memo = LookupMemo::new();
        let addr: IpAddr = "17.5.1.1".parse().unwrap();
        // Prime the memo with the frozen /8, a leaf.
        assert_eq!(
            rib.lookup_memoized(addr, &mut memo),
            Some((net("17.0.0.0/8"), Asn::APPLE))
        );
        // Overlay-only announce: snapshot stays, memo must not.
        rib.announce(net("17.5.0.0/16"), Asn(64512));
        assert!(rib.is_frozen());
        assert_eq!(
            rib.lookup_memoized(addr, &mut memo),
            Some((net("17.5.0.0/16"), Asn(64512)))
        );
        // Overlay-only withdraw of the memoised /16 likewise.
        rib.withdraw(&net("17.5.0.0/16"));
        assert_eq!(
            rib.lookup_memoized(addr, &mut memo),
            Some((net("17.0.0.0/8"), Asn::APPLE))
        );
    }

    #[test]
    fn memoized_lookup_survives_subtree_compaction() {
        // Push enough churn through a frozen RIB to trigger overlay
        // compaction (MIN_COMPACT patches vs a small base) and verify the
        // memoised path answers exactly like plain lookups throughout.
        let mut rib = Rib::new();
        rib.announce(net("10.0.0.0/8"), Asn::APPLE);
        rib.freeze();
        let mut memo = LookupMemo::new();
        for i in 0..200u32 {
            let third = (i % 250) as u8;
            let p: IpNet = format!("10.77.{third}.0/24").parse().unwrap();
            if i % 3 == 2 {
                rib.withdraw(&p);
            } else {
                rib.announce(p, Asn(64512 + (i % 7)));
            }
            for s in ["10.77.0.9", "10.77.1.9", "10.9.9.9"] {
                let addr: IpAddr = s.parse().unwrap();
                assert_eq!(
                    rib.lookup_memoized(addr, &mut memo),
                    rib.lookup(addr),
                    "{s}"
                );
            }
        }
        assert!(rib.is_frozen());
        // Compaction must have fired at least once along the way: the
        // overlay can never hold all 200 mutations.
        assert!(rib.pending_patches() < 200);
    }

    #[test]
    fn epoch_snapshots_diff_after_base_mutates() {
        let mut rib = Rib::new();
        rib.announce(net("17.0.0.0/8"), Asn::APPLE);
        rib.announce(net("17.5.0.0/16"), Asn(64512));
        rib.freeze();
        let epoch0 = rib.snapshot().expect("frozen");
        rib.withdraw(&net("17.5.0.0/16"));
        rib.announce(net("17.6.0.0/16"), Asn(64513));
        let epoch1 = rib.snapshot().expect("frozen");
        // Epoch 0 still answers with the pre-mutation table.
        let a: IpAddr = "17.5.1.1".parse().unwrap();
        assert_eq!(epoch0.lookup(a).map(|(n, _)| n), Some(net("17.5.0.0/16")));
        assert_eq!(epoch1.lookup(a).map(|(n, _)| n), Some(net("17.0.0.0/8")));
        let b: IpAddr = "17.6.1.1".parse().unwrap();
        assert_eq!(epoch0.lookup(b).map(|(n, _)| n), Some(net("17.0.0.0/8")));
        assert_eq!(epoch1.lookup(b).map(|(n, _)| n), Some(net("17.6.0.0/16")));
        // Diffing the two epochs' prefix sets shows exactly the churn.
        let set = |e: &tectonic_net::FrozenLpm<RouteEntry>| {
            let mut v: Vec<String> = e.iter().map(|(n, _)| n.to_string()).collect();
            v.sort();
            v
        };
        let (s0, s1) = (set(&epoch0), set(&epoch1));
        let gone: Vec<_> = s0.iter().filter(|p| !s1.contains(p)).collect();
        let added: Vec<_> = s1.iter().filter(|p| !s0.contains(p)).collect();
        assert_eq!(gone, vec!["17.5.0.0/16"]);
        assert_eq!(added, vec!["17.6.0.0/16"]);
    }

    #[test]
    fn memoized_lookup_invalidated_on_withdraw() {
        let mut rib = Rib::new();
        rib.announce(net("17.0.0.0/8"), Asn::APPLE);
        let mut memo = LookupMemo::new();
        let addr: IpAddr = "17.1.1.1".parse().unwrap();
        // Prime the memo with a leaf match (the /8 has no descendants).
        assert_eq!(rib.lookup_memoized(addr, &mut memo), rib.lookup(addr));
        assert!(rib.lookup_memoized(addr, &mut memo).is_some());
        // Withdraw the prefix: the memoised path must stop matching even
        // though the cached entry still contains the address.
        rib.withdraw(&net("17.0.0.0/8"));
        assert_eq!(rib.lookup_memoized(addr, &mut memo), None);
    }

    #[test]
    fn memoized_lookup_invalidated_on_announce() {
        let mut rib = Rib::new();
        rib.announce(net("17.0.0.0/8"), Asn::APPLE);
        let mut memo = LookupMemo::new();
        let addr: IpAddr = "17.5.1.1".parse().unwrap();
        assert!(rib.lookup_memoized(addr, &mut memo).is_some());
        // A more specific announcement must supersede the memoised /8.
        rib.announce(net("17.5.0.0/16"), Asn(64512));
        assert_eq!(
            rib.lookup_memoized(addr, &mut memo),
            Some((net("17.5.0.0/16"), Asn(64512)))
        );
    }

    #[test]
    fn memoized_lookup_matches_plain_lookup_when_frozen() {
        let mut rib = Rib::new();
        rib.announce(net("17.0.0.0/8"), Asn::APPLE);
        rib.announce(net("17.5.0.0/16"), Asn(64512));
        rib.announce(net("23.32.0.0/11"), Asn::AKAMAI_EG);
        rib.freeze();
        let mut memo = LookupMemo::new();
        for addr in ["17.5.0.1", "17.5.0.2", "17.6.0.1", "8.8.8.8", "23.33.0.1"] {
            let addr: IpAddr = addr.parse().unwrap();
            assert_eq!(
                rib.lookup_memoized(addr, &mut memo),
                rib.lookup(addr),
                "{addr}"
            );
        }
    }

    #[test]
    fn memoized_lookup_matches_plain_lookup() {
        let mut rib = Rib::new();
        rib.announce(net("17.0.0.0/8"), Asn::APPLE);
        rib.announce(net("17.5.0.0/16"), Asn(64512));
        rib.announce(net("23.32.0.0/11"), Asn::AKAMAI_EG);
        let mut memo = LookupMemo::new();
        // Sweep addresses the way the scanner does: ascending, with long
        // same-prefix runs, crossing prefix boundaries and unrouted gaps.
        for addr in [
            "17.5.0.1",
            "17.5.0.2",
            "17.5.200.9",
            "17.6.0.1",
            "17.6.0.2",
            "8.8.8.8",
            "23.33.0.1",
            "23.33.0.2",
            "17.5.0.1",
        ] {
            let addr: IpAddr = addr.parse().unwrap();
            assert_eq!(
                rib.lookup_memoized(addr, &mut memo),
                rib.lookup(addr),
                "{addr}"
            );
        }
    }
}
