//! The routing information base.

use std::collections::HashMap;
use std::net::IpAddr;

use serde::{Deserialize, Serialize};
use tectonic_net::{Asn, IpNet, PrefixTrie};

/// One announced route.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RouteEntry {
    /// Origin AS of the announcement.
    pub origin: Asn,
}

/// A longest-prefix-match routing table over announced prefixes.
///
/// The reproduction uses a single global RIB (the "BGP collector view"): the
/// relay deployment announces its prefixes here, the client-side Internet
/// model announces eyeball prefixes, and the scanner and analyses query it.
#[derive(Debug, Default)]
pub struct Rib {
    routes: PrefixTrie<RouteEntry>,
    /// Per-AS announced prefix lists, kept alongside the trie for the
    /// prefix-census analyses (Table 3, §6). Entries are removed when their
    /// last prefix is withdrawn, so every present key has prefixes.
    by_origin: HashMap<Asn, Vec<IpNet>>,
    /// Sorted cache of `by_origin`'s keys, maintained incrementally so
    /// [`origins`](Rib::origins) is a free borrow instead of a collect+sort.
    origins: Vec<Asn>,
}

impl Rib {
    /// An empty RIB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Announces `prefix` with origin `asn`. Re-announcing an existing
    /// prefix replaces the origin (and returns the previous one).
    pub fn announce(&mut self, prefix: impl Into<IpNet>, origin: Asn) -> Option<Asn> {
        let prefix = prefix.into();
        let prev = self.routes.insert(prefix, RouteEntry { origin });
        if let Some(prev) = &prev {
            if prev.origin != origin {
                self.unindex_prefix(prev.origin, &prefix);
                self.index_prefix(origin, prefix);
            }
        } else {
            self.index_prefix(origin, prefix);
        }
        prev.map(|e| e.origin)
    }

    /// Withdraws `prefix`, returning its origin if it was announced.
    pub fn withdraw(&mut self, prefix: &IpNet) -> Option<Asn> {
        let prev = self.routes.remove(prefix);
        if let Some(entry) = &prev {
            self.unindex_prefix(entry.origin, prefix);
        }
        prev.map(|e| e.origin)
    }

    fn index_prefix(&mut self, origin: Asn, prefix: IpNet) {
        let list = self.by_origin.entry(origin).or_default();
        if list.is_empty() {
            if let Err(at) = self.origins.binary_search(&origin) {
                self.origins.insert(at, origin);
            }
        }
        list.push(prefix);
    }

    fn unindex_prefix(&mut self, origin: Asn, prefix: &IpNet) {
        if let Some(list) = self.by_origin.get_mut(&origin) {
            list.retain(|p| p != prefix);
            if list.is_empty() {
                self.by_origin.remove(&origin);
                if let Ok(at) = self.origins.binary_search(&origin) {
                    self.origins.remove(at);
                }
            }
        }
    }

    /// Number of announced prefixes (both families).
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// `true` when nothing is announced.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Longest-prefix match for an address.
    pub fn lookup(&self, addr: IpAddr) -> Option<(IpNet, Asn)> {
        self.routes
            .longest_match(addr)
            .map(|(net, entry)| (net, entry.origin))
    }

    /// The most specific announced prefix fully covering `net`.
    pub fn lookup_net(&self, net: &IpNet) -> Option<(IpNet, Asn)> {
        self.routes
            .longest_match_net(net)
            .map(|(covering, entry)| (covering, entry.origin))
    }

    /// Whether `addr` falls in any announced prefix — the scanner's
    /// "is this space routed at all" check.
    pub fn is_routed(&self, addr: IpAddr) -> bool {
        self.routes.longest_match(addr).is_some()
    }

    /// Whether `net` is fully covered by an announcement.
    pub fn is_routed_net(&self, net: &IpNet) -> bool {
        self.routes.longest_match_net(net).is_some()
    }

    /// The origin AS of the exact prefix, if announced.
    pub fn origin_of(&self, prefix: &IpNet) -> Option<Asn> {
        self.routes.exact(prefix).map(|e| e.origin)
    }

    /// All prefixes announced by `asn` (unspecified order).
    pub fn prefixes_of(&self, asn: Asn) -> &[IpNet] {
        self.by_origin.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates every `(prefix, origin)` announcement.
    pub fn iter(&self) -> impl Iterator<Item = (IpNet, Asn)> + '_ {
        self.routes.iter().map(|(net, entry)| (net, entry.origin))
    }

    /// The set of origin ASes with at least one announcement, ascending.
    ///
    /// Maintained incrementally on announce/withdraw, so this is O(1).
    pub fn origins(&self) -> &[Asn] {
        &self.origins
    }

    /// Longest-prefix match that remembers the previous answer.
    ///
    /// The ECS scanner looks up millions of addresses in ascending order, so
    /// consecutive queries overwhelmingly land in the same announced prefix.
    /// When the previous match was a *leaf* (no more-specific prefix below
    /// it — see [`PrefixTrie::longest_match_leaf`]) and still contains
    /// `addr`, the memoised answer is provably identical to a full walk and
    /// is returned without touching the trie.
    ///
    /// The memo must not be reused across RIB mutations; the scanner holds
    /// `&Rib` for the whole scan, which enforces this borrow-wise.
    pub fn lookup_memoized(&self, addr: IpAddr, memo: &mut LookupMemo) -> Option<(IpNet, Asn)> {
        if let Some((net, asn, true)) = memo.last {
            if net.contains(addr) {
                return Some((net, asn));
            }
        }
        match self.routes.longest_match_leaf(addr) {
            Some((net, entry, leaf)) => {
                memo.last = Some((net, entry.origin, leaf));
                Some((net, entry.origin))
            }
            None => {
                memo.last = None;
                None
            }
        }
    }
}

/// Scratch state for [`Rib::lookup_memoized`]: the last match and whether it
/// was a leaf (safe to reuse for any address it contains).
#[derive(Debug, Default, Clone)]
pub struct LookupMemo {
    last: Option<(IpNet, Asn, bool)>,
}

impl LookupMemo {
    /// A fresh memo (first lookup takes the slow path).
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(s: &str) -> IpNet {
        s.parse().unwrap()
    }

    #[test]
    fn announce_and_lookup() {
        let mut rib = Rib::new();
        rib.announce(net("17.0.0.0/8"), Asn::APPLE);
        rib.announce(net("23.32.0.0/11"), Asn::AKAMAI_EG);
        let (p, asn) = rib.lookup("17.5.6.7".parse().unwrap()).unwrap();
        assert_eq!(p, net("17.0.0.0/8"));
        assert_eq!(asn, Asn::APPLE);
        assert!(rib.lookup("8.8.8.8".parse().unwrap()).is_none());
        assert!(rib.is_routed("23.33.0.1".parse().unwrap()));
        assert!(!rib.is_routed("198.51.100.1".parse().unwrap()));
    }

    #[test]
    fn more_specific_wins() {
        let mut rib = Rib::new();
        rib.announce(net("23.32.0.0/11"), Asn::AKAMAI_EG);
        rib.announce(net("23.32.5.0/24"), Asn::AKAMAI_PR);
        let (_, asn) = rib.lookup("23.32.5.9".parse().unwrap()).unwrap();
        assert_eq!(asn, Asn::AKAMAI_PR);
        let (_, asn) = rib.lookup("23.33.0.1".parse().unwrap()).unwrap();
        assert_eq!(asn, Asn::AKAMAI_EG);
    }

    #[test]
    fn reannounce_moves_origin() {
        let mut rib = Rib::new();
        rib.announce(net("203.0.113.0/24"), Asn(64512));
        assert_eq!(
            rib.announce(net("203.0.113.0/24"), Asn(64513)),
            Some(Asn(64512))
        );
        assert_eq!(rib.origin_of(&net("203.0.113.0/24")), Some(Asn(64513)));
        assert!(rib.prefixes_of(Asn(64512)).is_empty());
        assert_eq!(rib.prefixes_of(Asn(64513)), &[net("203.0.113.0/24")]);
        assert_eq!(rib.len(), 1);
    }

    #[test]
    fn reannounce_same_origin_is_idempotent() {
        let mut rib = Rib::new();
        rib.announce(net("203.0.113.0/24"), Asn(64512));
        rib.announce(net("203.0.113.0/24"), Asn(64512));
        assert_eq!(rib.prefixes_of(Asn(64512)).len(), 1);
    }

    #[test]
    fn withdraw_removes_route() {
        let mut rib = Rib::new();
        rib.announce(net("17.0.0.0/8"), Asn::APPLE);
        assert_eq!(rib.withdraw(&net("17.0.0.0/8")), Some(Asn::APPLE));
        assert_eq!(rib.withdraw(&net("17.0.0.0/8")), None);
        assert!(rib.is_empty());
        assert!(rib.prefixes_of(Asn::APPLE).is_empty());
        assert!(rib.lookup("17.1.1.1".parse().unwrap()).is_none());
    }

    #[test]
    fn lookup_net_requires_full_cover() {
        let mut rib = Rib::new();
        rib.announce(net("100.64.0.0/10"), Asn(64512));
        assert!(rib.is_routed_net(&net("100.64.3.0/24")));
        assert!(!rib.is_routed_net(&net("100.0.0.0/8")));
        let (covering, asn) = rib.lookup_net(&net("100.64.3.0/24")).unwrap();
        assert_eq!(covering, net("100.64.0.0/10"));
        assert_eq!(asn, Asn(64512));
    }

    #[test]
    fn families_are_separate() {
        let mut rib = Rib::new();
        rib.announce(net("2620:149::/32"), Asn::APPLE);
        assert!(rib.is_routed("2620:149::1".parse().unwrap()));
        assert!(!rib.is_routed("38.32.1.1".parse().unwrap()));
    }

    #[test]
    fn origins_and_iter() {
        let mut rib = Rib::new();
        rib.announce(net("17.0.0.0/8"), Asn::APPLE);
        rib.announce(net("23.32.0.0/11"), Asn::AKAMAI_EG);
        rib.announce(net("2620:149::/32"), Asn::APPLE);
        assert_eq!(rib.origins(), vec![Asn::APPLE, Asn::AKAMAI_EG]);
        assert_eq!(rib.iter().count(), 3);
        assert_eq!(rib.prefixes_of(Asn::APPLE).len(), 2);
    }

    #[test]
    fn origins_cache_tracks_withdraw_and_reannounce() {
        let mut rib = Rib::new();
        rib.announce(net("17.0.0.0/8"), Asn::APPLE);
        rib.announce(net("2620:149::/32"), Asn::APPLE);
        rib.announce(net("23.32.0.0/11"), Asn::AKAMAI_EG);
        // Withdrawing one of two Apple prefixes keeps Apple listed.
        rib.withdraw(&net("2620:149::/32"));
        assert_eq!(rib.origins(), vec![Asn::APPLE, Asn::AKAMAI_EG]);
        // Withdrawing the last one drops Apple entirely.
        rib.withdraw(&net("17.0.0.0/8"));
        assert_eq!(rib.origins(), vec![Asn::AKAMAI_EG]);
        // Re-announcing under a different origin moves the prefix between
        // origin sets and drops the now-empty old origin.
        rib.announce(net("23.32.0.0/11"), Asn::APPLE);
        assert_eq!(rib.origins(), vec![Asn::APPLE]);
        rib.withdraw(&net("23.32.0.0/11"));
        assert!(rib.origins().is_empty());
        assert!(rib.is_empty());
    }

    #[test]
    fn memoized_lookup_matches_plain_lookup() {
        let mut rib = Rib::new();
        rib.announce(net("17.0.0.0/8"), Asn::APPLE);
        rib.announce(net("17.5.0.0/16"), Asn(64512));
        rib.announce(net("23.32.0.0/11"), Asn::AKAMAI_EG);
        let mut memo = LookupMemo::new();
        // Sweep addresses the way the scanner does: ascending, with long
        // same-prefix runs, crossing prefix boundaries and unrouted gaps.
        for addr in [
            "17.5.0.1",
            "17.5.0.2",
            "17.5.200.9",
            "17.6.0.1",
            "17.6.0.2",
            "8.8.8.8",
            "23.33.0.1",
            "23.33.0.2",
            "17.5.0.1",
        ] {
            let addr: IpAddr = addr.parse().unwrap();
            assert_eq!(
                rib.lookup_memoized(addr, &mut memo),
                rib.lookup(addr),
                "{addr}"
            );
        }
    }
}
