//! Property tests for CIDR prefixes and the prefix trie.
//!
//! The trie is the backbone of the BGP RIB and every subnet-indexed dataset
//! in the reproduction; these tests pin its laws against a brute-force
//! reference implementation.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use proptest::prelude::*;
use tectonic_net::{DeltaOverlay, FrozenLpm, IpNet, Ipv4Net, Ipv6Net, PrefixTrie};

fn arb_v4net() -> impl Strategy<Value = Ipv4Net> {
    (any::<u32>(), 0u8..=32)
        .prop_map(|(bits, len)| Ipv4Net::new(Ipv4Addr::from(bits), len).unwrap())
}

fn arb_v6net() -> impl Strategy<Value = Ipv6Net> {
    (any::<u128>(), 0u8..=128)
        .prop_map(|(bits, len)| Ipv6Net::new(Ipv6Addr::from(bits), len).unwrap())
}

fn arb_ipnet() -> impl Strategy<Value = IpNet> {
    prop_oneof![
        arb_v4net().prop_map(IpNet::V4),
        arb_v6net().prop_map(IpNet::V6),
    ]
}

fn arb_addr() -> impl Strategy<Value = IpAddr> {
    prop_oneof![
        any::<u32>().prop_map(|b| IpAddr::V4(Ipv4Addr::from(b))),
        any::<u128>().prop_map(|b| IpAddr::V6(Ipv6Addr::from(b))),
    ]
}

/// Brute-force longest-prefix match over a plain vector.
fn linear_lpm(nets: &[(IpNet, usize)], addr: IpAddr) -> Option<(IpNet, &usize)> {
    nets.iter()
        .filter(|(n, _)| n.contains(addr))
        .max_by_key(|(n, _)| n.len())
        .map(|(n, v)| (*n, v))
}

proptest! {
    #[test]
    fn parse_display_round_trip(net in arb_ipnet()) {
        let s = net.to_string();
        let back: IpNet = s.parse().unwrap();
        prop_assert_eq!(back, net);
    }

    #[test]
    fn canonical_network_is_contained(net in arb_v4net()) {
        prop_assert!(net.contains(net.network()));
        prop_assert!(net.contains(net.broadcast()));
    }

    #[test]
    fn supernet_contains_subnet(net in arb_v4net()) {
        if let Some(sup) = net.supernet() {
            prop_assert!(sup.contains_net(&net));
            prop_assert_eq!(sup.len() + 1, net.len());
        }
    }

    #[test]
    fn split_partitions_prefix(net in arb_v4net()) {
        if let Ok((l, r)) = net.split() {
            prop_assert!(net.contains_net(&l));
            prop_assert!(net.contains_net(&r));
            prop_assert!(!l.contains_net(&r));
            prop_assert!(!r.contains_net(&l));
            prop_assert_eq!(l.addr_count() + r.addr_count(), net.addr_count());
        }
    }

    #[test]
    fn nth_addr_always_inside(net in arb_v4net(), n in any::<u64>()) {
        prop_assert!(net.contains(net.nth_addr(n)));
    }

    #[test]
    fn v6_nth_addr_always_inside(net in arb_v6net(), n in any::<u128>()) {
        prop_assert!(net.contains(net.nth_addr(n)));
    }

    #[test]
    fn trie_lpm_agrees_with_linear_scan(
        nets in prop::collection::vec(arb_ipnet(), 1..60),
        addrs in prop::collection::vec(arb_addr(), 1..40),
    ) {
        // Last insert wins for duplicate prefixes; dedup keeps semantics equal.
        let mut dedup: Vec<(IpNet, usize)> = Vec::new();
        for (i, n) in nets.iter().enumerate() {
            if let Some(slot) = dedup.iter_mut().find(|(m, _)| m == n) {
                slot.1 = i;
            } else {
                dedup.push((*n, i));
            }
        }
        let mut trie = PrefixTrie::new();
        for (n, i) in &dedup {
            trie.insert(*n, *i);
        }
        prop_assert_eq!(trie.len(), dedup.len());
        for addr in addrs {
            let got = trie.longest_match(addr).map(|(n, v)| (n, *v));
            let want = linear_lpm(&dedup, addr).map(|(n, v)| (n, *v));
            // Multiple distinct prefixes may share the max length only if they
            // are the same prefix, so the match is unique when it exists.
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn trie_exact_after_insert(nets in prop::collection::vec(arb_ipnet(), 1..50)) {
        let mut trie = PrefixTrie::new();
        for (i, n) in nets.iter().enumerate() {
            trie.insert(*n, i);
        }
        for n in &nets {
            prop_assert!(trie.contains(n));
        }
    }

    #[test]
    fn trie_remove_round_trip(nets in prop::collection::vec(arb_ipnet(), 1..40)) {
        let mut dedup = nets.clone();
        dedup.sort();
        dedup.dedup();
        let mut trie = PrefixTrie::new();
        for (i, n) in dedup.iter().enumerate() {
            trie.insert(*n, i);
        }
        for (i, n) in dedup.iter().enumerate() {
            prop_assert_eq!(trie.remove(n), Some(i));
        }
        prop_assert!(trie.is_empty());
        for n in &dedup {
            prop_assert!(trie.longest_match(n.network()).is_none());
        }
    }

    #[test]
    fn covering_is_sorted_and_contains_addr(
        nets in prop::collection::vec(arb_ipnet(), 1..50),
        addr in arb_addr(),
    ) {
        let trie: PrefixTrie<usize> =
            nets.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        let cov = trie.covering(addr);
        let mut last_len = 0u8;
        let mut first = true;
        for (n, _) in &cov {
            prop_assert!(n.contains(addr));
            if !first {
                prop_assert!(n.len() > last_len);
            }
            last_len = n.len();
            first = false;
        }
        // Every stored prefix containing addr must appear.
        let expect = nets.iter().filter(|n| n.contains(addr)).count();
        let mut uniq: Vec<IpNet> = nets.iter().filter(|n| n.contains(addr)).cloned().collect();
        uniq.sort();
        uniq.dedup();
        let _ = expect;
        prop_assert_eq!(cov.len(), uniq.len());
    }

    #[test]
    fn frozen_equals_trie_on_every_query_api(
        nets in prop::collection::vec(arb_ipnet(), 1..60),
        dups in prop::collection::vec(0usize..60, 0..10),
        addrs in prop::collection::vec(arb_addr(), 1..40),
    ) {
        let mut trie = PrefixTrie::new();
        for (i, n) in nets.iter().enumerate() {
            trie.insert(*n, i);
        }
        // Duplicate inserts overwrite; the snapshot must carry the last value.
        for (j, d) in dups.iter().enumerate() {
            if let Some(n) = nets.get(*d) {
                trie.insert(*n, 1000 + j);
            }
        }
        let frozen = trie.freeze();
        prop_assert_eq!(frozen.len(), trie.len());
        // lookup_batch ≡ map(lookup) ≡ the trie, element for element.
        let mut out = Vec::new();
        frozen.lookup_batch(&addrs, &mut out);
        prop_assert_eq!(out.len(), addrs.len());
        for (addr, batched) in addrs.iter().zip(&out) {
            let want = trie.longest_match(*addr).map(|(n, v)| (n, *v));
            prop_assert_eq!(frozen.longest_match(*addr).map(|(n, v)| (n, *v)), want);
            prop_assert_eq!(frozen.lookup(*addr).map(|(n, v)| (n, *v)), want);
            prop_assert_eq!(batched.map(|(n, v)| (n, *v)), want);
            let fc: Vec<(IpNet, usize)> =
                frozen.covering(*addr).into_iter().map(|(n, v)| (n, *v)).collect();
            let tc: Vec<(IpNet, usize)> =
                trie.covering(*addr).into_iter().map(|(n, v)| (n, *v)).collect();
            prop_assert_eq!(fc, tc);
        }
        for n in &nets {
            prop_assert_eq!(frozen.exact(n).copied(), trie.exact(n).copied());
            prop_assert_eq!(frozen.contains(n), trie.contains(n));
        }
    }

    #[test]
    fn frozen_default_routes_do_not_alias_families(
        nets in prop::collection::vec(arb_ipnet(), 0..30),
        v4 in any::<u32>(),
        v6 in any::<u128>(),
    ) {
        // A /0 default in each family must answer only its own family even
        // though both keys share the u128 bit space internally.
        let mut trie = PrefixTrie::new();
        for (i, n) in nets.iter().enumerate() {
            trie.insert(*n, i + 2);
        }
        trie.insert(Ipv4Net::new(Ipv4Addr::UNSPECIFIED, 0).unwrap(), 0usize);
        trie.insert(Ipv6Net::new(Ipv6Addr::UNSPECIFIED, 0).unwrap(), 1usize);
        let frozen = trie.freeze();
        let a4 = IpAddr::V4(Ipv4Addr::from(v4));
        let a6 = IpAddr::V6(Ipv6Addr::from(v6));
        let (net4, _) = frozen.longest_match(a4).expect("v4 default catches all v4");
        prop_assert!(net4.is_v4());
        let (net6, _) = frozen.longest_match(a6).expect("v6 default catches all v6");
        prop_assert!(!net6.is_v4());
        for addr in [a4, a6] {
            prop_assert_eq!(
                frozen.longest_match(addr).map(|(n, v)| (n, *v)),
                trie.longest_match(addr).map(|(n, v)| (n, *v))
            );
        }
    }

    #[test]
    fn frozen_from_pairs_equals_freeze(
        nets in prop::collection::vec(arb_ipnet(), 1..40),
        addrs in prop::collection::vec(arb_addr(), 1..20),
    ) {
        let trie: PrefixTrie<usize> =
            nets.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        let via_freeze = trie.freeze();
        let via_pairs = FrozenLpm::from_pairs(nets.iter().enumerate().map(|(i, n)| (*n, i)));
        prop_assert_eq!(via_freeze.len(), via_pairs.len());
        for addr in addrs {
            prop_assert_eq!(
                via_freeze.longest_match(addr).map(|(n, v)| (n, *v)),
                via_pairs.longest_match(addr).map(|(n, v)| (n, *v))
            );
        }
    }

    #[test]
    fn overlay_equals_full_rebuild_under_interleaved_churn(
        base in prop::collection::vec(arb_ipnet(), 1..40),
        pool in prop::collection::vec(arb_ipnet(), 1..20),
        ops in prop::collection::vec((0u8..8, any::<usize>()), 1..60),
        addrs in prop::collection::vec(arb_addr(), 1..25),
    ) {
        // Frozen table + delta overlay on one side, a plain trie mirror on
        // the other; after a random interleaving of announce / withdraw /
        // subtree-compaction (drawing nets from a shared pool so duplicates
        // and withdraw-then-reannounce sequences occur), every query API
        // must agree with a from-scratch rebuild of the mirror.
        let mut mirror: PrefixTrie<usize> =
            base.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        let mut frozen = mirror.freeze();
        let mut delta = DeltaOverlay::new();
        let all: Vec<IpNet> = base.iter().chain(pool.iter()).cloned().collect();
        let mut next = 1_000usize;
        for (kind, idx) in &ops {
            let net = all[idx % all.len()];
            match kind {
                0..=4 => {
                    next += 1;
                    delta.announce(net, next);
                    mirror.insert(net, next);
                }
                5 | 6 => {
                    delta.withdraw(&net, &frozen);
                    mirror.remove(&net);
                }
                _ => {
                    frozen.refreeze_subtree(&delta);
                    delta.clear();
                }
            }
        }
        let rebuilt = mirror.freeze();
        let mut probes = addrs.clone();
        probes.extend(all.iter().map(|n| n.network()));
        for addr in &probes {
            let want = rebuilt.longest_match(*addr).map(|(n, v)| (n, *v));
            prop_assert_eq!(delta.longest_match(&frozen, *addr).map(|(n, v)| (n, *v)), want);
            prop_assert_eq!(delta.lookup(&frozen, *addr).map(|(n, v)| (n, *v)), want);
            prop_assert_eq!(
                delta.longest_match_leaf(&frozen, *addr).map(|(n, v, _)| (n, *v)),
                want
            );
            let oc: Vec<(IpNet, usize)> =
                delta.covering(&frozen, *addr).into_iter().map(|(n, v)| (n, *v)).collect();
            let rc: Vec<(IpNet, usize)> =
                rebuilt.covering(*addr).into_iter().map(|(n, v)| (n, *v)).collect();
            prop_assert_eq!(oc, rc);
        }
        for n in &all {
            prop_assert_eq!(delta.exact(&frozen, n).copied(), rebuilt.exact(n).copied());
            prop_assert_eq!(delta.contains(&frozen, n), rebuilt.contains(n));
            prop_assert_eq!(
                delta.longest_match_net(&frozen, n).map(|(m, v)| (m, *v)),
                rebuilt.longest_match_net(n).map(|(m, v)| (m, *v))
            );
        }
        let mut got = Vec::new();
        delta.lookup_batch(&frozen, &probes, &mut got);
        let mut want = Vec::new();
        rebuilt.lookup_batch(&probes, &mut want);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.map(|(n, v)| (n, *v)), w.map(|(n, v)| (n, *v)));
        }
    }

    #[test]
    fn overlay_default_routes_do_not_alias_families(
        base in prop::collection::vec(arb_ipnet(), 0..20),
        v4 in any::<u32>(),
        v6 in any::<u128>(),
    ) {
        // A /0 announced in each family *through the overlay* must answer
        // only its own family, exactly like a /0 baked into the frozen
        // table; both keys share the u128 bit space internally.
        let mut mirror: PrefixTrie<usize> = base
            .iter()
            .enumerate()
            .map(|(i, n)| (*n, i + 2))
            .collect();
        let frozen = mirror.freeze();
        let mut delta = DeltaOverlay::new();
        let d4 = IpNet::V4(Ipv4Net::new(Ipv4Addr::UNSPECIFIED, 0).unwrap());
        let d6 = IpNet::V6(Ipv6Net::new(Ipv6Addr::UNSPECIFIED, 0).unwrap());
        delta.announce(d4, 0usize);
        delta.announce(d6, 1usize);
        mirror.insert(d4, 0usize);
        mirror.insert(d6, 1usize);
        let rebuilt = mirror.freeze();
        let a4 = IpAddr::V4(Ipv4Addr::from(v4));
        let a6 = IpAddr::V6(Ipv6Addr::from(v6));
        let (n4, _) = delta.longest_match(&frozen, a4).expect("v4 default catches all v4");
        prop_assert!(n4.is_v4());
        let (n6, _) = delta.longest_match(&frozen, a6).expect("v6 default catches all v6");
        prop_assert!(!n6.is_v4());
        for addr in [a4, a6] {
            prop_assert_eq!(
                delta.longest_match(&frozen, addr).map(|(n, v)| (n, *v)),
                rebuilt.longest_match(addr).map(|(n, v)| (n, *v))
            );
        }
    }

    #[test]
    fn epoch_snapshots_stay_pinned_as_base_mutates(
        base in prop::collection::vec(arb_ipnet(), 1..30),
        rounds in prop::collection::vec(
            prop::collection::vec((arb_ipnet(), any::<bool>()), 1..8),
            1..5,
        ),
        addrs in prop::collection::vec(arb_addr(), 1..15),
    ) {
        // Take an epoch snapshot before each churn round, then compact the
        // round's overlay into the live table. Every earlier epoch must keep
        // answering from its point-in-time state — later refreezes must not
        // leak backwards through the shared arenas — so each snapshot agrees
        // with a trie frozen at the same instant, and consecutive epochs
        // diff exactly as their references do.
        let mut mirror: PrefixTrie<usize> =
            base.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        let mut frozen = mirror.freeze();
        let mut epochs: Vec<(FrozenLpm<usize>, FrozenLpm<usize>)> = Vec::new();
        let mut next = 10_000usize;
        for ops in &rounds {
            epochs.push((frozen.snapshot(), mirror.freeze()));
            let mut delta = DeltaOverlay::new();
            for (net, announce) in ops {
                if *announce {
                    next += 1;
                    delta.announce(*net, next);
                    mirror.insert(*net, next);
                } else {
                    delta.withdraw(net, &frozen);
                    mirror.remove(net);
                }
            }
            frozen.refreeze_subtree(&delta);
        }
        epochs.push((frozen.snapshot(), mirror.freeze()));
        let mut probes = addrs.clone();
        for ops in &rounds {
            probes.extend(ops.iter().map(|(n, _)| n.network()));
        }
        for (snap, reference) in &epochs {
            prop_assert_eq!(snap.len(), reference.len());
            for addr in &probes {
                prop_assert_eq!(
                    snap.longest_match(*addr).map(|(n, v)| (n, *v)),
                    reference.longest_match(*addr).map(|(n, v)| (n, *v))
                );
            }
        }
    }

    #[test]
    fn subnets_cover_parent_exactly(len in 0u8..=24, bits in any::<u32>()) {
        let parent = Ipv4Net::new(Ipv4Addr::from(bits), len).unwrap();
        let child_len = (len + 4).min(32);
        let subs: Vec<Ipv4Net> = parent.subnets(child_len).unwrap().collect();
        prop_assert_eq!(subs.len() as u64, 1u64 << (child_len - len));
        let total: u64 = subs.iter().map(|s| s.addr_count()).sum();
        prop_assert_eq!(total, parent.addr_count());
        for pair in subs.windows(2) {
            prop_assert!(pair[0] < pair[1]);
            prop_assert!(!pair[0].contains_net(&pair[1]));
        }
    }
}
