//! CIDR prefixes for IPv4 and IPv6.
//!
//! The paper's datasets are all subnet-indexed: ECS queries carry `/24`
//! client subnets, Apple's egress list is a set of subnets with geolocation,
//! and the BGP analyses operate on routed prefixes. [`Ipv4Net`], [`Ipv6Net`]
//! and the family-erased [`IpNet`] are the common currency for all of them.
//!
//! Prefixes are always stored in *canonical* form: host bits below the prefix
//! length are zero. [`Ipv4Net::new`] rejects out-of-range lengths;
//! constructors never panic.

use std::cmp::Ordering;
use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::NetError;

/// Writes `Debug` through `Display` — prefixes read better as `10.0.0.0/8`
/// than as a struct dump.
macro_rules! fmt_debug_as_display {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{self}")
        }
    };
}

/// Masks the low `128 - len` bits off a u128 value.
#[inline]
fn mask_u128(bits: u128, len: u8) -> u128 {
    if len == 0 {
        0
    } else {
        bits & (u128::MAX << (128 - len as u32))
    }
}

/// Masks the low `32 - len` bits off a u32 value.
#[inline]
fn mask_u32(bits: u32, len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        bits & (u32::MAX << (32 - len as u32))
    }
}

/// An IPv4 CIDR prefix in canonical form (host bits zero).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub struct Ipv4Net {
    addr: Ipv4Addr,
    len: u8,
}

impl Ipv4Net {
    /// Creates a prefix from a network address and length, canonicalising the
    /// address (host bits are zeroed).
    ///
    /// Returns [`NetError::PrefixLenOutOfRange`] when `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Result<Self, NetError> {
        if len > 32 {
            return Err(NetError::PrefixLenOutOfRange { len, max: 32 });
        }
        Ok(Self {
            addr: Ipv4Addr::from(mask_u32(u32::from(addr), len)),
            len,
        })
    }

    /// The `/24` prefix covering `addr` — the granularity used for ECS
    /// client subnets throughout the paper.
    pub fn slash24_of(addr: Ipv4Addr) -> Self {
        Self {
            addr: Ipv4Addr::from(mask_u32(u32::from(addr), 24)),
            len: 24,
        }
    }

    /// Creates a prefix with `len` clamped to 32 — a total constructor for
    /// lengths that arrive pre-validated or semantically capped (e.g. ECS
    /// source/scope lengths).
    pub fn clamped(addr: Ipv4Addr, len: u8) -> Self {
        let len = len.min(32);
        Self {
            addr: Ipv4Addr::from(mask_u32(u32::from(addr), len)),
            len,
        }
    }

    /// Parses a compile-time prefix literal, panicking on invalid input.
    ///
    /// For embedding well-known prefixes in source (`Ipv4Net::literal(
    /// "17.0.0.0/8")`); every call site is covered by construction the
    /// first time it runs. Never call this on runtime input — use
    /// [`FromStr`] and handle the error.
    pub fn literal(s: &str) -> Self {
        // lintkit: allow(no-panic) -- documented literal-only constructor; the single sanctioned panic site for static prefixes
        s.parse().expect("invalid Ipv4Net literal")
    }

    /// The single-address `/32` prefix for `addr`.
    pub fn host(addr: Ipv4Addr) -> Self {
        Self { addr, len: 32 }
    }

    /// Network address (lowest address in the prefix).
    pub fn network(&self) -> Ipv4Addr {
        self.addr
    }

    /// Prefix length in bits.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Always `false`: a prefix covers at least one address. Present for
    /// clippy's `len`/`is_empty` convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `true` only for `0.0.0.0/0`.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// Number of addresses covered by the prefix.
    pub fn addr_count(&self) -> u64 {
        1u64 << (32 - self.len as u32)
    }

    /// Highest address in the prefix.
    pub fn broadcast(&self) -> Ipv4Addr {
        let host_bits = 32 - self.len as u32;
        let hi = if host_bits == 32 {
            u32::MAX
        } else {
            u32::from(self.addr) | ((1u32 << host_bits) - 1)
        };
        Ipv4Addr::from(hi)
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        mask_u32(u32::from(addr), self.len) == u32::from(self.addr)
    }

    /// Whether `other` is fully contained in (or equal to) this prefix.
    pub fn contains_net(&self, other: &Ipv4Net) -> bool {
        other.len >= self.len && self.contains(other.addr)
    }

    /// The immediate supernet (one bit shorter), or `None` for `/0`.
    pub fn supernet(&self) -> Option<Ipv4Net> {
        if self.len == 0 {
            None
        } else {
            let len = self.len - 1;
            Some(Ipv4Net {
                addr: Ipv4Addr::from(mask_u32(u32::from(self.addr), len)),
                len,
            })
        }
    }

    /// Splits the prefix into its two halves, or errors on a `/32`.
    pub fn split(&self) -> Result<(Ipv4Net, Ipv4Net), NetError> {
        if self.len >= 32 {
            return Err(NetError::CannotSplit(self.to_string()));
        }
        let left = Ipv4Net {
            addr: self.addr,
            len: self.len + 1,
        };
        let right_bits = u32::from(self.addr) | (1u32 << (32 - (self.len as u32 + 1)));
        let right = Ipv4Net {
            addr: Ipv4Addr::from(right_bits),
            len: self.len + 1,
        };
        Ok((left, right))
    }

    /// Iterates over all sub-prefixes of length `new_len`.
    ///
    /// Returns an error if `new_len` is shorter than the current length or
    /// longer than 32.
    pub fn subnets(&self, new_len: u8) -> Result<Ipv4Subnets, NetError> {
        if new_len > 32 {
            return Err(NetError::PrefixLenOutOfRange {
                len: new_len,
                max: 32,
            });
        }
        if new_len < self.len {
            return Err(NetError::CannotSplit(format!(
                "{self} into shorter /{new_len}"
            )));
        }
        let count = 1u64 << (new_len - self.len) as u32;
        Ok(Ipv4Subnets {
            base: u32::from(self.addr),
            step: 1u64 << (32 - new_len as u32),
            len: new_len,
            next: 0,
            count,
        })
    }

    /// Iterates over every address in the prefix.
    pub fn addrs(&self) -> impl Iterator<Item = Ipv4Addr> {
        let base = u32::from(self.addr) as u64;
        let count = self.addr_count();
        (0..count).map(move |i| Ipv4Addr::from((base + i) as u32))
    }

    /// The `n`-th address in the prefix, wrapping modulo the prefix size.
    pub fn nth_addr(&self, n: u64) -> Ipv4Addr {
        let off = n % self.addr_count();
        Ipv4Addr::from((u32::from(self.addr) as u64 + off) as u32)
    }

    /// The raw `(bits, len)` pair used by the prefix trie.
    pub fn bits(&self) -> (u32, u8) {
        (u32::from(self.addr), self.len)
    }
}

impl fmt::Display for Ipv4Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl fmt::Debug for Ipv4Net {
    fmt_debug_as_display!();
}

impl FromStr for Ipv4Net {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_s, len_s) = s
            .split_once('/')
            .ok_or_else(|| NetError::InvalidCidr(s.to_string()))?;
        let addr: Ipv4Addr = addr_s
            .parse()
            .map_err(|_| NetError::InvalidAddress(addr_s.to_string()))?;
        let len: u8 = len_s
            .parse()
            .map_err(|_| NetError::InvalidCidr(s.to_string()))?;
        Ipv4Net::new(addr, len)
    }
}

impl Ord for Ipv4Net {
    fn cmp(&self, other: &Self) -> Ordering {
        u32::from(self.addr)
            .cmp(&u32::from(other.addr))
            .then(self.len.cmp(&other.len))
    }
}

impl PartialOrd for Ipv4Net {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl TryFrom<String> for Ipv4Net {
    type Error = NetError;
    fn try_from(s: String) -> Result<Self, NetError> {
        s.parse()
    }
}

impl From<Ipv4Net> for String {
    fn from(n: Ipv4Net) -> String {
        n.to_string()
    }
}

/// Iterator over fixed-length subnets of an [`Ipv4Net`].
#[derive(Debug, Clone)]
pub struct Ipv4Subnets {
    base: u32,
    step: u64,
    len: u8,
    next: u64,
    count: u64,
}

impl Iterator for Ipv4Subnets {
    type Item = Ipv4Net;

    fn next(&mut self) -> Option<Ipv4Net> {
        if self.next >= self.count {
            return None;
        }
        let bits = self.base as u64 + self.next * self.step;
        self.next += 1;
        Some(Ipv4Net {
            addr: Ipv4Addr::from(bits as u32),
            len: self.len,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.count - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Ipv4Subnets {}

/// An IPv6 CIDR prefix in canonical form (host bits zero).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub struct Ipv6Net {
    addr: Ipv6Addr,
    len: u8,
}

impl Ipv6Net {
    /// Creates a prefix from a network address and length, canonicalising the
    /// address. Returns an error when `len > 128`.
    pub fn new(addr: Ipv6Addr, len: u8) -> Result<Self, NetError> {
        if len > 128 {
            return Err(NetError::PrefixLenOutOfRange { len, max: 128 });
        }
        Ok(Self {
            addr: Ipv6Addr::from(mask_u128(u128::from(addr), len)),
            len,
        })
    }

    /// Creates a prefix with `len` clamped to 128 — the total counterpart
    /// of [`Ipv6Net::new`], for pre-validated or semantically capped lengths.
    pub fn clamped(addr: Ipv6Addr, len: u8) -> Self {
        let len = len.min(128);
        Self {
            addr: Ipv6Addr::from(mask_u128(u128::from(addr), len)),
            len,
        }
    }

    /// The single-address `/128` prefix for `addr`.
    pub fn host(addr: Ipv6Addr) -> Self {
        Self { addr, len: 128 }
    }

    /// Parses a compile-time prefix literal, panicking on invalid input.
    ///
    /// See [`Ipv4Net::literal`]; never call this on runtime input.
    pub fn literal(s: &str) -> Self {
        // lintkit: allow(no-panic) -- documented literal-only constructor; the single sanctioned panic site for static v6 prefixes
        s.parse().expect("invalid Ipv6Net literal")
    }

    /// Network address (lowest address in the prefix).
    pub fn network(&self) -> Ipv6Addr {
        self.addr
    }

    /// Prefix length in bits.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Always `false`: a prefix covers at least one address. Present for
    /// clippy's `len`/`is_empty` convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `true` only for `::/0`.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains(&self, addr: Ipv6Addr) -> bool {
        mask_u128(u128::from(addr), self.len) == u128::from(self.addr)
    }

    /// Whether `other` is fully contained in (or equal to) this prefix.
    pub fn contains_net(&self, other: &Ipv6Net) -> bool {
        other.len >= self.len && self.contains(other.addr)
    }

    /// The immediate supernet (one bit shorter), or `None` for `::/0`.
    pub fn supernet(&self) -> Option<Ipv6Net> {
        if self.len == 0 {
            None
        } else {
            let len = self.len - 1;
            Some(Ipv6Net {
                addr: Ipv6Addr::from(mask_u128(u128::from(self.addr), len)),
                len,
            })
        }
    }

    /// The `n`-th sub-prefix of length `new_len`, wrapping modulo the number
    /// of such subnets. Errors when `new_len` is out of range.
    pub fn nth_subnet(&self, new_len: u8, n: u128) -> Result<Ipv6Net, NetError> {
        if new_len > 128 {
            return Err(NetError::PrefixLenOutOfRange {
                len: new_len,
                max: 128,
            });
        }
        if new_len < self.len {
            return Err(NetError::CannotSplit(format!(
                "{self} into shorter /{new_len}"
            )));
        }
        let slots = if new_len - self.len >= 128 {
            u128::MAX
        } else {
            1u128 << (new_len - self.len) as u32
        };
        let idx = n % slots;
        let bits = u128::from(self.addr) | (idx << (128 - new_len as u32).min(127));
        Ipv6Net::new(Ipv6Addr::from(mask_u128(bits, new_len)), new_len)
    }

    /// The `n`-th address in the prefix (wrapping), for host allocation.
    pub fn nth_addr(&self, n: u128) -> Ipv6Addr {
        let host_bits = 128 - self.len as u32;
        let slots = if host_bits >= 128 {
            u128::MAX
        } else {
            1u128 << host_bits
        };
        Ipv6Addr::from(u128::from(self.addr) | (n % slots))
    }

    /// The raw `(bits, len)` pair used by the prefix trie.
    pub fn bits(&self) -> (u128, u8) {
        (u128::from(self.addr), self.len)
    }
}

impl fmt::Display for Ipv6Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl fmt::Debug for Ipv6Net {
    fmt_debug_as_display!();
}

impl FromStr for Ipv6Net {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_s, len_s) = s
            .split_once('/')
            .ok_or_else(|| NetError::InvalidCidr(s.to_string()))?;
        let addr: Ipv6Addr = addr_s
            .parse()
            .map_err(|_| NetError::InvalidAddress(addr_s.to_string()))?;
        let len: u8 = len_s
            .parse()
            .map_err(|_| NetError::InvalidCidr(s.to_string()))?;
        Ipv6Net::new(addr, len)
    }
}

impl Ord for Ipv6Net {
    fn cmp(&self, other: &Self) -> Ordering {
        u128::from(self.addr)
            .cmp(&u128::from(other.addr))
            .then(self.len.cmp(&other.len))
    }
}

impl PartialOrd for Ipv6Net {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl TryFrom<String> for Ipv6Net {
    type Error = NetError;
    fn try_from(s: String) -> Result<Self, NetError> {
        s.parse()
    }
}

impl From<Ipv6Net> for String {
    fn from(n: Ipv6Net) -> String {
        n.to_string()
    }
}

/// A CIDR prefix of either address family.
///
/// Apple's egress list mixes IPv4 and IPv6 subnets in one file; [`IpNet`]
/// lets the egress analyses treat them uniformly while still splitting per
/// family where the paper does (Tables 3 and 4 report them separately).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub enum IpNet {
    /// An IPv4 prefix.
    V4(Ipv4Net),
    /// An IPv6 prefix.
    V6(Ipv6Net),
}

impl IpNet {
    /// Prefix length in bits.
    pub fn len(&self) -> u8 {
        match self {
            IpNet::V4(n) => n.len(),
            IpNet::V6(n) => n.len(),
        }
    }

    /// Always `false`: a prefix covers at least one address. Present for
    /// clippy's `len`/`is_empty` convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `true` for the all-zero default route of either family.
    pub fn is_default(&self) -> bool {
        match self {
            IpNet::V4(n) => n.is_default(),
            IpNet::V6(n) => n.is_default(),
        }
    }

    /// `true` when this is an IPv4 prefix.
    pub fn is_v4(&self) -> bool {
        matches!(self, IpNet::V4(_))
    }

    /// `true` when this is an IPv6 prefix.
    pub fn is_v6(&self) -> bool {
        matches!(self, IpNet::V6(_))
    }

    /// The network address as a family-erased [`IpAddr`].
    pub fn network(&self) -> IpAddr {
        match self {
            IpNet::V4(n) => IpAddr::V4(n.network()),
            IpNet::V6(n) => IpAddr::V6(n.network()),
        }
    }

    /// Whether `addr` falls inside this prefix. Always `false` across
    /// families.
    pub fn contains(&self, addr: IpAddr) -> bool {
        match (self, addr) {
            (IpNet::V4(n), IpAddr::V4(a)) => n.contains(a),
            (IpNet::V6(n), IpAddr::V6(a)) => n.contains(a),
            _ => false,
        }
    }

    /// Whether `other` is fully contained in this prefix (same family only).
    pub fn contains_net(&self, other: &IpNet) -> bool {
        match (self, other) {
            (IpNet::V4(a), IpNet::V4(b)) => a.contains_net(b),
            (IpNet::V6(a), IpNet::V6(b)) => a.contains_net(b),
            _ => false,
        }
    }

    /// Borrows the IPv4 prefix, if this is one.
    pub fn as_v4(&self) -> Option<&Ipv4Net> {
        match self {
            IpNet::V4(n) => Some(n),
            IpNet::V6(_) => None,
        }
    }

    /// Borrows the IPv6 prefix, if this is one.
    pub fn as_v6(&self) -> Option<&Ipv6Net> {
        match self {
            IpNet::V6(n) => Some(n),
            IpNet::V4(_) => None,
        }
    }
}

impl fmt::Display for IpNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpNet::V4(n) => n.fmt(f),
            IpNet::V6(n) => n.fmt(f),
        }
    }
}

impl fmt::Debug for IpNet {
    fmt_debug_as_display!();
}

impl FromStr for IpNet {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.contains(':') {
            Ok(IpNet::V6(s.parse()?))
        } else {
            Ok(IpNet::V4(s.parse()?))
        }
    }
}

impl From<Ipv4Net> for IpNet {
    fn from(n: Ipv4Net) -> Self {
        IpNet::V4(n)
    }
}

impl From<Ipv6Net> for IpNet {
    fn from(n: Ipv6Net) -> Self {
        IpNet::V6(n)
    }
}

impl TryFrom<String> for IpNet {
    type Error = NetError;
    fn try_from(s: String) -> Result<Self, NetError> {
        s.parse()
    }
}

impl From<IpNet> for String {
    fn from(n: IpNet) -> String {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v4(s: &str) -> Ipv4Net {
        s.parse().unwrap()
    }

    fn v6(s: &str) -> Ipv6Net {
        s.parse().unwrap()
    }

    #[test]
    fn canonicalises_host_bits() {
        let n = Ipv4Net::new(Ipv4Addr::new(10, 1, 2, 3), 8).unwrap();
        assert_eq!(n.to_string(), "10.0.0.0/8");
        let n6 = Ipv6Net::new("2001:db8::dead:beef".parse().unwrap(), 32).unwrap();
        assert_eq!(n6.to_string(), "2001:db8::/32");
    }

    #[test]
    fn rejects_out_of_range_lengths() {
        assert!(Ipv4Net::new(Ipv4Addr::UNSPECIFIED, 33).is_err());
        assert!(Ipv6Net::new(Ipv6Addr::UNSPECIFIED, 129).is_err());
        assert!("1.2.3.0/33".parse::<Ipv4Net>().is_err());
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in [
            "0.0.0.0/0",
            "17.0.0.0/8",
            "203.0.113.0/24",
            "198.51.100.7/32",
        ] {
            assert_eq!(v4(s).to_string(), s);
        }
        for s in ["::/0", "2620:149::/32", "2001:db8:1:2::/64"] {
            assert_eq!(v6(s).to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("10.0.0.0".parse::<Ipv4Net>().is_err());
        assert!("10.0.0.0/ab".parse::<Ipv4Net>().is_err());
        assert!("zz/24".parse::<Ipv4Net>().is_err());
        assert!("::1".parse::<Ipv6Net>().is_err());
    }

    #[test]
    fn contains_addr() {
        let n = v4("192.0.2.0/24");
        assert!(n.contains(Ipv4Addr::new(192, 0, 2, 200)));
        assert!(!n.contains(Ipv4Addr::new(192, 0, 3, 0)));
        let d = v4("0.0.0.0/0");
        assert!(d.contains(Ipv4Addr::new(255, 255, 255, 255)));
    }

    #[test]
    fn contains_net_ordering() {
        assert!(v4("10.0.0.0/8").contains_net(&v4("10.5.0.0/16")));
        assert!(v4("10.0.0.0/8").contains_net(&v4("10.0.0.0/8")));
        assert!(!v4("10.5.0.0/16").contains_net(&v4("10.0.0.0/8")));
        assert!(!v4("10.0.0.0/8").contains_net(&v4("11.0.0.0/16")));
        assert!(v6("2620:149::/32").contains_net(&v6("2620:149:a::/48")));
    }

    #[test]
    fn broadcast_and_count() {
        let n = v4("192.0.2.0/24");
        assert_eq!(n.broadcast(), Ipv4Addr::new(192, 0, 2, 255));
        assert_eq!(n.addr_count(), 256);
        assert_eq!(v4("0.0.0.0/0").addr_count(), 1 << 32);
        assert_eq!(v4("1.1.1.1/32").broadcast(), Ipv4Addr::new(1, 1, 1, 1));
    }

    #[test]
    fn split_halves() {
        let (l, r) = v4("10.0.0.0/8").split().unwrap();
        assert_eq!(l, v4("10.0.0.0/9"));
        assert_eq!(r, v4("10.128.0.0/9"));
        assert!(v4("1.2.3.4/32").split().is_err());
    }

    #[test]
    fn supernet_chain_reaches_default() {
        let mut n = v4("203.0.113.64/26");
        let mut steps = 0;
        while let Some(s) = n.supernet() {
            assert!(s.contains_net(&n));
            n = s;
            steps += 1;
        }
        assert_eq!(steps, 26);
        assert!(n.is_default());
    }

    #[test]
    fn subnets_iterates_in_order() {
        let subs: Vec<_> = v4("198.51.100.0/24").subnets(26).unwrap().collect();
        assert_eq!(
            subs,
            vec![
                v4("198.51.100.0/26"),
                v4("198.51.100.64/26"),
                v4("198.51.100.128/26"),
                v4("198.51.100.192/26"),
            ]
        );
        assert_eq!(v4("10.0.0.0/8").subnets(24).unwrap().len(), 65536);
        assert!(v4("10.0.0.0/24").subnets(8).is_err());
    }

    #[test]
    fn subnets_same_len_is_identity() {
        let n = v4("10.0.0.0/8");
        let subs: Vec<_> = n.subnets(8).unwrap().collect();
        assert_eq!(subs, vec![n]);
    }

    #[test]
    fn addrs_enumerates_all() {
        let addrs: Vec<_> = v4("192.0.2.252/30").addrs().collect();
        assert_eq!(addrs.len(), 4);
        assert_eq!(addrs[0], Ipv4Addr::new(192, 0, 2, 252));
        assert_eq!(addrs[3], Ipv4Addr::new(192, 0, 2, 255));
    }

    #[test]
    fn nth_addr_wraps() {
        let n = v4("192.0.2.0/30");
        assert_eq!(n.nth_addr(0), Ipv4Addr::new(192, 0, 2, 0));
        assert_eq!(n.nth_addr(5), Ipv4Addr::new(192, 0, 2, 1));
        let n6 = v6("2001:db8::/126");
        assert_eq!(n6.nth_addr(4), "2001:db8::".parse::<Ipv6Addr>().unwrap());
    }

    #[test]
    fn v6_nth_subnet() {
        let n = v6("2001:db8::/32");
        let s0 = n.nth_subnet(48, 0).unwrap();
        let s1 = n.nth_subnet(48, 1).unwrap();
        assert_eq!(s0, v6("2001:db8::/48"));
        assert_eq!(s1, v6("2001:db8:1::/48"));
        assert!(n.contains_net(&n.nth_subnet(64, 123456).unwrap()));
        assert!(n.nth_subnet(16, 0).is_err());
    }

    #[test]
    fn ipnet_family_dispatch() {
        let a: IpNet = "10.0.0.0/8".parse().unwrap();
        let b: IpNet = "2620:149::/32".parse().unwrap();
        assert!(a.is_v4() && !a.is_v6());
        assert!(b.is_v6() && !b.is_v4());
        assert!(a.contains("10.1.2.3".parse().unwrap()));
        assert!(!a.contains("2620:149::1".parse().unwrap()));
        assert!(!a.contains_net(&b));
        assert_eq!(a.as_v4().unwrap().len(), 8);
        assert!(b.as_v4().is_none());
    }

    #[test]
    fn ordering_is_by_address_then_len() {
        let mut v = vec![v4("10.0.0.0/16"), v4("9.0.0.0/8"), v4("10.0.0.0/8")];
        v.sort();
        assert_eq!(
            v,
            vec![v4("9.0.0.0/8"), v4("10.0.0.0/8"), v4("10.0.0.0/16")]
        );
    }

    #[test]
    fn serde_as_string() {
        let n: IpNet = "203.0.113.0/24".parse().unwrap();
        let j = serde_json::to_string(&n).unwrap();
        assert_eq!(j, "\"203.0.113.0/24\"");
        let back: IpNet = serde_json::from_str(&j).unwrap();
        assert_eq!(back, n);
        assert!(serde_json::from_str::<IpNet>("\"nope\"").is_err());
    }

    #[test]
    fn slash24_of_covers_addr() {
        let a = Ipv4Addr::new(100, 64, 3, 77);
        let n = Ipv4Net::slash24_of(a);
        assert_eq!(n.to_string(), "100.64.3.0/24");
        assert!(n.contains(a));
    }
}
