//! Error types shared across the foundation layer.

use std::fmt;

/// Errors produced while parsing or manipulating network primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A CIDR string could not be parsed.
    InvalidCidr(String),
    /// A prefix length exceeded the width of the address family.
    PrefixLenOutOfRange {
        /// The offending prefix length.
        len: u8,
        /// The maximum allowed for the family (32 or 128).
        max: u8,
    },
    /// An IP address string could not be parsed.
    InvalidAddress(String),
    /// An operation would produce a prefix longer than the family allows
    /// (e.g. splitting a /32).
    CannotSplit(String),
    /// An ASN string could not be parsed.
    InvalidAsn(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::InvalidCidr(s) => write!(f, "invalid CIDR notation: {s:?}"),
            NetError::PrefixLenOutOfRange { len, max } => {
                write!(f, "prefix length {len} out of range (max {max})")
            }
            NetError::InvalidAddress(s) => write!(f, "invalid IP address: {s:?}"),
            NetError::CannotSplit(s) => write!(f, "cannot split prefix: {s}"),
            NetError::InvalidAsn(s) => write!(f, "invalid ASN: {s:?}"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = NetError::PrefixLenOutOfRange { len: 33, max: 32 };
        assert_eq!(e.to_string(), "prefix length 33 out of range (max 32)");
        let e = NetError::InvalidCidr("1.2.3.4/xx".into());
        assert!(e.to_string().contains("1.2.3.4/xx"));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(NetError::InvalidAsn("AS-1".into()));
        assert!(e.to_string().contains("AS-1"));
    }
}
