//! Autonomous-system numbers.
//!
//! The paper's story is told in terms of a handful of ASes: ingress relays
//! sit in Apple's AS714 and in AS36183 (a previously dark AS the paper names
//! *Akamai&#8239;PR*), while egress relays sit in AS36183, AS20940
//! (*Akamai&#8239;EG*), AS13335 (Cloudflare) and AS54113 (Fastly). Those
//! well-known numbers are exposed as constants so the analyses and the
//! simulation agree on them by construction.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::NetError;

/// An autonomous-system number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
#[serde(transparent)]
pub struct Asn(pub u32);

impl Asn {
    /// Apple Inc. — operates the first-party share of the ingress layer.
    pub const APPLE: Asn = Asn(714);
    /// AS36183 — the Akamai AS dedicated to iCloud Private Relay
    /// ("Akamai&#8239;PR" in the paper). Hosts *both* ingress and egress
    /// relays, which is the root of the paper's correlation finding.
    pub const AKAMAI_PR: Asn = Asn(36183);
    /// AS20940 — Akamai's main CDN AS ("Akamai&#8239;EG"), egress only.
    pub const AKAMAI_EG: Asn = Asn(20940);
    /// Cloudflare's AS13335, egress only.
    pub const CLOUDFLARE: Asn = Asn(13335);
    /// Fastly's AS54113, egress only.
    pub const FASTLY: Asn = Asn(54113);

    /// The four egress operator ASes of Table 3, in the paper's row order.
    pub const EGRESS_OPERATORS: [Asn; 4] =
        [Asn::AKAMAI_PR, Asn::AKAMAI_EG, Asn::CLOUDFLARE, Asn::FASTLY];

    /// The two ingress operator ASes of Table 1.
    pub const INGRESS_OPERATORS: [Asn; 2] = [Asn::APPLE, Asn::AKAMAI_PR];

    /// The raw AS number.
    pub fn value(&self) -> u32 {
        self.0
    }

    /// A short human label for the well-known ASes, or `AS<n>` otherwise.
    pub fn label(&self) -> String {
        match *self {
            Asn::APPLE => "Apple".to_string(),
            Asn::AKAMAI_PR => "AkamaiPR".to_string(),
            Asn::AKAMAI_EG => "AkamaiEG".to_string(),
            Asn::CLOUDFLARE => "Cloudflare".to_string(),
            Asn::FASTLY => "Fastly".to_string(),
            Asn(n) => format!("AS{n}"),
        }
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Debug for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<u32> for Asn {
    fn from(n: u32) -> Self {
        Asn(n)
    }
}

impl FromStr for Asn {
    type Err = NetError;

    /// Parses `"36183"` or `"AS36183"` (case-insensitive prefix).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s
            .strip_prefix("AS")
            .or_else(|| s.strip_prefix("as"))
            .or_else(|| s.strip_prefix("As"))
            .unwrap_or(s);
        digits
            .parse::<u32>()
            .map(Asn)
            .map_err(|_| NetError::InvalidAsn(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_known_constants_match_paper() {
        assert_eq!(Asn::APPLE.value(), 714);
        assert_eq!(Asn::AKAMAI_PR.value(), 36183);
        assert_eq!(Asn::AKAMAI_EG.value(), 20940);
        assert_eq!(Asn::CLOUDFLARE.value(), 13335);
        assert_eq!(Asn::FASTLY.value(), 54113);
    }

    #[test]
    fn parse_with_and_without_prefix() {
        assert_eq!("AS36183".parse::<Asn>().unwrap(), Asn::AKAMAI_PR);
        assert_eq!("as714".parse::<Asn>().unwrap(), Asn::APPLE);
        assert_eq!("13335".parse::<Asn>().unwrap(), Asn::CLOUDFLARE);
        assert!("ASxyz".parse::<Asn>().is_err());
        assert!("".parse::<Asn>().is_err());
    }

    #[test]
    fn display_and_label() {
        assert_eq!(Asn(64512).to_string(), "AS64512");
        assert_eq!(Asn::AKAMAI_PR.label(), "AkamaiPR");
        assert_eq!(Asn(64512).label(), "AS64512");
    }

    #[test]
    fn serde_transparent() {
        let j = serde_json::to_string(&Asn::FASTLY).unwrap();
        assert_eq!(j, "54113");
        assert_eq!(serde_json::from_str::<Asn>("54113").unwrap(), Asn::FASTLY);
    }

    #[test]
    fn operator_sets_are_consistent() {
        assert!(Asn::EGRESS_OPERATORS.contains(&Asn::AKAMAI_PR));
        assert!(Asn::INGRESS_OPERATORS.contains(&Asn::AKAMAI_PR));
        // The overlap between the two sets is exactly the paper's finding.
        let overlap: Vec<_> = Asn::INGRESS_OPERATORS
            .iter()
            .filter(|a| Asn::EGRESS_OPERATORS.contains(a))
            .collect();
        assert_eq!(overlap, vec![&Asn::AKAMAI_PR]);
    }
}
