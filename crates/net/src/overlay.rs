//! Delta overlay and partial re-freeze for [`FrozenLpm`].
//!
//! A [`DeltaOverlay`] absorbs announce/withdraw churn as exact-prefix
//! patches layered *over* a frozen base table, so a mutation costs
//! O(log patches) instead of an O(table) rebuild. Every combined query is
//! result-identical to freezing `base ∪ announces ∖ withdraws` from
//! scratch (property-tested in `tests/prop_prefix_trie.rs`):
//!
//! - An **announce** lands in a side [`PrefixTrie`] (and, if it shadows a
//!   base prefix, simply wins the length tie — exactly what a re-insert
//!   into the source trie would do).
//! - A **withdraw** of a base prefix becomes a *tombstone*: the frozen walk
//!   still finds the prefix, so the combined lookup must reject it and fall
//!   back to the next-best surviving covering prefix via
//!   [`FrozenLpm::longest_match_where`]. Withdrawing an overlay-only
//!   announce just removes the patch.
//!
//! Steady-state combined lookups are allocation-free, and when the overlay
//! is empty every query is a single delegated call to the base — which is
//! how the overlay keeps the ≤ 10% lookup-regression budget.
//!
//! Once the overlay crosses [`DeltaOverlay::should_compact`],
//! [`FrozenLpm::refreeze_subtree`] folds the patches into the base by
//! rebuilding only the root-stride subtrees the dirty prefixes fall under:
//! fresh node/entry segments are appended to the arenas and spliced in
//! through the existing `u32`-index indirection, leaving the untouched
//! subtrees (the overwhelming majority under realistic churn) exactly where
//! they were. Superseded value slots become garbage the owner can observe
//! via [`FrozenLpm::garbage`] and amortise away with a full rebuild.

use std::net::IpAddr;

use crate::lpm::{
    arena_idx, build_node, chunk_of, distinct_lens, mask_bits, net_bits, rebuild_leaf,
    BatchScratch, FrozenLpm, KeyRec, NONE,
};
use crate::prefix::IpNet;
use crate::trie::PrefixTrie;

/// One pending mutation against the frozen base, in the compiled key
/// space: `bits` left-aligned as in [`KeyRec`], `tomb` marking a withdraw
/// of a base prefix.
#[derive(Debug, Clone, Copy)]
struct Patch {
    v4: bool,
    bits: u128,
    len: u8,
    tomb: bool,
    net: IpNet,
}

/// Hard patch-count ceiling: past this the overlay's own probe costs start
/// to show, so [`DeltaOverlay::should_compact`] fires regardless of base
/// size.
const MAX_PATCHES: usize = 4096;
/// Don't bother compacting below this many patches — a subtree rebuild has
/// fixed costs that a handful of patches never amortise.
const MIN_COMPACT: usize = 64;
/// Between the two bounds, compact once patches exceed 1/RATIO of the base.
const COMPACT_RATIO: usize = 8;

/// A bounded set of exact-prefix patches (announces + withdraw tombstones)
/// consulted after the frozen walk. See the [module docs](self) for the
/// combine semantics; see [`FrozenLpm::refreeze_subtree`] for how the
/// patches are eventually folded back into the base.
#[derive(Debug, Clone)]
pub struct DeltaOverlay<V> {
    /// Announced (or re-announced) prefixes with their current values.
    inserts: PrefixTrie<V>,
    /// All patches — inserts and tombstones — sorted by `(v4, bits, len)`
    /// so membership and subtree-range scans are binary searches.
    patches: Vec<Patch>,
    /// Number of tombstones in `patches`; the combined lookup only takes
    /// the fallback slow path when this is non-zero.
    tombs: usize,
}

impl<V> Default for DeltaOverlay<V> {
    fn default() -> Self {
        DeltaOverlay::new()
    }
}

impl<V> DeltaOverlay<V> {
    /// An empty overlay: every combined query delegates straight to the
    /// base.
    pub fn new() -> DeltaOverlay<V> {
        DeltaOverlay {
            inserts: PrefixTrie::new(),
            patches: Vec::new(),
            tombs: 0,
        }
    }

    /// Number of pending patches (announces + tombstones).
    pub fn len(&self) -> usize {
        self.patches.len()
    }

    /// `true` when no patch is pending — the overlay is transparent.
    pub fn is_empty(&self) -> bool {
        self.patches.is_empty()
    }

    /// Number of pending withdraw tombstones.
    pub fn tombstones(&self) -> usize {
        self.tombs
    }

    /// Drops all pending patches (after they have been folded into the
    /// base, or when the base itself is rebuilt from source).
    pub fn clear(&mut self) {
        self.inserts = PrefixTrie::new();
        self.patches.clear();
        self.tombs = 0;
    }

    /// Whether the owner should fold this overlay into its base now:
    /// either the hard patch ceiling is hit, or the overlay has grown past
    /// a fixed fraction of a `base_len`-prefix table (never below the
    /// minimum worth a subtree rebuild).
    pub fn should_compact(&self, base_len: usize) -> bool {
        let n = self.patches.len();
        n >= MAX_PATCHES || (n >= MIN_COMPACT && n.saturating_mul(COMPACT_RATIO) >= base_len)
    }

    /// Position of `(v4, bits, len)` in the sorted patch list.
    fn patch_pos(&self, v4: bool, bits: u128, len: u8) -> Result<usize, usize> {
        patch_search(&self.patches, v4, bits, len)
    }

    /// Records an announce: the prefix now maps to `value` in the combined
    /// view, whether it was new, previously withdrawn, or already present
    /// in the base (length ties resolve to the overlay).
    pub fn announce(&mut self, net: IpNet, value: V) {
        let (bits, len, v4) = net_bits(&net);
        self.inserts.insert(net, value);
        match self.patch_pos(v4, bits, len) {
            Ok(at) => {
                if let Some(p) = self.patches.get_mut(at) {
                    if p.tomb {
                        self.tombs = self.tombs.saturating_sub(1);
                    }
                    p.tomb = false;
                }
            }
            Err(at) => self.patches.insert(
                at,
                Patch {
                    v4,
                    bits,
                    len,
                    tomb: false,
                    net,
                },
            ),
        }
    }

    /// Records a withdraw against `base`: if the prefix exists in the base
    /// a tombstone is planted (the frozen arena can't forget it until the
    /// next compaction); an overlay-only announce is simply removed.
    /// Returns the overlay value that was dropped, if any.
    pub fn withdraw(&mut self, net: &IpNet, base: &FrozenLpm<V>) -> Option<V> {
        let (bits, len, v4) = net_bits(net);
        let prev = self.inserts.remove(net);
        if base.contains(net) {
            match self.patch_pos(v4, bits, len) {
                Ok(at) => {
                    if let Some(p) = self.patches.get_mut(at) {
                        if !p.tomb {
                            self.tombs = self.tombs.saturating_add(1);
                        }
                        p.tomb = true;
                    }
                }
                Err(at) => {
                    self.patches.insert(
                        at,
                        Patch {
                            v4,
                            bits,
                            len,
                            tomb: true,
                            net: *net,
                        },
                    );
                    self.tombs = self.tombs.saturating_add(1);
                }
            }
        } else if let Ok(at) = self.patch_pos(v4, bits, len) {
            self.patches.remove(at);
        }
        prev
    }

    /// Whether the exact prefix is tombstoned (withdrawn from the base and
    /// not re-announced since).
    fn tombstoned_key(&self, v4: bool, bits: u128, len: u8) -> bool {
        matches!(
            self.patch_pos(v4, bits, len)
                .ok()
                .and_then(|at| self.patches.get(at)),
            Some(p) if p.tomb
        )
    }

    /// Whether `net` is currently tombstoned in this overlay.
    pub fn is_tombstoned(&self, net: &IpNet) -> bool {
        let (bits, len, v4) = net_bits(net);
        self.tombstoned_key(v4, bits, len)
    }

    /// Whether any live (non-tombstone) patch is *strictly* inside the
    /// prefix `(v4, bits, len)` — used to decide if a base leaf flag is
    /// still valid under the overlay.
    fn insert_within(&self, v4: bool, bits: u128, len: u8) -> bool {
        let from = match patch_search(&self.patches, v4, bits, len) {
            Ok(at) | Err(at) => at,
        };
        self.patches
            .iter()
            .skip(from)
            .take_while(|p| p.v4 == v4 && mask_bits(p.bits, len) == bits)
            .any(|p| p.len > len && !p.tomb)
    }

    /// Picks the combined winner of an overlay match and a base match:
    /// more specific wins; on equal length the overlay wins (it re-announced
    /// the prefix, shadowing the stale base value).
    fn better<'a>(
        ov: Option<(IpNet, &'a V)>,
        base: Option<(IpNet, &'a V)>,
    ) -> Option<(IpNet, &'a V)> {
        match (ov, base) {
            (Some(o), Some(b)) => {
                if b.0.len() > o.0.len() {
                    Some(b)
                } else {
                    Some(o)
                }
            }
            (Some(o), None) => Some(o),
            (None, b) => b,
        }
    }

    /// The base's best surviving (non-tombstoned) match for `addr`. Only
    /// takes the filtered slow path when tombstones exist at all.
    fn base_match<'a>(&self, base: &'a FrozenLpm<V>, addr: IpAddr) -> Option<(IpNet, &'a V)> {
        if self.tombs == 0 {
            return base.longest_match(addr);
        }
        base.longest_match_where(addr, |n| !self.is_tombstoned(n))
    }

    /// Combined longest-prefix match — identical to freezing the patched
    /// table and calling [`FrozenLpm::longest_match`].
    pub fn longest_match<'a>(
        &'a self,
        base: &'a FrozenLpm<V>,
        addr: IpAddr,
    ) -> Option<(IpNet, &'a V)> {
        if self.patches.is_empty() {
            return base.longest_match(addr);
        }
        Self::better(
            self.inserts.longest_match(addr),
            self.base_match(base, addr),
        )
    }

    /// Alias for [`longest_match`](DeltaOverlay::longest_match), matching
    /// [`FrozenLpm::lookup`].
    #[inline]
    pub fn lookup<'a>(&'a self, base: &'a FrozenLpm<V>, addr: IpAddr) -> Option<(IpNet, &'a V)> {
        self.longest_match(base, addr)
    }

    /// Combined [`FrozenLpm::longest_match_leaf`]: the leaf flag stays
    /// `true` only for a base-sourced winner whose base flag holds and
    /// which no live overlay patch sits strictly inside (overlay-sourced
    /// answers report `false` — always safe, merely memoising less).
    pub fn longest_match_leaf<'a>(
        &'a self,
        base: &'a FrozenLpm<V>,
        addr: IpAddr,
    ) -> Option<(IpNet, &'a V, bool)> {
        if self.patches.is_empty() {
            return base.longest_match_leaf(addr);
        }
        let ov = self.inserts.longest_match(addr);
        let bm = self.base_match(base, addr);
        let win = Self::better(ov, bm)?;
        let from_base = match (ov, bm) {
            // `better` prefers the overlay on ties, so the winner came from
            // the base only when the base match is strictly more specific.
            (Some(o), Some(b)) => b.0.len() > o.0.len(),
            (None, Some(_)) => true,
            _ => false,
        };
        let leaf = if from_base {
            let (bits, len, v4) = net_bits(&win.0);
            base.longest_match_leaf(addr)
                .map(|(n, _, l)| n == win.0 && l)
                .unwrap_or(false)
                && !self.insert_within(v4, bits, len)
        } else {
            false
        };
        Some((win.0, win.1, leaf))
    }

    /// Combined exact-prefix lookup — identical to
    /// [`FrozenLpm::exact`] on the patched table.
    pub fn exact<'a>(&'a self, base: &'a FrozenLpm<V>, net: &IpNet) -> Option<&'a V> {
        if self.patches.is_empty() {
            return base.exact(net);
        }
        if let Some(v) = self.inserts.exact(net) {
            return Some(v);
        }
        if self.is_tombstoned(net) {
            return None;
        }
        base.exact(net)
    }

    /// Whether the exact prefix exists in the combined view.
    pub fn contains(&self, base: &FrozenLpm<V>, net: &IpNet) -> bool {
        self.exact(base, net).is_some()
    }

    /// Combined [`FrozenLpm::longest_match_net`]: the most specific
    /// surviving prefix fully containing `net`.
    pub fn longest_match_net<'a>(
        &'a self,
        base: &'a FrozenLpm<V>,
        net: &IpNet,
    ) -> Option<(IpNet, &'a V)> {
        if self.patches.is_empty() {
            return base.longest_match_net(net);
        }
        let bm = if self.tombs == 0 {
            base.longest_match_net(net)
        } else {
            base.longest_match_net_where(net, |n| !self.is_tombstoned(n))
        };
        Self::better(self.inserts.longest_match_net(net), bm)
    }

    /// Combined [`FrozenLpm::covering`]: all surviving prefixes containing
    /// `addr`, shortest first (merge of the base's filtered list and the
    /// overlay's; a prefix in both contributes the overlay value).
    pub fn covering<'a>(&'a self, base: &'a FrozenLpm<V>, addr: IpAddr) -> Vec<(IpNet, &'a V)> {
        if self.patches.is_empty() {
            return base.covering(addr);
        }
        let mut from_base = base.covering(addr);
        from_base.retain(|(n, _)| !self.is_tombstoned(n));
        let from_ov = self.inserts.covering(addr);
        let mut out = Vec::with_capacity(from_base.len().saturating_add(from_ov.len()));
        let mut bi = from_base.iter().peekable();
        let mut oi = from_ov.iter().peekable();
        loop {
            match (bi.peek(), oi.peek()) {
                (Some(b), Some(o)) => {
                    if b.0.len() < o.0.len() {
                        out.push(**b);
                        bi.next();
                    } else {
                        if b.0.len() == o.0.len() {
                            // Same prefix present in both: overlay shadows.
                            bi.next();
                        }
                        out.push(**o);
                        oi.next();
                    }
                }
                (Some(b), None) => {
                    out.push(**b);
                    bi.next();
                }
                (None, Some(o)) => {
                    out.push(**o);
                    oi.next();
                }
                (None, None) => break,
            }
        }
        out
    }

    /// Combined batch lookup — results are exactly
    /// `addrs.iter().map(|a| self.lookup(base, *a))`. See
    /// [`lookup_batch_in`](DeltaOverlay::lookup_batch_in) for the
    /// scratch-reusing form.
    pub fn lookup_batch<'a>(
        &'a self,
        base: &'a FrozenLpm<V>,
        addrs: &[IpAddr],
        out: &mut Vec<Option<(IpNet, &'a V)>>,
    ) {
        let mut scratch = BatchScratch::new();
        self.lookup_batch_map_in(base, &mut scratch, addrs, out, |m| m);
    }

    /// Combined batch lookup against caller-owned scratch; allocation-free
    /// once the scratch and output buffers have grown to the burst size
    /// (tombstone fallbacks excepted — they probe, not allocate).
    pub fn lookup_batch_in<'a>(
        &'a self,
        base: &'a FrozenLpm<V>,
        scratch: &mut BatchScratch,
        addrs: &[IpAddr],
        out: &mut Vec<Option<(IpNet, &'a V)>>,
    ) {
        self.lookup_batch_map_in(base, scratch, addrs, out, |m| m);
    }

    /// Combined batch lookup with an inline projection, the overlay
    /// counterpart of [`FrozenLpm::lookup_batch_map_in`]. The frozen batch
    /// kernel drives the walk; each raw base match is combined with the
    /// overlay's answer for the same address before `f` sees it. Relies on
    /// the kernel's documented contract that the projection runs exactly
    /// once per input address, in input order.
    pub fn lookup_batch_map_in<'a, T>(
        &'a self,
        base: &'a FrozenLpm<V>,
        scratch: &mut BatchScratch,
        addrs: &[IpAddr],
        out: &mut Vec<T>,
        mut f: impl FnMut(Option<(IpNet, &'a V)>) -> T,
    ) {
        if self.patches.is_empty() {
            base.lookup_batch_map_in(scratch, addrs, out, f);
            return;
        }
        let mut i: usize = 0;
        base.lookup_batch_map_in(scratch, addrs, out, |bm| {
            let addr = addrs.get(i).copied();
            i = i.saturating_add(1);
            let combined = match addr {
                Some(a) => {
                    // Reject a tombstoned base winner (fall back through the
                    // filtered probe), then merge with the overlay's match.
                    let bm = match bm {
                        Some((n, _)) if self.tombs != 0 && self.is_tombstoned(&n) => {
                            base.longest_match_where(a, |n| !self.is_tombstoned(n))
                        }
                        other => other,
                    };
                    Self::better(self.inserts.longest_match(a), bm)
                }
                None => None,
            };
            f(combined)
        });
    }
}

/// Binary search for `(v4, bits, len)` over the sorted patch list.
fn patch_search(patches: &[Patch], v4: bool, bits: u128, len: u8) -> Result<usize, usize> {
    patches.binary_search_by(|p| (p.v4, p.bits, p.len).cmp(&(v4, bits, len)))
}

impl<V: Clone> FrozenLpm<V> {
    /// Folds a [`DeltaOverlay`] into this table by rebuilding only the
    /// root-stride subtrees its patches fall under — O(affected subtree),
    /// not O(table). The caller owns clearing the overlay afterwards (and,
    /// per [`FrozenLpm::garbage`], deciding when accumulated superseded
    /// arena slots warrant a full rebuild).
    ///
    /// If this handle currently shares arenas with
    /// [snapshots](FrozenLpm::snapshot), they are un-shared first (one
    /// deep copy) so every snapshot keeps observing its own epoch.
    ///
    /// The root stride is fixed at freeze time and never changes here: a
    /// table that grows from below [`WIDE_ROOT_MIN`](crate::lpm) past it
    /// keeps its narrow root until the next full freeze. Lookups are
    /// correct either way; only the root fan-out differs.
    pub fn refreeze_subtree(&mut self, delta: &DeltaOverlay<V>) {
        if delta.patches.is_empty() {
            return;
        }
        let core = std::sync::Arc::make_mut(&mut self.core);
        refreeze_family(core, delta, true);
        refreeze_family(core, delta, false);
        rebuild_leaf(core);
    }
}

/// Rebuilds one address family of `core` under `delta`'s patches for that
/// family. Merges the sorted key list with the sorted patches (dropping
/// tombstones, appending fresh value slots for inserts), then patches the
/// root node in place: in-node re-expansion only if a ≤ root-stride patch
/// exists, and a fresh subtree build for each dirty root chunk, spliced in
/// through the root's entry block.
fn refreeze_family<V: Clone>(core: &mut crate::lpm::Core<V>, delta: &DeltaOverlay<V>, v4: bool) {
    let fam: Vec<Patch> = delta
        .patches
        .iter()
        .filter(|p| p.v4 == v4)
        .copied()
        .collect();
    if fam.is_empty() {
        return;
    }

    // Two-pointer merge of the old sorted keys with the (sorted) patches:
    // a tombstone drops the old key, an insert supersedes it (new value
    // slot appended to the arena), anything untouched is kept verbatim.
    let old: Vec<KeyRec> = std::mem::take(if v4 {
        &mut core.keys_v4
    } else {
        &mut core.keys_v6
    });
    let mut merged: Vec<KeyRec> = Vec::with_capacity(old.len().saturating_add(fam.len()));
    let push_patch = |p: &Patch, values: &mut Vec<(IpNet, V)>, merged: &mut Vec<KeyRec>| {
        if p.tomb {
            return;
        }
        if let Some(v) = delta.inserts.exact(&p.net) {
            let idx = arena_idx(values.len());
            values.push((p.net, v.clone()));
            merged.push(KeyRec {
                bits: p.bits,
                len: p.len,
                value: idx,
            });
        }
    };
    let mut oi = 0usize;
    let mut pi = 0usize;
    loop {
        match (old.get(oi), fam.get(pi)) {
            (Some(o), Some(p)) => match (o.bits, o.len).cmp(&(p.bits, p.len)) {
                std::cmp::Ordering::Less => {
                    merged.push(*o);
                    oi = oi.saturating_add(1);
                }
                std::cmp::Ordering::Greater => {
                    push_patch(p, &mut core.values, &mut merged);
                    pi = pi.saturating_add(1);
                }
                std::cmp::Ordering::Equal => {
                    push_patch(p, &mut core.values, &mut merged);
                    oi = oi.saturating_add(1);
                    pi = pi.saturating_add(1);
                }
            },
            (Some(o), None) => {
                merged.push(*o);
                oi = oi.saturating_add(1);
            }
            (None, Some(p)) => {
                push_patch(p, &mut core.values, &mut merged);
                pi = pi.saturating_add(1);
            }
            (None, None) => break,
        }
    }

    let root = if v4 { core.root_v4 } else { core.root_v6 };
    let new_root = if merged.is_empty() {
        NONE
    } else if core.nodes.get(root as usize).is_none() {
        // The family was empty at freeze time: build it fresh.
        build_node(&mut core.nodes, &mut core.entries, &merged, 0)
    } else {
        patch_root(core, root, &merged, &fam);
        root
    };
    if v4 {
        core.root_v4 = new_root;
        core.keys_v4 = merged;
        core.lens_v4 = distinct_lens(&core.keys_v4);
    } else {
        core.root_v6 = new_root;
        core.keys_v6 = merged;
        core.lens_v6 = distinct_lens(&core.keys_v6);
    }
}

/// Patches the root node of one family in place, given the fully merged
/// key list and that family's patches.
fn patch_root<V: Clone>(
    core: &mut crate::lpm::Core<V>,
    root: u32,
    merged: &[KeyRec],
    fam: &[Patch],
) {
    let (off, stride) = match core.nodes.get(root as usize) {
        Some(n) => (n.entries_off as usize, n.stride),
        None => return,
    };
    let block = 1usize.checked_shl(u32::from(stride)).unwrap_or(0);
    let shift = 128u32.saturating_sub(u32::from(stride));

    // (a) If any patch terminates inside the root node, re-expand the
    // root's in-node values from scratch: reset the block's value slots and
    // replay every ≤ stride key shorter-first (the same overwrite order the
    // builder uses). O(block) — only paid when a short prefix churned.
    if fam.iter().any(|p| p.len <= stride) {
        for e in core.entries.iter_mut().skip(off).take(block) {
            e.value = NONE;
        }
        if let Some(n) = core.nodes.get_mut(root as usize) {
            n.value = NONE;
        }
        let mut in_node: Vec<&KeyRec> = merged.iter().filter(|k| k.len <= stride).collect();
        in_node.sort_by_key(|k| k.len);
        for key in in_node {
            if key.len == 0 {
                if let Some(n) = core.nodes.get_mut(root as usize) {
                    n.value = key.value;
                }
                continue;
            }
            let lo = chunk_of(key.bits, shift, stride);
            let count = 1usize
                .checked_shl(u32::from(stride.saturating_sub(key.len)))
                .unwrap_or(0);
            for entry in core
                .entries
                .iter_mut()
                .skip(off.saturating_add(lo))
                .take(count)
            {
                entry.value = key.value;
            }
        }
    }

    // (b) Rebuild the subtree under each dirty root chunk. `fam` is sorted
    // by bits, so dirty chunks appear in non-decreasing order — dedup with
    // a single "last chunk done" marker. The fresh subtree is appended to
    // the arenas and spliced in via the root entry's child index; the old
    // subtree's segments become unreachable garbage.
    let mut done: Option<usize> = None;
    for p in fam.iter().filter(|p| p.len > stride) {
        let chunk = chunk_of(p.bits, shift, stride);
        if done == Some(chunk) {
            continue;
        }
        done = Some(chunk);
        // All merged keys deeper than the root that fall in this chunk:
        // their bits share the chunk's `stride`-bit head, so they form a
        // contiguous range of the sorted list.
        let lo_bits = (chunk as u128) << shift;
        let hi_bits = lo_bits | (1u128 << shift).wrapping_sub(1);
        let from = merged.partition_point(|k| k.bits < lo_bits);
        let to = merged.partition_point(|k| k.bits <= hi_bits);
        let run: Vec<KeyRec> = match merged.get(from..to) {
            Some(range) => range.iter().filter(|k| k.len > stride).copied().collect(),
            None => Vec::new(),
        };
        let child = if run.is_empty() {
            NONE
        } else {
            build_node(&mut core.nodes, &mut core.entries, &run, stride)
        };
        if let Some(entry) = core.entries.get_mut(off.saturating_add(chunk)) {
            entry.child = child;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(s: &str) -> IpNet {
        s.parse().unwrap()
    }

    fn addr(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn base() -> FrozenLpm<&'static str> {
        let mut t = PrefixTrie::new();
        t.insert(net("0.0.0.0/0"), "default");
        t.insert(net("17.0.0.0/8"), "apple8");
        t.insert(net("17.5.0.0/16"), "apple16");
        t.insert(net("2620:149::/32"), "apple6");
        t.freeze()
    }

    #[test]
    fn empty_overlay_is_transparent() {
        let b = base();
        let d: DeltaOverlay<&str> = DeltaOverlay::new();
        assert!(d.is_empty());
        let a = addr("17.5.1.2");
        assert_eq!(d.longest_match(&b, a), b.longest_match(a));
        assert_eq!(d.exact(&b, &net("17.0.0.0/8")), b.exact(&net("17.0.0.0/8")));
        assert_eq!(d.covering(&b, a), b.covering(a));
    }

    #[test]
    fn announce_is_visible_and_more_specific_wins() {
        let b = base();
        let mut d = DeltaOverlay::new();
        d.announce(net("17.5.3.0/24"), "patched");
        let (n, v) = d.longest_match(&b, addr("17.5.3.9")).unwrap();
        assert_eq!((n, *v), (net("17.5.3.0/24"), "patched"));
        // Other addresses keep the base answer.
        let (n, _) = d.longest_match(&b, addr("17.5.4.9")).unwrap();
        assert_eq!(n, net("17.5.0.0/16"));
    }

    #[test]
    fn reannounce_shadows_base_value() {
        let b = base();
        let mut d = DeltaOverlay::new();
        d.announce(net("17.5.0.0/16"), "new16");
        let (n, v) = d.longest_match(&b, addr("17.5.1.2")).unwrap();
        assert_eq!((n, *v), (net("17.5.0.0/16"), "new16"));
        assert_eq!(d.exact(&b, &net("17.5.0.0/16")), Some(&"new16"));
    }

    #[test]
    fn withdraw_tombstones_and_falls_back() {
        let b = base();
        let mut d = DeltaOverlay::new();
        d.withdraw(&net("17.5.0.0/16"), &b);
        assert_eq!(d.tombstones(), 1);
        assert!(d.is_tombstoned(&net("17.5.0.0/16")));
        let (n, v) = d.longest_match(&b, addr("17.5.1.2")).unwrap();
        assert_eq!((n, *v), (net("17.0.0.0/8"), "apple8"));
        assert_eq!(d.exact(&b, &net("17.5.0.0/16")), None);
        // longest_match_net also skips the tombstone.
        let (n, _) = d.longest_match_net(&b, &net("17.5.3.0/24")).unwrap();
        assert_eq!(n, net("17.0.0.0/8"));
        // covering drops it too.
        let cov: Vec<_> = d
            .covering(&b, addr("17.5.1.2"))
            .iter()
            .map(|(n, _)| *n)
            .collect();
        assert_eq!(cov, vec![net("0.0.0.0/0"), net("17.0.0.0/8")]);
    }

    #[test]
    fn withdraw_then_reannounce_restores() {
        let b = base();
        let mut d = DeltaOverlay::new();
        d.withdraw(&net("17.5.0.0/16"), &b);
        d.announce(net("17.5.0.0/16"), "back");
        assert_eq!(d.tombstones(), 0);
        let (n, v) = d.longest_match(&b, addr("17.5.1.2")).unwrap();
        assert_eq!((n, *v), (net("17.5.0.0/16"), "back"));
    }

    #[test]
    fn withdraw_of_overlay_only_announce_removes_patch() {
        let b = base();
        let mut d = DeltaOverlay::new();
        d.announce(net("203.0.113.0/24"), "tmp");
        assert_eq!(d.len(), 1);
        d.withdraw(&net("203.0.113.0/24"), &b);
        assert!(d.is_empty());
        assert_eq!(
            d.longest_match(&b, addr("203.0.113.5")).map(|(n, _)| n),
            Some(net("0.0.0.0/0"))
        );
    }

    #[test]
    fn batch_matches_single_combined_lookups() {
        let b = base();
        let mut d = DeltaOverlay::new();
        d.announce(net("17.5.3.0/24"), "patched");
        d.withdraw(&net("17.0.0.0/8"), &b);
        let addrs: Vec<IpAddr> = ["17.5.3.9", "17.9.9.9", "17.5.1.2", "2620:149::1", "8.8.8.8"]
            .iter()
            .map(|s| addr(s))
            .collect();
        let mut out = Vec::new();
        d.lookup_batch(&b, &addrs, &mut out);
        assert_eq!(out.len(), addrs.len());
        for (a, got) in addrs.iter().zip(&out) {
            assert_eq!(*got, d.lookup(&b, *a), "{a}");
        }
    }

    #[test]
    fn leaf_flag_conservative_under_overlay() {
        let b = base();
        let mut d = DeltaOverlay::new();
        d.announce(net("17.5.3.0/24"), "inside16");
        // The /16 now has a live patch strictly inside it: its leaf flag
        // must drop so memos don't reuse the stale answer.
        let (n, _, leaf) = d.longest_match_leaf(&b, addr("17.5.4.9")).unwrap();
        assert_eq!(n, net("17.5.0.0/16"));
        assert!(!leaf);
        // Overlay-sourced answers are never leaves.
        let (n, _, leaf) = d.longest_match_leaf(&b, addr("17.5.3.9")).unwrap();
        assert_eq!(n, net("17.5.3.0/24"));
        assert!(!leaf);
        // Untouched subtrees keep their exact base flag.
        let (n, _, leaf) = d.longest_match_leaf(&b, addr("2620:149::1")).unwrap();
        assert_eq!(n, net("2620:149::/32"));
        assert!(leaf);
    }

    #[test]
    fn refreeze_subtree_matches_full_rebuild() {
        let mut t = PrefixTrie::new();
        for i in 0..64u32 {
            let a = std::net::Ipv4Addr::from(0x0A00_0000 | (i << 16));
            t.insert(crate::prefix::Ipv4Net::clamped(a, 16), i);
        }
        t.insert(net("0.0.0.0/0"), 999);
        let mut frozen = t.freeze();
        let mut d = DeltaOverlay::new();
        // Mutate: withdraw one /16, announce a /24 inside another, replace
        // the default route, and add a v6 prefix to the empty family.
        d.withdraw(&net("10.3.0.0/16"), &frozen);
        d.announce(net("10.5.9.0/24"), 777);
        d.announce(net("0.0.0.0/0"), 1000);
        d.announce(net("2620:149::/32"), 6666);
        t.remove(&net("10.3.0.0/16"));
        t.insert(net("10.5.9.0/24"), 777);
        t.insert(net("0.0.0.0/0"), 1000);
        t.insert(net("2620:149::/32"), 6666);

        frozen.refreeze_subtree(&d);
        let full = t.freeze();
        assert_eq!(frozen.len(), full.len());
        assert!(frozen.garbage() > 0, "superseded slots become garbage");
        for a in ["10.3.1.2", "10.5.9.1", "10.5.8.1", "10.40.0.1", "8.8.8.8"] {
            let a = addr(a);
            assert_eq!(
                frozen.longest_match(a).map(|(n, v)| (n, *v)),
                full.longest_match(a).map(|(n, v)| (n, *v)),
                "{a}"
            );
            assert_eq!(
                frozen.longest_match_leaf(a).map(|(n, _, l)| (n, l)),
                full.longest_match_leaf(a).map(|(n, _, l)| (n, l)),
                "leaf {a}"
            );
        }
        assert_eq!(
            frozen.longest_match(addr("2620:149::1")).map(|(_, v)| *v),
            Some(6666)
        );
        let mut got: Vec<String> = frozen.iter().map(|(n, _)| n.to_string()).collect();
        got.sort();
        let mut want: Vec<String> = full.iter().map(|(n, _)| n.to_string()).collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn refreeze_unshares_outstanding_snapshots() {
        let mut t = PrefixTrie::new();
        t.insert(net("10.0.0.0/8"), 1);
        t.insert(net("10.5.0.0/16"), 2);
        let mut live = t.freeze();
        let epoch0 = live.snapshot();
        assert!(live.is_shared());

        let mut d = DeltaOverlay::new();
        d.withdraw(&net("10.5.0.0/16"), &live);
        d.announce(net("10.6.0.0/16"), 3);
        live.refreeze_subtree(&d);

        // The snapshot still sees epoch 0...
        assert_eq!(
            epoch0.longest_match(addr("10.5.1.1")).map(|(_, v)| *v),
            Some(2)
        );
        assert!(epoch0.longest_match(addr("10.6.1.1")).map(|(_, v)| *v) == Some(1));
        // ...while the live table moved to epoch 1, now un-shared.
        assert_eq!(
            live.longest_match(addr("10.5.1.1")).map(|(_, v)| *v),
            Some(1)
        );
        assert_eq!(
            live.longest_match(addr("10.6.1.1")).map(|(_, v)| *v),
            Some(3)
        );
        assert!(!std::sync::Arc::ptr_eq(&live.core, &epoch0.core));
    }

    #[test]
    fn compaction_threshold_behaviour() {
        let d: DeltaOverlay<u8> = DeltaOverlay::new();
        assert!(!d.should_compact(0));
        let mut d = DeltaOverlay::new();
        for i in 0..MIN_COMPACT as u32 {
            let a = std::net::Ipv4Addr::from(0x0A00_0000 | (i << 8));
            d.announce(IpNet::V4(crate::prefix::Ipv4Net::clamped(a, 24)), 1u8);
        }
        // 64 patches vs a large base: not yet worth it.
        assert!(!d.should_compact(100_000));
        // 64 patches vs a small base: compact.
        assert!(d.should_compact(256));
    }
}
