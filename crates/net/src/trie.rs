//! A binary prefix trie with longest-prefix-match lookup.
//!
//! [`PrefixTrie`] maps CIDR prefixes of either family to values and answers
//! the three questions the reproduction keeps asking:
//!
//! * *exact*: is this precise prefix present (BGP RIB membership)?
//! * *longest match*: which announced prefix covers this address
//!   (route lookup, egress-subnet attribution, MaxMind-style geo lookup)?
//! * *covering set*: every stored prefix that contains an address
//!   (ECS scope bookkeeping).
//!
//! The trie stores IPv4 and IPv6 under separate roots, so cross-family
//! lookups can never alias. Bits are walked most-significant first; the
//! structure is a plain pointer trie — simple, allocation-per-node, and fast
//! enough that the RIB ablation bench shows it beating a linear scan by
//! orders of magnitude on realistic table sizes.

use std::net::IpAddr;

use crate::prefix::{IpNet, Ipv4Net, Ipv6Net};

#[derive(Debug, Clone)]
struct Node<V> {
    /// Child on the 0 bit.
    zero: Option<Box<Node<V>>>,
    /// Child on the 1 bit.
    one: Option<Box<Node<V>>>,
    /// Value stored at this depth, together with the original prefix.
    value: Option<(IpNet, V)>,
}

impl<V> Node<V> {
    fn new() -> Self {
        Node {
            zero: None,
            one: None,
            value: None,
        }
    }

    fn child(&self, one: bool) -> Option<&Node<V>> {
        if one {
            self.one.as_deref()
        } else {
            self.zero.as_deref()
        }
    }

    fn child_mut(&mut self, one: bool) -> Option<&mut Node<V>> {
        if one {
            self.one.as_deref_mut()
        } else {
            self.zero.as_deref_mut()
        }
    }

    fn child_slot_mut(&mut self, one: bool) -> &mut Option<Box<Node<V>>> {
        if one {
            &mut self.one
        } else {
            &mut self.zero
        }
    }

    fn is_leaf(&self) -> bool {
        self.zero.is_none() && self.one.is_none()
    }
}

/// Normalised key: prefix bits left-aligned in a `u128`, plus length.
#[derive(Clone, Copy)]
struct Key {
    bits: u128,
    len: u8,
    v4: bool,
}

impl Key {
    fn of_net(net: &IpNet) -> Key {
        match net {
            IpNet::V4(n) => {
                let (bits, len) = n.bits();
                Key {
                    bits: (bits as u128) << 96,
                    len,
                    v4: true,
                }
            }
            IpNet::V6(n) => {
                let (bits, len) = n.bits();
                Key {
                    bits,
                    len,
                    v4: false,
                }
            }
        }
    }

    fn of_addr(addr: &IpAddr) -> Key {
        match addr {
            IpAddr::V4(a) => Key {
                bits: (u32::from(*a) as u128) << 96,
                len: 32,
                v4: true,
            },
            IpAddr::V6(a) => Key {
                bits: u128::from(*a),
                len: 128,
                v4: false,
            },
        }
    }

    /// Bit at depth `d` (0 = most significant).
    #[inline]
    fn bit(&self, d: u8) -> bool {
        (self.bits >> (127 - d as u32)) & 1 == 1
    }
}

/// A map from CIDR prefixes to values with longest-prefix-match lookup.
///
/// ```
/// use tectonic_net::PrefixTrie;
///
/// let mut rib = PrefixTrie::new();
/// rib.insert("17.0.0.0/8".parse::<tectonic_net::IpNet>().unwrap(), "apple");
/// rib.insert("17.5.0.0/16".parse::<tectonic_net::IpNet>().unwrap(), "apple-dc");
/// let (prefix, value) = rib.longest_match("17.5.1.2".parse().unwrap()).unwrap();
/// assert_eq!(prefix.to_string(), "17.5.0.0/16");
/// assert_eq!(*value, "apple-dc");
/// ```
#[derive(Debug, Clone)]
pub struct PrefixTrie<V> {
    root_v4: Node<V>,
    root_v6: Node<V>,
    len: usize,
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PrefixTrie<V> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            root_v4: Node::new(),
            root_v6: Node::new(),
            len: 0,
        }
    }

    /// Number of stored prefixes (both families).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no prefix is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn root(&self, v4: bool) -> &Node<V> {
        if v4 {
            &self.root_v4
        } else {
            &self.root_v6
        }
    }

    fn root_mut(&mut self, v4: bool) -> &mut Node<V> {
        if v4 {
            &mut self.root_v4
        } else {
            &mut self.root_v6
        }
    }

    /// Inserts `value` under `net`, returning the previous value if the
    /// exact prefix was already present.
    pub fn insert(&mut self, net: impl Into<IpNet>, value: V) -> Option<V> {
        let net = net.into();
        let key = Key::of_net(&net);
        let mut node = self.root_mut(key.v4);
        for d in 0..key.len {
            let b = key.bit(d);
            node = node
                .child_slot_mut(b)
                .get_or_insert_with(|| Box::new(Node::new()));
        }
        let prev = node.value.replace((net, value));
        match prev {
            Some((_, v)) => Some(v),
            None => {
                self.len += 1;
                None
            }
        }
    }

    /// Looks up the exact prefix.
    pub fn exact(&self, net: &IpNet) -> Option<&V> {
        let key = Key::of_net(net);
        let mut node = self.root(key.v4);
        for d in 0..key.len {
            node = node.child(key.bit(d))?;
        }
        node.value.as_ref().map(|(_, v)| v)
    }

    /// Mutable exact-prefix lookup.
    pub fn exact_mut(&mut self, net: &IpNet) -> Option<&mut V> {
        let key = Key::of_net(net);
        let mut node = self.root_mut(key.v4);
        for d in 0..key.len {
            node = node.child_mut(key.bit(d))?;
        }
        node.value.as_mut().map(|(_, v)| v)
    }

    /// Whether the exact prefix is stored.
    pub fn contains(&self, net: &IpNet) -> bool {
        self.exact(net).is_some()
    }

    /// Removes the exact prefix, returning its value.
    ///
    /// Nodes are not pruned; for the simulation's insert-heavy workloads the
    /// memory difference is irrelevant and removals are rare (BGP withdraws).
    pub fn remove(&mut self, net: &IpNet) -> Option<V> {
        let key = Key::of_net(net);
        let mut node = self.root_mut(key.v4);
        for d in 0..key.len {
            node = node.child_mut(key.bit(d))?;
        }
        let prev = node.value.take();
        prev.map(|(_, v)| {
            self.len -= 1;
            v
        })
    }

    /// Longest-prefix match for an address: the most specific stored prefix
    /// containing `addr`, with its value.
    pub fn longest_match(&self, addr: IpAddr) -> Option<(IpNet, &V)> {
        let key = Key::of_addr(&addr);
        let mut node = self.root(key.v4);
        let mut best: Option<(IpNet, &V)> = node.value.as_ref().map(|(n, v)| (*n, v));
        for d in 0..key.len {
            match node.child(key.bit(d)) {
                Some(child) => {
                    node = child;
                    if let Some((n, v)) = node.value.as_ref() {
                        best = Some((*n, v));
                    }
                }
                None => break,
            }
        }
        best
    }

    /// [`longest_match`] plus a *leaf* flag used for memoised lookups.
    ///
    /// The flag is `true` only when the best match sits at the terminal node
    /// of the walk **and** that node has no children. In that case every
    /// other address inside the matched prefix takes the same walk and finds
    /// the same answer, so a caller may reuse the result for any address the
    /// prefix contains without consulting the trie again. When more-specific
    /// prefixes exist below the match the flag is `false` and no reuse is
    /// safe. ([`remove`] does not prune nodes, so stale interior nodes can
    /// only make the flag conservatively `false`, never wrongly `true`.)
    ///
    /// [`longest_match`]: PrefixTrie::longest_match
    /// [`remove`]: PrefixTrie::remove
    pub fn longest_match_leaf(&self, addr: IpAddr) -> Option<(IpNet, &V, bool)> {
        let key = Key::of_addr(&addr);
        let mut node = self.root(key.v4);
        let mut best: Option<(IpNet, &V)> = node.value.as_ref().map(|(n, v)| (*n, v));
        let mut best_is_current = best.is_some();
        for d in 0..key.len {
            match node.child(key.bit(d)) {
                Some(child) => {
                    node = child;
                    if let Some((n, v)) = node.value.as_ref() {
                        best = Some((*n, v));
                        best_is_current = true;
                    } else {
                        best_is_current = false;
                    }
                }
                None => break,
            }
        }
        let leaf = best_is_current && node.is_leaf();
        best.map(|(n, v)| (n, v, leaf))
    }

    /// Longest-prefix match for a whole prefix: the most specific stored
    /// prefix that fully contains `net`.
    pub fn longest_match_net(&self, net: &IpNet) -> Option<(IpNet, &V)> {
        let key = Key::of_net(net);
        let mut node = self.root(key.v4);
        let mut best: Option<(IpNet, &V)> = node.value.as_ref().map(|(n, v)| (*n, v));
        for d in 0..key.len {
            match node.child(key.bit(d)) {
                Some(child) => {
                    node = child;
                    if let Some((n, v)) = node.value.as_ref() {
                        best = Some((*n, v));
                    }
                }
                None => break,
            }
        }
        best
    }

    /// All stored prefixes containing `addr`, shortest first.
    pub fn covering(&self, addr: IpAddr) -> Vec<(IpNet, &V)> {
        let key = Key::of_addr(&addr);
        let mut node = self.root(key.v4);
        let mut out = Vec::new();
        if let Some((n, v)) = node.value.as_ref() {
            out.push((*n, v));
        }
        for d in 0..key.len {
            match node.child(key.bit(d)) {
                Some(child) => {
                    node = child;
                    if let Some((n, v)) = node.value.as_ref() {
                        out.push((*n, v));
                    }
                }
                None => break,
            }
        }
        out
    }

    /// Iterates over all `(prefix, value)` pairs, IPv4 first, in bit order.
    pub fn iter(&self) -> impl Iterator<Item = (IpNet, &V)> {
        // lintkit: allow(alloc-in-hot-path) -- reporting/setup code; the hot-path edge is a name collision (the graph links `labels.iter()` in the DNS encoder to this inherent `iter`)
        let mut out = Vec::with_capacity(self.len);
        collect(&self.root_v4, &mut out);
        collect(&self.root_v6, &mut out);
        out.into_iter()
    }

    /// Convenience: iterate only the IPv4 prefixes.
    pub fn iter_v4(&self) -> impl Iterator<Item = (Ipv4Net, &V)> {
        let mut out = Vec::new();
        collect(&self.root_v4, &mut out);
        out.into_iter().filter_map(|(n, v)| match n {
            IpNet::V4(n4) => Some((n4, v)),
            IpNet::V6(_) => None,
        })
    }

    /// Convenience: iterate only the IPv6 prefixes.
    pub fn iter_v6(&self) -> impl Iterator<Item = (Ipv6Net, &V)> {
        let mut out = Vec::new();
        collect(&self.root_v6, &mut out);
        out.into_iter().filter_map(|(n, v)| match n {
            IpNet::V6(n6) => Some((n6, v)),
            IpNet::V4(_) => None,
        })
    }
}

fn collect<'a, V>(node: &'a Node<V>, out: &mut Vec<(IpNet, &'a V)>) {
    if let Some((n, v)) = node.value.as_ref() {
        out.push((*n, v));
    }
    for child in [node.zero.as_deref(), node.one.as_deref()]
        .into_iter()
        .flatten()
    {
        collect(child, out);
    }
}

impl<V> FromIterator<(IpNet, V)> for PrefixTrie<V> {
    fn from_iter<T: IntoIterator<Item = (IpNet, V)>>(iter: T) -> Self {
        let mut t = PrefixTrie::new();
        for (n, v) in iter {
            t.insert(n, v);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::IpAddr;

    fn net(s: &str) -> IpNet {
        s.parse().unwrap()
    }

    fn addr(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn insert_and_exact() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(net("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(net("10.0.0.0/16"), 2), None);
        assert_eq!(t.insert(net("10.0.0.0/8"), 3), Some(1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.exact(&net("10.0.0.0/8")), Some(&3));
        assert_eq!(t.exact(&net("10.0.0.0/16")), Some(&2));
        assert_eq!(t.exact(&net("10.0.0.0/24")), None);
    }

    #[test]
    fn longest_match_prefers_specific() {
        let mut t = PrefixTrie::new();
        t.insert(net("0.0.0.0/0"), "default");
        t.insert(net("17.0.0.0/8"), "apple8");
        t.insert(net("17.5.0.0/16"), "apple16");
        let (n, v) = t.longest_match(addr("17.5.1.2")).unwrap();
        assert_eq!(n, net("17.5.0.0/16"));
        assert_eq!(*v, "apple16");
        let (n, v) = t.longest_match(addr("17.9.9.9")).unwrap();
        assert_eq!(n, net("17.0.0.0/8"));
        assert_eq!(*v, "apple8");
        let (n, _) = t.longest_match(addr("8.8.8.8")).unwrap();
        assert_eq!(n, net("0.0.0.0/0"));
    }

    #[test]
    fn longest_match_leaf_flags_reusable_matches() {
        let mut t = PrefixTrie::new();
        t.insert(net("17.0.0.0/8"), "apple8");
        t.insert(net("17.5.0.0/16"), "apple16");
        // Match at the /16: terminal node, no children → leaf.
        let (n, _, leaf) = t.longest_match_leaf(addr("17.5.1.2")).unwrap();
        assert_eq!(n, net("17.5.0.0/16"));
        assert!(leaf);
        // Match at the /8 found on the way to the deeper /16 branch: the
        // walk continues past it, so the answer is not reusable.
        let (n, _, leaf) = t.longest_match_leaf(addr("17.5.255.1")).unwrap();
        assert_eq!(n, net("17.5.0.0/16"));
        assert!(leaf);
        let (n, _, leaf) = t.longest_match_leaf(addr("17.9.9.9")).unwrap();
        assert_eq!(n, net("17.0.0.0/8"));
        assert!(!leaf, "/8 has a more-specific branch below it");
        assert!(t.longest_match_leaf(addr("8.8.8.8")).is_none());
    }

    #[test]
    fn longest_match_leaf_after_remove_is_conservative() {
        let mut t = PrefixTrie::new();
        t.insert(net("10.0.0.0/8"), 8);
        t.insert(net("10.0.0.0/16"), 16);
        t.remove(&net("10.0.0.0/16"));
        // Nodes are not pruned, so the /8 must not be flagged a leaf even
        // though no more-specific *value* remains — conservative is fine,
        // wrongly-true would corrupt memoised lookups.
        let (n, v, leaf) = t.longest_match_leaf(addr("10.0.0.1")).unwrap();
        assert_eq!(n, net("10.0.0.0/8"));
        assert_eq!(*v, 8);
        assert!(!leaf);
    }

    #[test]
    fn no_match_without_default() {
        let mut t = PrefixTrie::new();
        t.insert(net("192.0.2.0/24"), ());
        assert!(t.longest_match(addr("198.51.100.1")).is_none());
    }

    #[test]
    fn families_do_not_alias() {
        let mut t = PrefixTrie::new();
        // ::/96-embedded bit patterns must not collide with IPv4.
        t.insert(net("10.0.0.0/8"), "v4");
        t.insert(net("a00::/8"), "v6");
        assert_eq!(t.longest_match(addr("10.1.1.1")).unwrap().1, &"v4");
        assert_eq!(t.longest_match(addr("a00::1")).unwrap().1, &"v6");
        // The v4-mapped v6 address must not hit the v4 entry.
        assert!(t.longest_match(addr("::ffff:10.0.0.1")).is_none());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn default_routes_per_family() {
        let mut t = PrefixTrie::new();
        t.insert(net("0.0.0.0/0"), "v4d");
        t.insert(net("::/0"), "v6d");
        assert_eq!(t.longest_match(addr("1.2.3.4")).unwrap().1, &"v4d");
        assert_eq!(t.longest_match(addr("2001:db8::1")).unwrap().1, &"v6d");
    }

    #[test]
    fn remove_restores_shorter_match() {
        let mut t = PrefixTrie::new();
        t.insert(net("10.0.0.0/8"), 8);
        t.insert(net("10.0.0.0/16"), 16);
        assert_eq!(t.remove(&net("10.0.0.0/16")), Some(16));
        assert_eq!(t.remove(&net("10.0.0.0/16")), None);
        assert_eq!(t.len(), 1);
        let (n, _) = t.longest_match(addr("10.0.0.1")).unwrap();
        assert_eq!(n, net("10.0.0.0/8"));
    }

    #[test]
    fn covering_lists_shortest_first() {
        let mut t = PrefixTrie::new();
        t.insert(net("0.0.0.0/0"), 0);
        t.insert(net("100.0.0.0/8"), 8);
        t.insert(net("100.64.0.0/10"), 10);
        t.insert(net("100.64.3.0/24"), 24);
        t.insert(net("200.0.0.0/8"), 99);
        let cov: Vec<u8> = t
            .covering(addr("100.64.3.9"))
            .into_iter()
            .map(|(_, v)| *v as u8)
            .collect();
        assert_eq!(cov, vec![0, 8, 10, 24]);
    }

    #[test]
    fn longest_match_net_containment() {
        let mut t = PrefixTrie::new();
        t.insert(net("203.0.0.0/8"), "short");
        t.insert(net("203.0.113.0/24"), "long");
        let (n, v) = t.longest_match_net(&net("203.0.113.128/25")).unwrap();
        assert_eq!(n, net("203.0.113.0/24"));
        assert_eq!(*v, "long");
        // A /16 is only contained by the /8.
        let (n, _) = t.longest_match_net(&net("203.0.0.0/16")).unwrap();
        assert_eq!(n, net("203.0.0.0/8"));
        // Equal prefix matches itself.
        let (n, _) = t.longest_match_net(&net("203.0.113.0/24")).unwrap();
        assert_eq!(n, net("203.0.113.0/24"));
    }

    #[test]
    fn iter_yields_everything() {
        let nets = [
            "0.0.0.0/0",
            "17.0.0.0/8",
            "2620:149::/32",
            "17.5.0.0/16",
            "::/0",
        ];
        let t: PrefixTrie<usize> = nets.iter().enumerate().map(|(i, s)| (net(s), i)).collect();
        assert_eq!(t.len(), nets.len());
        let mut seen: Vec<String> = t.iter().map(|(n, _)| n.to_string()).collect();
        seen.sort();
        let mut want: Vec<String> = nets.iter().map(|s| net(s).to_string()).collect();
        want.sort();
        assert_eq!(seen, want);
        assert_eq!(t.iter_v4().count(), 3);
        assert_eq!(t.iter_v6().count(), 2);
    }

    #[test]
    fn exact_mut_updates_in_place() {
        let mut t = PrefixTrie::new();
        t.insert(net("192.0.2.0/24"), 1);
        *t.exact_mut(&net("192.0.2.0/24")).unwrap() += 10;
        assert_eq!(t.exact(&net("192.0.2.0/24")), Some(&11));
        assert!(t.exact_mut(&net("192.0.3.0/24")).is_none());
    }

    #[test]
    fn host_prefixes_work() {
        let mut t = PrefixTrie::new();
        t.insert(net("198.51.100.7/32"), "host");
        t.insert(net("2001:db8::1/128"), "host6");
        assert_eq!(t.longest_match(addr("198.51.100.7")).unwrap().1, &"host");
        assert!(t.longest_match(addr("198.51.100.8")).is_none());
        assert_eq!(t.longest_match(addr("2001:db8::1")).unwrap().1, &"host6");
    }
}
