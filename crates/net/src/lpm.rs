//! A compiled, immutable longest-prefix-match engine.
//!
//! [`FrozenLpm`] is the steady-state counterpart of [`PrefixTrie`]: the trie
//! stays the build-side structure (incremental inserts, withdrawals), and
//! [`PrefixTrie::freeze`] compiles its current contents into a flat
//! multi-bit-stride table in the LC-trie / tree-bitmap tradition —
//! a contiguous node array addressed by `u32` indices instead of per-node
//! `Box` pointers, with all values in one arena. A lookup consumes 8 or 16
//! address bits per step, so an IPv4 match costs at most three dependent
//! memory accesses (IPv6: sixteen) instead of up to 32 (128) pointer
//! chases, and the node array is cache-resident for realistic table sizes.
//!
//! Every query API is result-identical to the trie it was frozen from:
//! [`longest_match`](FrozenLpm::longest_match), [`exact`](FrozenLpm::exact),
//! [`covering`](FrozenLpm::covering) and
//! [`longest_match_net`](FrozenLpm::longest_match_net) agree with their
//! [`PrefixTrie`] namesakes on every input (property-tested in
//! `tests/prop_prefix_trie.rs`). [`lookup_batch`](FrozenLpm::lookup_batch)
//! resolves a burst of addresses in interleaved lock-step so the dependent
//! load chains of four lookups overlap in the memory pipeline.
//!
//! Mutation under churn no longer means "throw the table away": the
//! [`overlay`](crate::overlay) module layers a bounded
//! [`DeltaOverlay`](crate::overlay::DeltaOverlay) of exact-prefix patches on
//! top of a frozen base, and
//! [`refreeze_subtree`](FrozenLpm::refreeze_subtree) folds the patches back
//! in by rebuilding only the affected root-stride subtrees. The arenas sit
//! behind one shared [`Arc`], so [`snapshot`](FrozenLpm::snapshot) hands out
//! copy-on-write epoch views: k historical snapshots share one arena until
//! a later compaction actually diverges from them.

use std::net::IpAddr;
use std::sync::Arc;

use crate::prefix::IpNet;
use crate::trie::PrefixTrie;

/// Sentinel for "no node / no value" in the `u32` index space.
pub(crate) const NONE: u32 = u32::MAX;

/// The root stride switches from 8 to 16 bits once a family holds this many
/// prefixes: a 64 Ki-entry root costs 512 KiB, which only pays for itself on
/// RIB-sized tables.
pub(crate) const WIDE_ROOT_MIN: usize = 4096;

/// One multi-bit node: a block of `1 << stride` entries in the shared entry
/// arena, plus the value stored exactly at the node's base depth (a prefix
/// whose length equals the number of bits consumed to reach the node).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Node {
    /// First entry of this node's block in `Core::entries`.
    pub(crate) entries_off: u32,
    /// Value index for a prefix of length exactly `base`, or `NONE`.
    pub(crate) value: u32,
    /// Bits consumed before this node (depth of its base).
    pub(crate) base: u8,
    /// Bits this node consumes (entry block is `1 << stride` long).
    pub(crate) stride: u8,
}

/// One entry: the child node for the chunk, and the most specific stored
/// prefix whose length falls inside this node and which covers the chunk.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Entry {
    pub(crate) child: u32,
    pub(crate) value: u32,
}

pub(crate) const EMPTY_ENTRY: Entry = Entry {
    child: NONE,
    value: NONE,
};

/// A compiled prefix key: bits left-aligned in a `u128` (IPv4 shifted into
/// the top 32 bits, exactly like the trie's internal key), the prefix
/// length, and the value-arena index.
#[derive(Debug, Clone, Copy)]
pub(crate) struct KeyRec {
    pub(crate) bits: u128,
    pub(crate) len: u8,
    pub(crate) value: u32,
}

pub(crate) fn mask_bits(bits: u128, len: u8) -> u128 {
    if len == 0 {
        0
    } else {
        bits & (u128::MAX << 128u32.saturating_sub(u32::from(len)))
    }
}

/// The `stride`-bit chunk of `bits` at `shift` — masked *before* the
/// narrowing cast, so the conversion is total (a chunk is at most 16 bits).
#[inline]
pub(crate) fn chunk_of(bits: u128, shift: u32, stride: u8) -> usize {
    let width = u32::from(stride).min(127);
    let mask = (1u128 << width).saturating_sub(1);
    ((bits >> shift) & mask) as usize
}

/// Value/node/entry arena index for a `len()` — clamped to the `NONE`
/// sentinel on overflow. An arena of 2^32 entries cannot exist (each entry
/// is > 8 bytes), so the clamp only turns an impossible state into a miss
/// instead of a wrong match.
pub(crate) fn arena_idx(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(NONE)
}

/// Reusable walk state for the batch lookup kernel
/// ([`FrozenLpm::lookup_batch_in`] /
/// [`FrozenLpm::lookup_batch_map_in`]). A caller that keeps one scratch
/// across bursts pays zero allocations per batch once its vectors have
/// grown to the burst size.
#[derive(Debug)]
pub struct BatchScratch {
    /// Per-lane state: (address bits, current node, best value so far).
    lanes: Vec<(u128, u32, u32)>,
    /// Lanes that still have a child to follow, compacted each pass.
    active: Vec<u32>,
    /// Next pass's `active`, swapped in at the end of each level.
    next: Vec<u32>,
}

impl BatchScratch {
    /// An empty scratch; the vectors grow to the first burst's size and
    /// are reused afterwards.
    pub fn new() -> BatchScratch {
        BatchScratch {
            // lintkit: allow(alloc-in-hot-path) -- capacity-zero Vec::new touches no heap; growth is amortized by scratch reuse
            lanes: Vec::new(),
            // lintkit: allow(alloc-in-hot-path) -- capacity-zero Vec::new touches no heap; growth is amortized by scratch reuse
            active: Vec::new(),
            // lintkit: allow(alloc-in-hot-path) -- capacity-zero Vec::new touches no heap; growth is amortized by scratch reuse
            next: Vec::new(),
        }
    }
}

impl Default for BatchScratch {
    fn default() -> BatchScratch {
        BatchScratch::new()
    }
}

pub(crate) fn addr_bits(addr: &IpAddr) -> (u128, bool) {
    match addr {
        IpAddr::V4(a) => ((u32::from(*a) as u128) << 96, true),
        IpAddr::V6(a) => (u128::from(*a), false),
    }
}

pub(crate) fn net_bits(net: &IpNet) -> (u128, u8, bool) {
    match net {
        IpNet::V4(n) => {
            let (bits, len) = n.bits();
            ((bits as u128) << 96, len, true)
        }
        IpNet::V6(n) => {
            let (bits, len) = n.bits();
            (bits, len, false)
        }
    }
}

/// The arenas behind a [`FrozenLpm`], shared copy-on-write between the
/// live table and its epoch [snapshots](FrozenLpm::snapshot). After a
/// [`refreeze_subtree`](FrozenLpm::refreeze_subtree) the node/entry/value
/// arenas may carry unreachable (garbage) segments left behind by rebuilt
/// subtrees; `keys_v4`/`keys_v6` always hold exactly the live prefixes.
#[derive(Debug, Clone)]
pub(crate) struct Core<V> {
    pub(crate) nodes: Vec<Node>,
    pub(crate) entries: Vec<Entry>,
    /// Value arena: every live `(prefix, value)` pair, plus (after subtree
    /// compaction) superseded slots no key references any more.
    pub(crate) values: Vec<(IpNet, V)>,
    /// `leaf[i]` — no stored prefix is strictly more specific than
    /// `values[i].0`, so its match is reusable for any address it contains.
    pub(crate) leaf: Vec<bool>,
    /// Per-family keys sorted by `(bits, len)`, for the exact-membership
    /// queries (`exact`, `covering`, `longest_match_net`).
    pub(crate) keys_v4: Vec<KeyRec>,
    pub(crate) keys_v6: Vec<KeyRec>,
    /// Distinct prefix lengths per family, ascending — bounds the probe
    /// loops of `covering` / `longest_match_net`.
    pub(crate) lens_v4: Vec<u8>,
    pub(crate) lens_v6: Vec<u8>,
    pub(crate) root_v4: u32,
    pub(crate) root_v6: u32,
}

/// An immutable, flat-layout longest-prefix-match snapshot of a
/// [`PrefixTrie`].
///
/// Built with [`PrefixTrie::freeze`]; see the module docs for the layout.
/// The snapshot owns clones of the trie's values, so the trie remains free
/// to mutate afterwards. Consumers either re-freeze when they need the
/// changes, or absorb them incrementally through a
/// [`DeltaOverlay`](crate::overlay::DeltaOverlay) +
/// [`refreeze_subtree`](FrozenLpm::refreeze_subtree).
///
/// ```
/// use tectonic_net::{IpNet, PrefixTrie};
///
/// let mut trie = PrefixTrie::new();
/// trie.insert("17.0.0.0/8".parse::<IpNet>().unwrap(), "apple");
/// trie.insert("17.5.0.0/16".parse::<IpNet>().unwrap(), "apple-dc");
/// let lpm = trie.freeze();
/// let (prefix, value) = lpm.longest_match("17.5.1.2".parse().unwrap()).unwrap();
/// assert_eq!(prefix.to_string(), "17.5.0.0/16");
/// assert_eq!(*value, "apple-dc");
/// ```
#[derive(Debug)]
pub struct FrozenLpm<V> {
    pub(crate) core: Arc<Core<V>>,
}

/// Cloning a [`FrozenLpm`] is an [`Arc`] bump — the arenas are shared, not
/// copied — so it needs no `V: Clone` bound (unlike the derived impl).
impl<V> Clone for FrozenLpm<V> {
    fn clone(&self) -> Self {
        FrozenLpm {
            core: Arc::clone(&self.core),
        }
    }
}

impl<V: Clone> PrefixTrie<V> {
    /// Compiles the trie's current contents into a [`FrozenLpm`] snapshot.
    ///
    /// The trie stays usable (and mutable) as the build-side structure; the
    /// snapshot does not track later inserts or removals.
    pub fn freeze(&self) -> FrozenLpm<V> {
        FrozenLpm::from_pairs(self.iter().map(|(n, v)| (n, v.clone())))
    }
}

impl<V> FrozenLpm<V> {
    /// Compiles an explicit `(prefix, value)` list. Later duplicates of the
    /// same prefix replace earlier ones, matching repeated trie inserts.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (IpNet, V)>) -> FrozenLpm<V> {
        // Sort once by (family, bits, len, arrival); equal prefixes then sit
        // adjacent with the latest last, so duplicate resolution is a linear
        // sweep and a paper-scale freeze stays O(n log n).
        struct Raw<V> {
            v4: bool,
            bits: u128,
            len: u8,
            seq: usize,
            net: IpNet,
            value: V,
        }
        let mut raw: Vec<Raw<V>> = pairs
            .into_iter()
            .enumerate()
            .map(|(seq, (net, value))| {
                let (bits, len, v4) = net_bits(&net);
                Raw {
                    v4,
                    bits,
                    len,
                    seq,
                    net,
                    value,
                }
            })
            .collect();
        raw.sort_by_key(|a| (a.v4, a.bits, a.len, a.seq));

        let mut values: Vec<(IpNet, V)> = Vec::with_capacity(raw.len());
        let mut keys_v4: Vec<KeyRec> = Vec::new();
        let mut keys_v6: Vec<KeyRec> = Vec::new();
        let mut raw = raw.into_iter().peekable();
        while let Some(r) = raw.next() {
            // A later duplicate of the same prefix replaces this one
            // (trie-insert semantics): keep only the last of each run.
            let superseded = matches!(
                raw.peek(),
                Some(n) if n.v4 == r.v4 && n.bits == r.bits && n.len == r.len
            );
            if superseded {
                continue;
            }
            let idx = arena_idx(values.len());
            values.push((r.net, r.value));
            let keys = if r.v4 { &mut keys_v4 } else { &mut keys_v6 };
            keys.push(KeyRec {
                bits: r.bits,
                len: r.len,
                value: idx,
            });
        }
        // The (family, bits, len) sort above leaves each family's keys in
        // exactly the (bits, len) order the query paths rely on.

        let mut core = Core {
            nodes: Vec::new(),
            entries: Vec::new(),
            values,
            leaf: Vec::new(),
            keys_v4,
            keys_v6,
            lens_v4: Vec::new(),
            lens_v6: Vec::new(),
            root_v4: NONE,
            root_v6: NONE,
        };
        rebuild_leaf(&mut core);
        core.root_v4 = build_node(&mut core.nodes, &mut core.entries, &core.keys_v4, 0);
        core.root_v6 = build_node(&mut core.nodes, &mut core.entries, &core.keys_v6, 0);
        core.lens_v4 = distinct_lens(&core.keys_v4);
        core.lens_v6 = distinct_lens(&core.keys_v6);
        FrozenLpm {
            core: Arc::new(core),
        }
    }

    /// Number of stored prefixes (both families). Counted from the key
    /// lists, not the value arena — after a
    /// [`refreeze_subtree`](FrozenLpm::refreeze_subtree) the arena may hold
    /// superseded slots that no longer exist logically.
    pub fn len(&self) -> usize {
        self.core
            .keys_v4
            .len()
            .saturating_add(self.core.keys_v6.len())
    }

    /// `true` when no prefix is stored.
    pub fn is_empty(&self) -> bool {
        self.core.keys_v4.is_empty() && self.core.keys_v6.is_empty()
    }

    /// Unreachable value-arena slots left behind by subtree compactions —
    /// the owner's signal that a full rebuild would pay for itself.
    pub fn garbage(&self) -> usize {
        self.core.values.len().saturating_sub(self.len())
    }

    /// A cheap copy-on-write epoch snapshot: the returned handle shares
    /// this table's arenas (one `Arc` bump, no copy). Later
    /// [`refreeze_subtree`](FrozenLpm::refreeze_subtree) calls on either
    /// handle un-share first, so each snapshot keeps observing exactly the
    /// epoch it was taken at — k historical views cost k `Arc`s until a
    /// mutation actually diverges.
    pub fn snapshot(&self) -> FrozenLpm<V> {
        self.clone()
    }

    /// Whether this handle shares its arenas with at least one snapshot —
    /// the next [`refreeze_subtree`](FrozenLpm::refreeze_subtree) on it
    /// will pay a one-time un-sharing copy.
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.core) > 1
    }

    /// Walks the compiled table for left-aligned address bits, returning
    /// the value-arena index of the most specific match (or `NONE`).
    #[inline]
    fn lookup_idx(&self, bits: u128, v4: bool) -> u32 {
        let mut idx = if v4 {
            self.core.root_v4
        } else {
            self.core.root_v6
        };
        let mut best = NONE;
        while let Some(node) = self.core.nodes.get(idx as usize) {
            if node.value != NONE {
                best = node.value;
            }
            let shift = 128u32.saturating_sub(node.base as u32 + node.stride as u32);
            let chunk = chunk_of(bits, shift, node.stride);
            match self.core.entries.get(node.entries_off as usize + chunk) {
                Some(e) => {
                    if e.value != NONE {
                        best = e.value;
                    }
                    idx = e.child;
                }
                None => break,
            }
        }
        best
    }

    /// Longest-prefix match for an address — identical to
    /// [`PrefixTrie::longest_match`] on the frozen contents.
    pub fn longest_match(&self, addr: IpAddr) -> Option<(IpNet, &V)> {
        let (bits, v4) = addr_bits(&addr);
        let best = self.lookup_idx(bits, v4);
        self.core.values.get(best as usize).map(|(n, v)| (*n, v))
    }

    /// Alias for [`longest_match`](FrozenLpm::longest_match) — the
    /// route-lookup verb used by the RIB.
    #[inline]
    pub fn lookup(&self, addr: IpAddr) -> Option<(IpNet, &V)> {
        self.longest_match(addr)
    }

    /// [`longest_match`](FrozenLpm::longest_match) restricted to prefixes
    /// the `keep` predicate accepts. This is the overlay's tombstone slow
    /// path: when the walk's best match has been withdrawn in the overlay,
    /// the next-best *surviving* covering prefix is found by probing the
    /// stored prefix lengths descending — O(distinct lens × log n), paid
    /// only on tombstone hits, never in steady state.
    pub fn longest_match_where(
        &self,
        addr: IpAddr,
        keep: impl FnMut(&IpNet) -> bool,
    ) -> Option<(IpNet, &V)> {
        let (bits, v4) = addr_bits(&addr);
        let width: u8 = if v4 { 32 } else { 128 };
        self.match_bits_where(bits, width, v4, keep)
    }

    /// [`longest_match_net`](FrozenLpm::longest_match_net) restricted to
    /// prefixes the `keep` predicate accepts (the overlay's tombstone
    /// filter for whole-prefix queries).
    pub fn longest_match_net_where(
        &self,
        net: &IpNet,
        keep: impl FnMut(&IpNet) -> bool,
    ) -> Option<(IpNet, &V)> {
        let (bits, len, v4) = net_bits(net);
        self.match_bits_where(bits, len, v4, keep)
    }

    fn match_bits_where(
        &self,
        bits: u128,
        len: u8,
        v4: bool,
        mut keep: impl FnMut(&IpNet) -> bool,
    ) -> Option<(IpNet, &V)> {
        for l in self.lens(v4).iter().rev().copied() {
            if l > len {
                continue;
            }
            if let Some(key) = self.find_key(mask_bits(bits, l), l, v4) {
                if let Some((n, v)) = self.core.values.get(key.value as usize) {
                    if keep(n) {
                        return Some((*n, v));
                    }
                }
            }
        }
        None
    }

    /// [`longest_match`](FrozenLpm::longest_match) plus a *leaf* flag for
    /// memoised lookups, mirroring [`PrefixTrie::longest_match_leaf`].
    ///
    /// The frozen flag is exact where the trie's is conservative: it is
    /// `true` iff no stored prefix is strictly more specific than the
    /// match, the precise condition under which the answer is reusable for
    /// every address the matched prefix contains. (The trie reports `false`
    /// for matches above unpruned interior nodes; both flags are safe, the
    /// frozen one just memoises more.)
    pub fn longest_match_leaf(&self, addr: IpAddr) -> Option<(IpNet, &V, bool)> {
        let (bits, v4) = addr_bits(&addr);
        let best = self.lookup_idx(bits, v4);
        let leaf = self.core.leaf.get(best as usize).copied().unwrap_or(false);
        self.core
            .values
            .get(best as usize)
            .map(|(n, v)| (*n, v, leaf))
    }

    /// Resolves a burst of addresses in one call, writing one
    /// `Option<(prefix, &value)>` per input address (`out` is cleared
    /// first). Results are exactly `addrs.iter().map(|a| lookup(*a))`.
    ///
    /// The walk is level-synchronous: every pass advances all still-live
    /// lookups one node, so within a pass the node/entry loads of different
    /// addresses are independent and overlap in the memory pipeline instead
    /// of serialising down one walk at a time — which is where a batch
    /// beats N single calls on tables larger than the cache.
    pub fn lookup_batch<'a>(&'a self, addrs: &[IpAddr], out: &mut Vec<Option<(IpNet, &'a V)>>) {
        self.lookup_batch_map(addrs, out, |m| m);
    }

    /// [`lookup_batch`](FrozenLpm::lookup_batch) against caller-owned walk
    /// state: with a reused [`BatchScratch`] the whole batch runs without
    /// touching the allocator once the scratch has grown to the burst size.
    pub fn lookup_batch_in<'a>(
        &'a self,
        scratch: &mut BatchScratch,
        addrs: &[IpAddr],
        out: &mut Vec<Option<(IpNet, &'a V)>>,
    ) {
        self.lookup_batch_map_in(scratch, addrs, out, |m| m);
    }

    /// [`lookup_batch`](FrozenLpm::lookup_batch) with an inline projection:
    /// each raw match is passed through `f` before landing in `out`, so
    /// callers that store a derived type (the RIB keeps `(prefix, origin)`)
    /// reuse their typed buffer with no intermediate allocation. Allocates
    /// fresh walk state per call — batch loops should hold a
    /// [`BatchScratch`] and use
    /// [`lookup_batch_map_in`](FrozenLpm::lookup_batch_map_in) instead.
    pub fn lookup_batch_map<'a, T>(
        &'a self,
        addrs: &[IpAddr],
        out: &mut Vec<T>,
        f: impl FnMut(Option<(IpNet, &'a V)>) -> T,
    ) {
        let mut scratch = BatchScratch::new();
        self.lookup_batch_map_in(&mut scratch, addrs, out, f);
    }

    /// The allocation-free batch kernel: walk state lives in `scratch`,
    /// results in `out`, both owned by the caller and reused across bursts.
    ///
    /// Invocation-order contract: `f` is called exactly once per input
    /// address, in input order (lane `k` of the final drain corresponds to
    /// `addrs[k]`). The overlay's combined batch lookup relies on this to
    /// pair each raw frozen match with its address without allocating.
    pub fn lookup_batch_map_in<'a, T>(
        &'a self,
        scratch: &mut BatchScratch,
        addrs: &[IpAddr],
        out: &mut Vec<T>,
        mut f: impl FnMut(Option<(IpNet, &'a V)>) -> T,
    ) {
        out.clear();
        out.reserve(addrs.len());
        // Per-lane walk state: (address bits, current node, best value).
        // Lanes that still have a child to follow are kept in `active`,
        // compacted each pass so finished walks cost nothing on deeper
        // levels.
        let BatchScratch {
            lanes,
            active,
            next,
        } = scratch;
        lanes.clear();
        lanes.extend(addrs.iter().map(|a| {
            let (b, v4) = addr_bits(a);
            (
                b,
                if v4 {
                    self.core.root_v4
                } else {
                    self.core.root_v6
                },
                NONE,
            )
        }));
        active.clear();
        active.extend(0..arena_idx(lanes.len()));
        while !active.is_empty() {
            next.clear();
            for &k in active.iter() {
                let Some(lane) = lanes.get_mut(k as usize) else {
                    continue;
                };
                let Some(node) = self.core.nodes.get(lane.1 as usize) else {
                    continue;
                };
                let mut found = node.value;
                let shift = 128u32.saturating_sub(node.base as u32 + node.stride as u32);
                let chunk = chunk_of(lane.0, shift, node.stride);
                let child = match self.core.entries.get(node.entries_off as usize + chunk) {
                    Some(e) => {
                        if e.value != NONE {
                            found = e.value;
                        }
                        e.child
                    }
                    None => NONE,
                };
                if found != NONE {
                    lane.2 = found;
                }
                lane.1 = child;
                if (child as usize) < self.core.nodes.len() {
                    next.push(k);
                }
            }
            core::mem::swap(active, next);
        }
        for lane in lanes.iter() {
            out.push(f(self
                .core
                .values
                .get(lane.2 as usize)
                .map(|(n, v)| (*n, v))));
        }
    }

    pub(crate) fn keys(&self, v4: bool) -> &[KeyRec] {
        if v4 {
            &self.core.keys_v4
        } else {
            &self.core.keys_v6
        }
    }

    fn lens(&self, v4: bool) -> &[u8] {
        if v4 {
            &self.core.lens_v4
        } else {
            &self.core.lens_v6
        }
    }

    pub(crate) fn find_key(&self, bits: u128, len: u8, v4: bool) -> Option<&KeyRec> {
        let keys = self.keys(v4);
        keys.binary_search_by(|k| (k.bits, k.len).cmp(&(bits, len)))
            .ok()
            .and_then(|at| keys.get(at))
    }

    /// Exact-prefix lookup — identical to [`PrefixTrie::exact`].
    pub fn exact(&self, net: &IpNet) -> Option<&V> {
        let (bits, len, v4) = net_bits(net);
        let key = self.find_key(bits, len, v4)?;
        self.core.values.get(key.value as usize).map(|(_, v)| v)
    }

    /// Whether the exact prefix is stored.
    pub fn contains(&self, net: &IpNet) -> bool {
        self.exact(net).is_some()
    }

    /// All stored prefixes containing `addr`, shortest first — identical to
    /// [`PrefixTrie::covering`]. Probes only the prefix lengths that occur
    /// in the table, one binary search each.
    pub fn covering(&self, addr: IpAddr) -> Vec<(IpNet, &V)> {
        let (bits, v4) = addr_bits(&addr);
        let width: u8 = if v4 { 32 } else { 128 };
        let mut out = Vec::new();
        for len in self.lens(v4).iter().copied() {
            if len > width {
                break;
            }
            if let Some(key) = self.find_key(mask_bits(bits, len), len, v4) {
                if let Some((n, v)) = self.core.values.get(key.value as usize) {
                    out.push((*n, v));
                }
            }
        }
        out
    }

    /// The most specific stored prefix fully containing `net` (possibly
    /// `net` itself) — identical to [`PrefixTrie::longest_match_net`].
    pub fn longest_match_net(&self, net: &IpNet) -> Option<(IpNet, &V)> {
        let (bits, len, v4) = net_bits(net);
        for l in self.lens(v4).iter().rev().copied() {
            if l > len {
                continue;
            }
            if let Some(key) = self.find_key(mask_bits(bits, l), l, v4) {
                return self
                    .core
                    .values
                    .get(key.value as usize)
                    .map(|(n, v)| (*n, v));
            }
        }
        None
    }

    /// Iterates over all stored `(prefix, value)` pairs, IPv4 first, in
    /// ascending bit order.
    pub fn iter(&self) -> impl Iterator<Item = (IpNet, &V)> {
        self.core
            .keys_v4
            .iter()
            .chain(self.core.keys_v6.iter())
            .filter_map(|k| self.core.values.get(k.value as usize))
            .map(|(n, v)| (*n, v))
    }
}

pub(crate) fn distinct_lens(keys: &[KeyRec]) -> Vec<u8> {
    let mut lens: Vec<u8> = keys.iter().map(|k| k.len).collect();
    lens.sort_unstable();
    lens.dedup();
    lens
}

/// Recomputes the per-value *leaf* flags from the sorted key lists.
///
/// A prefix is a leaf when its sorted successor is not contained in it:
/// keys are sorted by `(bits, len)` and canonical (host bits zero), so
/// every strict descendant of a prefix sorts directly after it — checking
/// the immediate successor suffices. Arena slots no key references keep a
/// meaningless flag; lookups can never reach them.
pub(crate) fn rebuild_leaf<V>(core: &mut Core<V>) {
    let mut leaf = vec![true; core.values.len()];
    for fam in [&core.keys_v4, &core.keys_v6] {
        for pair in fam.windows(2) {
            if let [cur, next] = pair {
                if next.len > cur.len && mask_bits(next.bits, cur.len) == cur.bits {
                    if let Some(flag) = leaf.get_mut(cur.value as usize) {
                        *flag = false;
                    }
                }
            }
        }
    }
    core.leaf = leaf;
}

/// Recursively compiles one node from the (sorted) keys that live at or
/// below `base`. Returns the node index, or `NONE` for an empty key set.
pub(crate) fn build_node(
    nodes: &mut Vec<Node>,
    entries: &mut Vec<Entry>,
    keys: &[KeyRec],
    base: u8,
) -> u32 {
    if keys.is_empty() {
        return NONE;
    }
    let stride: u8 = if base == 0 && keys.len() >= WIDE_ROOT_MIN {
        16
    } else {
        8
    };
    let limit = base.saturating_add(stride);
    let block_len = 1usize.checked_shl(u32::from(stride)).unwrap_or(0);
    let mut block = vec![EMPTY_ENTRY; block_len];
    let shift = 128u32.saturating_sub(limit as u32);
    let mut node_value = NONE;

    // Expand the prefixes that terminate inside this node into the entry
    // block. Shorter prefixes first, so more specific ones overwrite — the
    // entry then holds the most specific in-node match for its chunk.
    let mut in_node: Vec<&KeyRec> = keys.iter().filter(|k| k.len <= limit).collect();
    in_node.sort_by_key(|k| k.len);
    for key in in_node {
        if key.len == base {
            node_value = key.value;
            continue;
        }
        let lo = chunk_of(key.bits, shift, stride);
        let count = 1usize
            .checked_shl(u32::from(limit.saturating_sub(key.len)))
            .unwrap_or(0);
        for entry in block.iter_mut().skip(lo).take(count) {
            entry.value = key.value;
        }
    }

    // Group the deeper prefixes by their chunk (contiguous runs, since the
    // keys are sorted by bits) and recurse.
    let deeper: Vec<KeyRec> = keys.iter().filter(|k| k.len > limit).copied().collect();
    let mut start = 0usize;
    while let Some(first) = deeper.get(start) {
        let chunk = chunk_of(first.bits, shift, stride);
        let mut end = start.saturating_add(1);
        while let Some(k) = deeper.get(end) {
            let c = chunk_of(k.bits, shift, stride);
            if c != chunk {
                break;
            }
            end += 1;
        }
        if let Some(run) = deeper.get(start..end) {
            let child = build_node(nodes, entries, run, limit);
            if let Some(entry) = block.get_mut(chunk) {
                entry.child = child;
            }
        }
        start = end;
    }

    let entries_off = arena_idx(entries.len());
    entries.extend(block);
    let idx = arena_idx(nodes.len());
    nodes.push(Node {
        entries_off,
        value: node_value,
        base,
        stride,
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(s: &str) -> IpNet {
        s.parse().unwrap()
    }

    fn addr(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn sample() -> PrefixTrie<&'static str> {
        let mut t = PrefixTrie::new();
        t.insert(net("0.0.0.0/0"), "default");
        t.insert(net("17.0.0.0/8"), "apple8");
        t.insert(net("17.5.0.0/16"), "apple16");
        t.insert(net("23.32.0.0/11"), "akamai");
        t.insert(net("2620:149::/32"), "apple6");
        t.insert(net("2620:149:a::/48"), "apple6-dc");
        t.insert(net("198.51.100.7/32"), "host");
        t
    }

    #[test]
    fn matches_trie_on_longest_match() {
        let t = sample();
        let lpm = t.freeze();
        for a in [
            "17.5.1.2",
            "17.9.9.9",
            "8.8.8.8",
            "23.33.0.1",
            "198.51.100.7",
            "198.51.100.8",
            "2620:149::1",
            "2620:149:a::1",
            "2001:db8::1",
        ] {
            let a = addr(a);
            assert_eq!(
                lpm.longest_match(a).map(|(n, v)| (n, *v)),
                t.longest_match(a).map(|(n, v)| (n, *v)),
                "{a}"
            );
            assert_eq!(
                lpm.lookup(a).map(|(n, _)| n),
                lpm.longest_match(a).map(|(n, _)| n)
            );
        }
    }

    #[test]
    fn no_v6_default_means_v6_miss() {
        let t = sample();
        let lpm = t.freeze();
        assert!(lpm.longest_match(addr("2001:db8::1")).is_none());
        assert_eq!(lpm.longest_match(addr("8.8.8.8")).unwrap().1, &"default");
    }

    #[test]
    fn exact_and_covering_match_trie() {
        let t = sample();
        let lpm = t.freeze();
        for n in ["17.0.0.0/8", "17.5.0.0/16", "17.0.0.0/16", "::/0"] {
            let n = net(n);
            assert_eq!(lpm.exact(&n), t.exact(&n), "{n}");
            assert_eq!(lpm.contains(&n), t.contains(&n));
        }
        for a in ["17.5.1.2", "8.8.8.8", "2620:149:a::1", "2001:db8::1"] {
            let a = addr(a);
            let got: Vec<_> = lpm.covering(a).into_iter().map(|(n, v)| (n, *v)).collect();
            let want: Vec<_> = t.covering(a).into_iter().map(|(n, v)| (n, *v)).collect();
            assert_eq!(got, want, "{a}");
        }
    }

    #[test]
    fn longest_match_net_matches_trie() {
        let t = sample();
        let lpm = t.freeze();
        for n in [
            "17.5.3.0/24",
            "17.6.0.0/16",
            "17.0.0.0/8",
            "16.0.0.0/8",
            "2620:149:a:b::/64",
            "2620:149::/32",
            "2000::/3",
        ] {
            let n = net(n);
            assert_eq!(
                lpm.longest_match_net(&n).map(|(c, v)| (c, *v)),
                t.longest_match_net(&n).map(|(c, v)| (c, *v)),
                "{n}"
            );
        }
    }

    #[test]
    fn batch_equals_map_of_single_lookups() {
        let t = sample();
        let lpm = t.freeze();
        let addrs: Vec<IpAddr> = [
            "17.5.1.2",
            "8.8.8.8",
            "23.33.0.1",
            "2620:149::1",
            "2001:db8::1",
            "17.9.9.9",
            "198.51.100.7",
        ]
        .iter()
        .map(|s| addr(s))
        .collect();
        let mut out = Vec::new();
        lpm.lookup_batch(&addrs, &mut out);
        assert_eq!(out.len(), addrs.len());
        for (a, got) in addrs.iter().zip(&out) {
            assert_eq!(
                got.map(|(n, v)| (n, *v)),
                lpm.longest_match(*a).map(|(n, v)| (n, *v)),
                "{a}"
            );
        }
        // The output buffer is reused across calls.
        lpm.lookup_batch(&addrs[..2], &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn leaf_flag_is_exact() {
        let t = sample();
        let lpm = t.freeze();
        let (n, _, leaf) = lpm.longest_match_leaf(addr("17.5.1.2")).unwrap();
        assert_eq!(n, net("17.5.0.0/16"));
        assert!(leaf);
        let (n, _, leaf) = lpm.longest_match_leaf(addr("17.9.9.9")).unwrap();
        assert_eq!(n, net("17.0.0.0/8"));
        assert!(!leaf, "/8 holds a more specific /16");
        let (n, _, leaf) = lpm.longest_match_leaf(addr("8.8.8.8")).unwrap();
        assert_eq!(n, net("0.0.0.0/0"));
        assert!(!leaf, "default route covers everything else");
    }

    #[test]
    fn from_pairs_later_duplicates_win() {
        let lpm = FrozenLpm::from_pairs([(net("10.0.0.0/8"), 1), (net("10.0.0.0/8"), 2)]);
        assert_eq!(lpm.len(), 1);
        assert_eq!(lpm.exact(&net("10.0.0.0/8")), Some(&2));
    }

    #[test]
    fn empty_freeze_answers_nothing() {
        let t: PrefixTrie<u8> = PrefixTrie::new();
        let lpm = t.freeze();
        assert!(lpm.is_empty());
        assert_eq!(lpm.len(), 0);
        assert!(lpm.longest_match(addr("1.2.3.4")).is_none());
        assert!(lpm.covering(addr("::1")).is_empty());
        let mut out = Vec::new();
        lpm.lookup_batch(&[addr("1.2.3.4"), addr("::1")], &mut out);
        assert_eq!(out, vec![None, None]);
    }

    #[test]
    fn wide_root_engages_on_large_tables() {
        // Cross the WIDE_ROOT_MIN threshold and verify lookups still agree.
        let mut t = PrefixTrie::new();
        for i in 0..5000u32 {
            let a = std::net::Ipv4Addr::from(0x0A00_0000 | (i << 8));
            t.insert(crate::prefix::Ipv4Net::clamped(a, 24), i);
        }
        let lpm = t.freeze();
        assert_eq!(lpm.len(), 5000);
        for i in (0..5000u32).step_by(97) {
            let a = IpAddr::V4(std::net::Ipv4Addr::from(0x0A00_0001 | (i << 8)));
            assert_eq!(
                lpm.longest_match(a).map(|(n, v)| (n, *v)),
                t.longest_match(a).map(|(n, v)| (n, *v))
            );
        }
    }

    #[test]
    fn iter_yields_all_pairs() {
        let t = sample();
        let lpm = t.freeze();
        let mut got: Vec<String> = lpm.iter().map(|(n, _)| n.to_string()).collect();
        got.sort();
        let mut want: Vec<String> = t.iter().map(|(n, _)| n.to_string()).collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn snapshot_shares_arenas_and_clone_needs_no_value_clone() {
        // A value type with no Clone impl still snapshots: the arenas are
        // behind one shared Arc.
        struct Opaque(#[allow(dead_code)] u8);
        let lpm = FrozenLpm::from_pairs([(net("10.0.0.0/8"), Opaque(7))]);
        let snap = lpm.snapshot();
        assert!(lpm.is_shared() && snap.is_shared());
        assert!(Arc::ptr_eq(&lpm.core, &snap.core));
        drop(snap);
        assert!(!lpm.is_shared());
    }

    #[test]
    fn longest_match_where_skips_filtered_prefixes() {
        let t = sample();
        let lpm = t.freeze();
        let a = addr("17.5.1.2");
        // Unfiltered: identical to the plain walk.
        assert_eq!(
            lpm.longest_match_where(a, |_| true).map(|(n, _)| n),
            lpm.longest_match(a).map(|(n, _)| n)
        );
        // Filtering the /16 falls back to the /8; filtering both falls
        // back to the default route.
        let skip16 = net("17.5.0.0/16");
        assert_eq!(
            lpm.longest_match_where(a, |n| *n != skip16).map(|(n, _)| n),
            Some(net("17.0.0.0/8"))
        );
        let skip8 = net("17.0.0.0/8");
        assert_eq!(
            lpm.longest_match_where(a, |n| *n != skip16 && *n != skip8)
                .map(|(n, _)| n),
            Some(net("0.0.0.0/0"))
        );
        assert_eq!(lpm.longest_match_where(a, |_| false), None);
        // The net-shaped variant respects the query length bound.
        assert_eq!(
            lpm.longest_match_net_where(&net("17.5.3.0/24"), |n| *n != skip16)
                .map(|(n, _)| n),
            Some(net("17.0.0.0/8"))
        );
    }
}
