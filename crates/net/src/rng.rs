//! Deterministic simulation randomness.
//!
//! Every stochastic element of the reproduction — relay address allocation,
//! probe placement, egress rotation, failure injection — draws from a
//! [`SimRng`] seeded from a single `u64`. The generator is a locally
//! implemented xoshiro256++ so results cannot drift with `rand` version
//! upgrades; `rand`'s [`RngCore`] is implemented on top so the standard
//! distribution adapters still work.
//!
//! [`SimRng::fork`] derives an independent child stream from a label, which
//! lets subsystems (DNS zone, egress fleet, Atlas population, …) consume
//! randomness without perturbing each other — adding a draw in one module
//! never changes another module's results.

use rand::RngCore;

/// SplitMix64 step, used for seeding and label hashing.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator with labelled forking.
///
/// The four state words are named fields rather than an array so the
/// generator stays index-free: `SimRng` sits on panic-reachability-audited
/// hot paths (the ECS scan loop, the fault-injection channel).
#[derive(Debug, Clone)]
pub struct SimRng {
    s0: u64,
    s1: u64,
    s2: u64,
    s3: u64,
}

impl SimRng {
    /// Creates a generator from a seed. Seeds are expanded with SplitMix64,
    /// so nearby seeds produce unrelated streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s0: splitmix64(&mut sm),
            s1: splitmix64(&mut sm),
            s2: splitmix64(&mut sm),
            s3: splitmix64(&mut sm),
        }
    }

    /// Derives an independent child generator identified by `label`.
    ///
    /// Forking does not consume randomness from `self`, so the set of forks
    /// taken from a generator never affects its own stream.
    pub fn fork(&self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        // Mix the label hash with the current state without advancing it.
        let mut sm = self.s0 ^ self.s1.rotate_left(17) ^ h;
        SimRng {
            s0: splitmix64(&mut sm),
            s1: splitmix64(&mut sm),
            s2: splitmix64(&mut sm),
            s3: splitmix64(&mut sm),
        }
    }

    /// Derives an independent child generator identified by `label` and a
    /// numeric `index`.
    ///
    /// Equivalent to [`SimRng::fork`] with a per-index label, but without
    /// formatting a string per call. Used wherever a family of streams is
    /// keyed by a stable id (shards, probes, rounds): each member's stream
    /// depends only on `(parent state, label, index)`, never on the order in
    /// which members run — the property the sharded engine relies on.
    pub fn fork_indexed(&self, label: &str, index: u64) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        // Scramble the index through SplitMix64 so nearby indices produce
        // unrelated streams, then mix as `fork` does.
        let mut ix = index;
        let mut sm = self.s0 ^ self.s1.rotate_left(17) ^ h ^ splitmix64(&mut ix);
        SimRng {
            s0: splitmix64(&mut sm),
            s1: splitmix64(&mut sm),
            s2: splitmix64(&mut sm),
            s3: splitmix64(&mut sm),
        }
    }

    /// Next raw 64-bit output (xoshiro256++).
    pub fn next_u64_raw(&mut self) -> u64 {
        let result = self
            .s0
            .wrapping_add(self.s3)
            .rotate_left(23)
            .wrapping_add(self.s0);
        let t = self.s1 << 17;
        self.s2 ^= self.s0;
        self.s3 ^= self.s1;
        self.s1 ^= self.s2;
        self.s0 ^= self.s3;
        self.s2 ^= t;
        self.s3 = self.s3.rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. Returns 0 when `bound == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method, so the result is
    /// unbiased for every bound.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        loop {
            let x = self.next_u64_raw();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` index in `[0, len)`; 0 when `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Uniform value in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            lo
        } else {
            lo + self.below(hi - lo)
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Picks a uniformly random element of `items`, or `None` when empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.index(items.len())])
        }
    }

    /// Picks an index according to non-negative `weights`; `None` when the
    /// total weight is zero or the slice is empty.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            if *w <= 0.0 {
                continue;
            }
            if target < *w {
                return Some(i);
            }
            target -= *w;
        }
        // Floating point slack: fall back to the last positive weight.
        weights.iter().rposition(|w| *w > 0.0)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// A Pareto-like heavy-tailed draw with shape `alpha` and minimum `min`.
    ///
    /// Used for AS user-population synthesis: a handful of eyeball networks
    /// hold most users, matching the APNIC dataset's skew.
    pub fn pareto(&mut self, min: f64, alpha: f64) -> f64 {
        let u = 1.0 - self.unit(); // in (0, 1]
        min / u.powf(1.0 / alpha)
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64_raw() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next_u64_raw()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_raw(), b.next_u64_raw());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<_> = (0..8).map(|_| a.next_u64_raw()).collect();
        let vb: Vec<_> = (0..8).map(|_| b.next_u64_raw()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_is_independent_of_parent_consumption() {
        let parent = SimRng::new(7);
        let mut f1 = parent.fork("dns");
        let mut parent2 = SimRng::new(7);
        parent2.next_u64_raw(); // forking must not depend on draws
        let mut f2 = SimRng::new(7).fork("dns");
        assert_eq!(f1.next_u64_raw(), f2.next_u64_raw());
        let _ = parent2;
    }

    #[test]
    fn fork_labels_give_distinct_streams() {
        let parent = SimRng::new(7);
        let a = parent.fork("atlas").next_u64_raw();
        let b = parent.fork("egress").next_u64_raw();
        assert_ne!(a, b);
    }

    #[test]
    fn fork_indexed_is_order_free_and_distinct() {
        let parent = SimRng::new(7);
        // Same (label, index) → same stream, regardless of other forks taken.
        let mut a = parent.fork_indexed("probe", 41);
        let _ = parent.fork_indexed("probe", 3);
        let mut b = parent.fork_indexed("probe", 41);
        assert_eq!(a.next_u64_raw(), b.next_u64_raw());
        // Nearby indices and different labels give unrelated streams.
        let x = parent.fork_indexed("probe", 1).next_u64_raw();
        let y = parent.fork_indexed("probe", 2).next_u64_raw();
        let z = parent.fork_indexed("shard", 1).next_u64_raw();
        assert_ne!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(3);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = SimRng::new(9);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[r.below(4) as usize] += 1;
        }
        for c in counts {
            assert!((9000..11000).contains(&c), "count {c} far from uniform");
        }
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut r = SimRng::new(5);
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn pick_weighted_respects_zero_weights() {
        let mut r = SimRng::new(11);
        for _ in 0..1000 {
            let i = r.pick_weighted(&[0.0, 3.0, 0.0, 1.0]).unwrap();
            assert!(i == 1 || i == 3);
        }
        assert_eq!(r.pick_weighted(&[]), None);
        assert_eq!(r.pick_weighted(&[0.0, 0.0]), None);
    }

    #[test]
    fn pick_weighted_matches_ratios() {
        let mut r = SimRng::new(13);
        let mut c = [0u32; 2];
        for _ in 0..30_000 {
            c[r.pick_weighted(&[3.0, 1.0]).unwrap()] += 1;
        }
        let ratio = c[0] as f64 / c[1] as f64;
        assert!((2.6..3.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(17);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn pareto_has_min_and_heavy_tail() {
        let mut r = SimRng::new(19);
        let draws: Vec<f64> = (0..10_000).map(|_| r.pareto(100.0, 1.2)).collect();
        assert!(draws.iter().all(|d| *d >= 100.0));
        let max = draws.iter().cloned().fold(0.0, f64::max);
        assert!(max > 10_000.0, "tail too light: max {max}");
    }

    #[test]
    fn fill_bytes_covers_remainders() {
        let mut r = SimRng::new(23);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|b| *b != 0));
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(29);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.1));
    }

    #[test]
    fn range_empty_returns_lo() {
        let mut r = SimRng::new(31);
        assert_eq!(r.range(5, 5), 5);
        assert_eq!(r.range(9, 3), 9);
        for _ in 0..100 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }
}
