//! Simulated time.
//!
//! Every measurement in the reproduction happens on a simulated wall clock so
//! that runs are deterministic and "48-hour" campaigns finish in
//! milliseconds. [`SimTime`] is a millisecond count since the Unix epoch;
//! [`Epoch`] names the four monthly scan campaigns of the paper
//! (January–April 2022) plus the May relay-scan window.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A span of simulated time, in milliseconds.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default, Debug,
)]
#[serde(transparent)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1000)
    }

    /// From whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000)
    }

    /// From whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000)
    }

    /// From whole days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 86_400_000)
    }

    /// Milliseconds in this duration.
    pub const fn as_millis(&self) -> u64 {
        self.0
    }

    /// Seconds (truncating).
    pub const fn as_secs(&self) -> u64 {
        self.0 / 1000
    }

    /// Multiplies the duration by an integer factor.
    pub const fn times(&self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

/// A point in simulated time: milliseconds since the Unix epoch.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default, Debug,
)]
#[serde(transparent)]
pub struct SimTime(pub u64);

/// Days in each month of a (possibly leap) year.
const DAYS_IN_MONTH: [u64; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn is_leap(year: u64) -> bool {
    (year.is_multiple_of(4) && !year.is_multiple_of(100)) || year.is_multiple_of(400)
}

impl SimTime {
    /// The Unix epoch itself.
    pub const EPOCH: SimTime = SimTime(0);

    /// Builds a time from a UTC calendar date (naive, midnight).
    ///
    /// `month` and `day` are 1-based. Dates before 1970 are not supported
    /// and saturate to the epoch.
    pub fn from_ymd(year: u64, month: u64, day: u64) -> SimTime {
        if year < 1970 {
            return SimTime::EPOCH;
        }
        let mut days: u64 = 0;
        for y in 1970..year {
            days += if is_leap(y) { 366 } else { 365 };
        }
        for m in 1..month.clamp(1, 12) {
            // `m` is clamped below 12, so the lookup is total; a missing
            // month contributes zero days rather than a panic.
            days += DAYS_IN_MONTH.get((m - 1) as usize).copied().unwrap_or(0);
            if m == 2 && is_leap(year) {
                days += 1;
            }
        }
        days += day.saturating_sub(1);
        SimTime(days * 86_400_000)
    }

    /// Milliseconds since the Unix epoch.
    pub const fn as_millis(&self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// `(year, month, day)` of this instant in UTC.
    pub fn ymd(&self) -> (u64, u64, u64) {
        let mut days = self.0 / 86_400_000;
        let mut year = 1970;
        loop {
            let in_year = if is_leap(year) { 366 } else { 365 };
            if days < in_year {
                break;
            }
            days -= in_year;
            year += 1;
        }
        let mut month = 1;
        for (i, base) in DAYS_IN_MONTH.iter().enumerate() {
            let mut len = *base;
            if i == 1 && is_leap(year) {
                len += 1;
            }
            if days < len {
                break;
            }
            days -= len;
            month += 1;
        }
        (year, month, days + 1)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        let rem = self.0 % 86_400_000;
        let (h, min, s) = (rem / 3_600_000, rem / 60_000 % 60, rem / 1000 % 60);
        write!(f, "{y:04}-{m:02}-{d:02}T{h:02}:{min:02}:{s:02}Z")
    }
}

/// A mutable simulated clock.
///
/// Components that need the current time borrow the clock; the experiment
/// driver advances it. There is deliberately no global clock.
#[derive(Debug, Clone)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// Starts the clock at `start`.
    pub fn new(start: SimTime) -> Self {
        Self { now: start }
    }

    /// Starts the clock at the beginning of a measurement epoch.
    pub fn at_epoch(epoch: Epoch) -> Self {
        Self::new(epoch.start())
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `d`.
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Advances the clock to `t` if it lies in the future; never goes back.
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }
}

/// The measurement campaigns of the paper.
///
/// Four monthly ECS/Atlas scan epochs (Table 1) and the May window in which
/// the authors ran the through-relay scans (Figure 3, §4.3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum Epoch {
    /// January 2022 scan (no fallback-domain scan yet).
    Jan2022,
    /// February 2022 scan.
    Feb2022,
    /// March 2022 scan.
    Mar2022,
    /// April 2022 scan — the paper's headline numbers.
    Apr2022,
    /// May 2022 — through-relay scan window and egress-list snapshot.
    May2022,
}

impl Epoch {
    /// All scan epochs in chronological order.
    pub const ALL: [Epoch; 5] = [
        Epoch::Jan2022,
        Epoch::Feb2022,
        Epoch::Mar2022,
        Epoch::Apr2022,
        Epoch::May2022,
    ];

    /// The four monthly ingress-scan epochs of Table 1.
    pub const SCANS: [Epoch; 4] = [
        Epoch::Jan2022,
        Epoch::Feb2022,
        Epoch::Mar2022,
        Epoch::Apr2022,
    ];

    /// First instant of the epoch (month start, UTC).
    pub fn start(&self) -> SimTime {
        match self {
            Epoch::Jan2022 => SimTime::from_ymd(2022, 1, 1),
            Epoch::Feb2022 => SimTime::from_ymd(2022, 2, 1),
            Epoch::Mar2022 => SimTime::from_ymd(2022, 3, 1),
            Epoch::Apr2022 => SimTime::from_ymd(2022, 4, 1),
            Epoch::May2022 => SimTime::from_ymd(2022, 5, 1),
        }
    }

    /// Short label used in table rows ("Jan", "Feb", …).
    pub fn label(&self) -> &'static str {
        match self {
            Epoch::Jan2022 => "Jan",
            Epoch::Feb2022 => "Feb",
            Epoch::Mar2022 => "Mar",
            Epoch::Apr2022 => "Apr",
            Epoch::May2022 => "May",
        }
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} 2022", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ymd_round_trips_known_dates() {
        for (y, m, d) in [
            (1970, 1, 1),
            (2000, 2, 29),
            (2021, 6, 8),
            (2022, 1, 1),
            (2022, 4, 30),
            (2022, 12, 31),
            (2024, 2, 29),
        ] {
            let t = SimTime::from_ymd(y, m, d);
            assert_eq!(t.ymd(), (y, m, d), "date {y}-{m}-{d}");
        }
    }

    #[test]
    fn known_epoch_millis() {
        // 2022-01-01 is 18993 days after the epoch.
        assert_eq!(
            SimTime::from_ymd(2022, 1, 1).as_millis(),
            18_993 * 86_400_000
        );
        assert_eq!(SimTime::from_ymd(1970, 1, 1), SimTime::EPOCH);
    }

    #[test]
    fn pre_epoch_saturates() {
        assert_eq!(SimTime::from_ymd(1960, 5, 5), SimTime::EPOCH);
    }

    #[test]
    fn arithmetic_and_since() {
        let t = SimTime::from_ymd(2022, 3, 1);
        let later = t + SimDuration::from_hours(48);
        assert_eq!(later.since(t), SimDuration::from_days(2));
        assert_eq!(t.since(later), SimDuration::ZERO);
        assert_eq!(later - t, SimDuration::from_hours(48));
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = SimClock::at_epoch(Epoch::Apr2022);
        let start = c.now();
        c.advance(SimDuration::from_secs(30));
        assert_eq!(c.now() - start, SimDuration::from_secs(30));
        c.advance_to(start); // in the past: no-op
        assert_eq!(c.now() - start, SimDuration::from_secs(30));
        c.advance_to(start + SimDuration::from_mins(5));
        assert_eq!(c.now() - start, SimDuration::from_mins(5));
    }

    #[test]
    fn epochs_are_ordered() {
        let starts: Vec<_> = Epoch::ALL.iter().map(|e| e.start()).collect();
        let mut sorted = starts.clone();
        sorted.sort();
        assert_eq!(starts, sorted);
        assert!(Epoch::Jan2022 < Epoch::Apr2022);
    }

    #[test]
    fn display_formats_iso_like() {
        let t = SimTime::from_ymd(2022, 5, 11) + SimDuration::from_secs(3_723);
        assert_eq!(t.to_string(), "2022-05-11T01:02:03Z");
        assert_eq!(Epoch::Apr2022.to_string(), "Apr 2022");
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_days(1), SimDuration::from_hours(24));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(SimDuration::from_mins(1), SimDuration::from_secs(60));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(
            SimDuration::from_secs(30).times(2),
            SimDuration::from_mins(1)
        );
    }
}
