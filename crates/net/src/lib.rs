//! # tectonic-net
//!
//! Foundation types shared by every crate in the `tectonic` workspace — the
//! reproduction of *"Towards a Tectonic Traffic Shift? Investigating Apple's
//! New Relay Network"* (IMC 2022).
//!
//! The crate provides:
//!
//! * [`prefix`] — IPv4/IPv6 CIDR prefixes ([`Ipv4Net`], [`Ipv6Net`], [`IpNet`])
//!   with parsing, containment, splitting and iteration,
//! * [`trie`] — a binary prefix trie with longest-prefix-match lookup, the
//!   backbone of the BGP RIB and every subnet-indexed dataset,
//! * [`lpm`] — [`FrozenLpm`], the compiled, immutable flat-layout snapshot
//!   of a trie ([`PrefixTrie::freeze`]) that the steady-state lookup paths
//!   run on,
//! * [`overlay`] — [`DeltaOverlay`], a bounded patch layer that absorbs
//!   announce/withdraw churn over a frozen table (with subtree re-freeze
//!   and copy-on-write epoch snapshots) so updates cost O(affected
//!   subtree), not O(table),
//! * [`asn`] — autonomous-system numbers and the well-known ASes from the
//!   paper (Apple, Akamai&#8239;PR, Akamai&#8239;EG, Cloudflare, Fastly),
//! * [`rng`] — a deterministic, splittable simulation RNG so every experiment
//!   is reproducible from a single `u64` seed,
//! * [`clock`] — simulated wall-clock time and the measurement epochs used
//!   throughout the paper (January through April 2022).
//!
//! Nothing in this crate performs I/O; all higher layers build deterministic
//! simulations on top of these primitives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asn;
pub mod clock;
pub mod error;
pub mod lpm;
pub mod overlay;
pub mod prefix;
pub mod rng;
pub mod trie;

pub use asn::Asn;
pub use clock::{Epoch, SimClock, SimDuration, SimTime};
pub use error::NetError;
pub use lpm::{BatchScratch, FrozenLpm};
pub use overlay::DeltaOverlay;
pub use prefix::{IpNet, Ipv4Net, Ipv6Net};
pub use rng::SimRng;
pub use trie::PrefixTrie;
