//! Property tests for the QUIC wire subset.
//!
//! Round-trips varints and Initial packets through encode/decode, and
//! fuzzes the decoders with truncated and corrupted buffers: every input
//! must yield `None`/`Err`, never a panic. Random inputs come both from
//! proptest strategies and from [`SimRng`]-seeded streams, matching the
//! determinism discipline of the rest of the workspace.

use proptest::prelude::*;
use tectonic_net::SimRng;
use tectonic_quic::packet::{
    decode_packet, encode_initial, encode_version_negotiation, QuicPacket, QuicWireError,
};
use tectonic_quic::varint::VARINT_MAX;
use tectonic_quic::{decode_varint, VERSION_V1};

/// Values covering every varint length class plus out-of-range inputs.
fn arb_varint_value() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..64,                      // 1-byte class
        64u64..16_384,                 // 2-byte class
        16_384u64..1_073_741_824,      // 4-byte class
        1_073_741_824u64..=VARINT_MAX, // 8-byte class
        Just(VARINT_MAX),
        Just(0),
    ]
}

fn arb_cid() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..=20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn varint_round_trips(value in arb_varint_value()) {
        let mut out = Vec::new();
        prop_assert!(tectonic_quic::encode_varint(value, &mut out));
        let (back, used) = decode_varint(&out).expect("decode own encoding");
        prop_assert_eq!(back, value);
        prop_assert_eq!(used, out.len());
    }

    #[test]
    fn varint_rejects_out_of_range(excess in 1u64..=u64::MAX - VARINT_MAX) {
        let mut out = Vec::new();
        prop_assert!(!tectonic_quic::encode_varint(VARINT_MAX.wrapping_add(excess), &mut out));
        prop_assert!(out.is_empty());
    }

    #[test]
    fn varint_decode_never_panics_on_truncation(value in arb_varint_value(), cut in 0usize..9) {
        let mut out = Vec::new();
        tectonic_quic::encode_varint(value, &mut out);
        let cut = cut % (out.len() + 1);
        if cut < out.len() {
            // A truncated varint must be None, never a panic or bogus Ok.
            prop_assert!(decode_varint(&out[..cut]).is_none());
        }
    }

    #[test]
    fn varint_decode_never_panics_on_random_bytes(bytes in prop::collection::vec(any::<u8>(), 0..12)) {
        if let Some((value, used)) = decode_varint(&bytes) {
            prop_assert!(used <= bytes.len());
            prop_assert!(value <= VARINT_MAX);
        }
    }

    #[test]
    fn initial_round_trips(
        dcid in arb_cid(),
        scid in arb_cid(),
        payload_len in 0usize..2048,
    ) {
        let wire = encode_initial(VERSION_V1, &dcid, &scid, payload_len)
            .expect("cids within bounds");
        match decode_packet(&wire).expect("decode own encoding") {
            QuicPacket::Initial { header, token, payload_len: decoded_len } => {
                prop_assert_eq!(header.version, VERSION_V1);
                prop_assert_eq!(header.dcid, dcid);
                prop_assert_eq!(header.scid, scid);
                prop_assert!(token.is_empty());
                prop_assert_eq!(decoded_len, payload_len as u64);
            }
            other => prop_assert!(false, "decoded {other:?}, expected Initial"),
        }
    }

    #[test]
    fn oversized_cids_are_rejected(extra in 1usize..10, payload_len in 0usize..64) {
        let long = vec![0u8; 20 + extra];
        prop_assert_eq!(
            encode_initial(VERSION_V1, &long, &[], payload_len),
            Err(QuicWireError::CidTooLong)
        );
        prop_assert_eq!(
            encode_initial(VERSION_V1, &[], &long, payload_len),
            Err(QuicWireError::CidTooLong)
        );
    }

    #[test]
    fn version_negotiation_round_trips(
        dcid in arb_cid(),
        scid in arb_cid(),
        versions in prop::collection::vec(1u32..=u32::MAX, 1..8),
    ) {
        let wire = encode_version_negotiation(&dcid, &scid, &versions);
        match decode_packet(&wire).expect("decode own encoding") {
            QuicPacket::VersionNegotiation(vn) => {
                // VN swaps the roles: its DCID echoes the client's SCID.
                prop_assert_eq!(vn.dcid, scid);
                prop_assert_eq!(vn.scid, dcid);
                prop_assert_eq!(vn.supported_versions, versions);
            }
            other => prop_assert!(false, "decoded {other:?}, expected VN"),
        }
    }

    #[test]
    fn packet_decode_never_panics_on_truncation(
        dcid in arb_cid(),
        scid in arb_cid(),
        payload_len in 0usize..256,
        cut in 0usize..4096,
    ) {
        let wire = encode_initial(VERSION_V1, &dcid, &scid, payload_len)
            .expect("cids within bounds");
        let cut = cut % wire.len();
        // Every strict prefix must decode to an error, never panic.
        prop_assert!(decode_packet(&wire[..cut]).is_err());
    }

    #[test]
    fn packet_decode_never_panics_on_random_bytes(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = decode_packet(&bytes); // may Err or decode junk, must not panic
    }
}

/// SimRng-driven fuzzing: the same deterministic entropy source the rest
/// of the workspace uses, so a failing seed reproduces exactly.
#[test]
fn simrng_varint_round_trip_sweep() {
    let mut rng = SimRng::new(0x51C4);
    for _ in 0..10_000 {
        let value = rng.below(VARINT_MAX + 1);
        let mut out = Vec::new();
        assert!(tectonic_quic::encode_varint(value, &mut out));
        let (back, used) = decode_varint(&out).expect("decode own encoding");
        assert_eq!(back, value);
        assert_eq!(used, out.len());
    }
}

#[test]
fn simrng_truncated_initials_never_panic() {
    let mut rng = SimRng::new(0xD1CE);
    for _ in 0..2_000 {
        let dcid: Vec<u8> = (0..rng.below(21)).map(|_| rng.below(256) as u8).collect();
        let scid: Vec<u8> = (0..rng.below(21)).map(|_| rng.below(256) as u8).collect();
        let payload_len = rng.below(512) as usize;
        let wire =
            encode_initial(VERSION_V1, &dcid, &scid, payload_len).expect("cids within bounds");
        let cut = rng.below(wire.len() as u64) as usize;
        assert!(decode_packet(&wire[..cut]).is_err());
    }
}

#[test]
fn simrng_garbage_buffers_never_panic() {
    let mut rng = SimRng::new(0xBAD);
    for _ in 0..5_000 {
        let len = rng.below(128) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        let _ = decode_varint(&bytes);
        let _ = decode_packet(&bytes);
    }
}
