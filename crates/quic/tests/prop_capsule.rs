//! Property tests for the capsule / HTTP Datagram codecs.
//!
//! Round-trips capsules and HTTP Datagrams through encode/decode and
//! fuzzes the decoders with truncated prefixes and garbage buffers: every
//! input must yield `Err`, never a panic. Mirrors `prop_quic.rs` — random
//! inputs come both from proptest strategies and from [`SimRng`]-seeded
//! streams so a failing case reproduces exactly.

use proptest::prelude::*;
use tectonic_net::SimRng;
use tectonic_quic::capsule::{
    datagram_capsule, decode_capsule, decode_datagram, encode_capsule, encode_datagram,
    open_datagram_capsule, udp_datagram, Capsule, CapsuleError, HttpDatagram, CAPSULE_DATAGRAM,
};
use tectonic_quic::varint::VARINT_MAX;

/// Values covering every varint length class plus the edges.
fn arb_varint_value() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..64,                      // 1-byte class
        64u64..16_384,                 // 2-byte class
        16_384u64..1_073_741_824,      // 4-byte class
        1_073_741_824u64..=VARINT_MAX, // 8-byte class
        Just(VARINT_MAX),
        Just(0),
    ]
}

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..512)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn capsule_round_trips(capsule_type in arb_varint_value(), payload in arb_payload()) {
        let capsule = Capsule { capsule_type, payload };
        let wire = encode_capsule(&capsule).expect("in-range capsule");
        let (back, used) = decode_capsule(&wire).expect("decode own encoding");
        prop_assert_eq!(back, capsule);
        prop_assert_eq!(used, wire.len());
    }

    #[test]
    fn capsule_streams_round_trip(
        types in prop::collection::vec(arb_varint_value(), 1..6),
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..6),
    ) {
        // Concatenated capsules decode back one by one, consuming exactly
        // the stream — the framing the TCP fallback relies on.
        let capsules: Vec<Capsule> = types
            .iter()
            .zip(payloads.iter())
            .map(|(t, p)| Capsule { capsule_type: *t, payload: p.clone() })
            .collect();
        let mut wire = Vec::new();
        for c in &capsules {
            wire.extend(encode_capsule(c).expect("in-range capsule"));
        }
        let mut offset = 0usize;
        for expected in &capsules {
            let (back, used) = decode_capsule(&wire[offset..]).expect("decode stream element");
            prop_assert_eq!(&back, expected);
            offset += used;
        }
        prop_assert_eq!(offset, wire.len());
    }

    #[test]
    fn datagram_round_trips(context_id in arb_varint_value(), payload in arb_payload()) {
        let datagram = HttpDatagram { context_id, payload };
        let wire = encode_datagram(&datagram).expect("in-range datagram");
        prop_assert_eq!(decode_datagram(&wire).expect("decode own encoding"), datagram);
    }

    #[test]
    fn datagram_survives_capsule_wrapping(payload in arb_payload()) {
        // QUIC path and TCP-fallback path must agree on the payload.
        let datagram = udp_datagram(&payload);
        let capsule = datagram_capsule(&datagram).expect("in-range datagram");
        prop_assert_eq!(capsule.capsule_type, CAPSULE_DATAGRAM);
        let wire = encode_capsule(&capsule).expect("in-range capsule");
        let (back, _) = decode_capsule(&wire).expect("decode own encoding");
        let unwrapped = open_datagram_capsule(&back).expect("DATAGRAM capsule");
        prop_assert_eq!(unwrapped, datagram);
    }

    #[test]
    fn encode_rejects_out_of_range(excess in 1u64..=u64::MAX - VARINT_MAX) {
        let bad_type = Capsule {
            capsule_type: VARINT_MAX.wrapping_add(excess),
            payload: vec![],
        };
        prop_assert_eq!(encode_capsule(&bad_type), Err(CapsuleError::OutOfRange));
        let bad_context = HttpDatagram {
            context_id: VARINT_MAX.wrapping_add(excess),
            payload: vec![],
        };
        prop_assert_eq!(encode_datagram(&bad_context), Err(CapsuleError::OutOfRange));
    }

    #[test]
    fn capsule_decode_never_panics_on_truncation(
        capsule_type in arb_varint_value(),
        payload in prop::collection::vec(any::<u8>(), 1..256),
        cut in 0usize..4096,
    ) {
        let wire = encode_capsule(&Capsule { capsule_type, payload }).expect("in-range capsule");
        let cut = cut % wire.len();
        // Every strict prefix must decode to an error, never panic.
        prop_assert!(decode_capsule(&wire[..cut]).is_err());
    }

    #[test]
    fn capsule_decode_never_panics_on_random_bytes(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        if let Ok((capsule, used)) = decode_capsule(&bytes) {
            prop_assert!(used <= bytes.len());
            prop_assert!(capsule.capsule_type <= VARINT_MAX);
        }
    }

    #[test]
    fn datagram_decode_never_panics_on_random_bytes(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        if let Ok(datagram) = decode_datagram(&bytes) {
            prop_assert!(datagram.context_id <= VARINT_MAX);
            prop_assert!(datagram.payload.len() <= bytes.len());
        }
    }
}

/// SimRng-driven fuzzing: the same deterministic entropy source the rest
/// of the workspace uses, so a failing seed reproduces exactly.
#[test]
fn simrng_capsule_round_trip_sweep() {
    let mut rng = SimRng::new(0xCA55);
    for _ in 0..5_000 {
        let capsule = Capsule {
            capsule_type: rng.below(VARINT_MAX + 1),
            payload: (0..rng.below(96)).map(|_| rng.below(256) as u8).collect(),
        };
        let wire = encode_capsule(&capsule).expect("in-range capsule");
        let (back, used) = decode_capsule(&wire).expect("decode own encoding");
        assert_eq!(back, capsule);
        assert_eq!(used, wire.len());
    }
}

#[test]
fn simrng_truncated_capsules_never_panic() {
    let mut rng = SimRng::new(0xD1CE);
    for _ in 0..5_000 {
        let capsule = Capsule {
            capsule_type: rng.below(VARINT_MAX + 1),
            payload: (0..1 + rng.below(96))
                .map(|_| rng.below(256) as u8)
                .collect(),
        };
        let wire = encode_capsule(&capsule).expect("in-range capsule");
        let cut = rng.below(wire.len() as u64) as usize;
        assert!(decode_capsule(&wire[..cut]).is_err());
    }
}

#[test]
fn simrng_garbage_buffers_never_panic() {
    let mut rng = SimRng::new(0xBAD);
    for _ in 0..10_000 {
        let len = rng.below(160) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        let _ = decode_capsule(&bytes);
        let _ = decode_datagram(&bytes);
    }
}
