//! HTTP/3 capsules and HTTP Datagrams for the CONNECT-UDP data plane.
//!
//! MASQUE's `connect-udp` (RFC 9298) moves UDP payloads through an HTTP/3
//! tunnel in two framings the paper's relay traffic uses:
//!
//! * **HTTP Datagrams** (RFC 9297 §2): a varint *context ID* followed by
//!   the raw UDP payload, carried in QUIC DATAGRAM frames. Context ID 0 is
//!   the UDP-proxying payload context; other contexts must be negotiated
//!   and are dropped by this model.
//! * **Capsules** (RFC 9297 §3): `type varint + length varint + value`, the
//!   reliable fallback stream framing. When the client is on the TCP/HTTP-2
//!   fallback (`mask-h2.icloud.com`, no QUIC DATAGRAM support), datagrams
//!   ride inside DATAGRAM capsules instead.
//!
//! This file is on the lintkit strict no-index list: decoding is total —
//! every read goes through `get`/`split_at_checked`-style bounds checks and
//! any malformed input returns [`CapsuleError`], never a panic.

use crate::varint::{decode_varint, encode_varint, VARINT_MAX};

/// The DATAGRAM capsule type (RFC 9297 §3.1).
pub const CAPSULE_DATAGRAM: u64 = 0x00;

/// The HTTP Datagram context ID carrying raw UDP payloads (RFC 9298 §5).
pub const CONTEXT_UDP_PAYLOAD: u64 = 0x00;

/// One capsule: a typed, length-prefixed value on the request stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Capsule {
    /// The capsule type (varint space; unknown types must be skippable).
    pub capsule_type: u64,
    /// The capsule value bytes.
    pub payload: Vec<u8>,
}

/// One HTTP Datagram: a context ID plus the contextual payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpDatagram {
    /// The context ID (0 = raw UDP payload for `connect-udp`).
    pub context_id: u64,
    /// The payload carried under that context.
    pub payload: Vec<u8>,
}

/// Errors from the capsule/datagram codecs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapsuleError {
    /// Ran out of bytes mid-varint or mid-value.
    Truncated,
    /// A declared length exceeded the remaining buffer.
    BadLength,
    /// A value (type or context ID) exceeded the varint range on encode.
    OutOfRange,
}

impl std::fmt::Display for CapsuleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CapsuleError::Truncated => write!(f, "capsule truncated"),
            CapsuleError::BadLength => write!(f, "bad capsule length"),
            CapsuleError::OutOfRange => write!(f, "varint out of range"),
        }
    }
}

impl std::error::Error for CapsuleError {}

/// Encodes one capsule (`type varint + length varint + value`).
///
/// Fails only when the type or the payload length exceeds the 62-bit
/// varint space.
pub fn encode_capsule(capsule: &Capsule) -> Result<Vec<u8>, CapsuleError> {
    let mut out = Vec::with_capacity(capsule.payload.len().saturating_add(16));
    if !encode_varint(capsule.capsule_type, &mut out) {
        return Err(CapsuleError::OutOfRange);
    }
    let len = capsule.payload.len() as u64;
    if len > VARINT_MAX || !encode_varint(len, &mut out) {
        return Err(CapsuleError::OutOfRange);
    }
    out.extend_from_slice(&capsule.payload);
    Ok(out)
}

/// Decodes one capsule from the start of `data`, returning the capsule and
/// the bytes consumed (capsules are concatenated on the stream).
pub fn decode_capsule(data: &[u8]) -> Result<(Capsule, usize), CapsuleError> {
    let (capsule_type, used_type) = decode_varint(data).ok_or(CapsuleError::Truncated)?;
    let rest = data.get(used_type..).ok_or(CapsuleError::Truncated)?;
    let (len, used_len) = decode_varint(rest).ok_or(CapsuleError::Truncated)?;
    let header = used_type + used_len;
    let len = usize::try_from(len).map_err(|_| CapsuleError::BadLength)?;
    let end = header.checked_add(len).ok_or(CapsuleError::BadLength)?;
    let payload = data
        .get(header..end)
        .ok_or(CapsuleError::BadLength)?
        .to_vec();
    Ok((
        Capsule {
            capsule_type,
            payload,
        },
        end,
    ))
}

/// Encodes one HTTP Datagram (`context ID varint + payload`).
pub fn encode_datagram(datagram: &HttpDatagram) -> Result<Vec<u8>, CapsuleError> {
    let mut out = Vec::with_capacity(datagram.payload.len().saturating_add(8));
    if !encode_varint(datagram.context_id, &mut out) {
        return Err(CapsuleError::OutOfRange);
    }
    out.extend_from_slice(&datagram.payload);
    Ok(out)
}

/// Decodes one HTTP Datagram. The payload is everything after the context
/// ID — datagrams are not length-prefixed (the QUIC DATAGRAM frame bounds
/// them).
pub fn decode_datagram(data: &[u8]) -> Result<HttpDatagram, CapsuleError> {
    let (context_id, used) = decode_varint(data).ok_or(CapsuleError::Truncated)?;
    let payload = data.get(used..).ok_or(CapsuleError::Truncated)?.to_vec();
    Ok(HttpDatagram {
        context_id,
        payload,
    })
}

/// Wraps a UDP payload as a context-0 HTTP Datagram on the QUIC path.
pub fn udp_datagram(payload: &[u8]) -> HttpDatagram {
    HttpDatagram {
        context_id: CONTEXT_UDP_PAYLOAD,
        payload: payload.to_vec(),
    }
}

/// Wraps an HTTP Datagram in a DATAGRAM capsule — the framing the TCP
/// fallback uses when QUIC DATAGRAM frames are unavailable.
pub fn datagram_capsule(datagram: &HttpDatagram) -> Result<Capsule, CapsuleError> {
    Ok(Capsule {
        capsule_type: CAPSULE_DATAGRAM,
        payload: encode_datagram(datagram)?,
    })
}

/// Unwraps a DATAGRAM capsule back into its HTTP Datagram. Non-DATAGRAM
/// capsule types return `None` (unknown capsules are skipped, not fatal).
pub fn open_datagram_capsule(capsule: &Capsule) -> Option<HttpDatagram> {
    if capsule.capsule_type != CAPSULE_DATAGRAM {
        return None;
    }
    decode_datagram(&capsule.payload).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capsule_round_trips() {
        let capsule = Capsule {
            capsule_type: 0x2B0C,
            payload: b"close reason".to_vec(),
        };
        let wire = encode_capsule(&capsule).unwrap();
        let (back, used) = decode_capsule(&wire).unwrap();
        assert_eq!(back, capsule);
        assert_eq!(used, wire.len());
    }

    #[test]
    fn capsules_concatenate_on_the_stream() {
        let a = Capsule {
            capsule_type: CAPSULE_DATAGRAM,
            payload: vec![0, 1, 2],
        };
        let b = Capsule {
            capsule_type: 0x17,
            payload: vec![],
        };
        let mut wire = encode_capsule(&a).unwrap();
        wire.extend(encode_capsule(&b).unwrap());
        let (first, used) = decode_capsule(&wire).unwrap();
        let (second, used2) = decode_capsule(wire.get(used..).unwrap()).unwrap();
        assert_eq!(first, a);
        assert_eq!(second, b);
        assert_eq!(used + used2, wire.len());
    }

    #[test]
    fn datagram_round_trips_both_framings() {
        let datagram = udp_datagram(b"ip echo request");
        // QUIC path: bare HTTP Datagram.
        let wire = encode_datagram(&datagram).unwrap();
        assert_eq!(decode_datagram(&wire).unwrap(), datagram);
        // TCP fallback: the same datagram inside a DATAGRAM capsule.
        let capsule = datagram_capsule(&datagram).unwrap();
        let capsule_wire = encode_capsule(&capsule).unwrap();
        let (back, _) = decode_capsule(&capsule_wire).unwrap();
        assert_eq!(open_datagram_capsule(&back).unwrap(), datagram);
    }

    #[test]
    fn non_datagram_capsules_do_not_unwrap() {
        let capsule = Capsule {
            capsule_type: 0x1F,
            payload: vec![0x00, 0xAA],
        };
        assert!(open_datagram_capsule(&capsule).is_none());
    }

    #[test]
    fn truncated_and_overlong_inputs_error() {
        assert_eq!(decode_capsule(&[]), Err(CapsuleError::Truncated));
        assert_eq!(decode_datagram(&[]), Err(CapsuleError::Truncated));
        // Declared length runs past the buffer.
        let capsule = Capsule {
            capsule_type: 1,
            payload: vec![7; 40],
        };
        let wire = encode_capsule(&capsule).unwrap();
        assert_eq!(
            decode_capsule(wire.get(..wire.len() - 1).unwrap()),
            Err(CapsuleError::BadLength)
        );
        // A type beyond the varint space cannot be encoded.
        let bad = Capsule {
            capsule_type: VARINT_MAX + 1,
            payload: vec![],
        };
        assert_eq!(encode_capsule(&bad), Err(CapsuleError::OutOfRange));
    }

    #[test]
    fn empty_payload_datagram_is_valid() {
        let datagram = udp_datagram(&[]);
        let wire = encode_datagram(&datagram).unwrap();
        assert_eq!(wire, vec![0x00]);
        assert_eq!(decode_datagram(&wire).unwrap(), datagram);
    }
}
