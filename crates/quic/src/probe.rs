//! QUIC probing of ingress relays.
//!
//! Models §3's observation from both sides:
//!
//! * [`IngressQuicBehavior`] — how a Private Relay ingress node reacts to
//!   unsolicited QUIC packets: Initials with a supported version are
//!   *silently dropped* (the raw-public-key handshake rejects unintended
//!   clients before any response), while an unknown version triggers a
//!   Version Negotiation listing v1 + drafts 29–27.
//! * [`QuicProber`] — the scanner side (the ZMap-module analogue): sends a
//!   forced-negotiation Initial and classifies the outcome.

use crate::packet::{decode_packet, encode_initial, encode_version_negotiation, QuicPacket};
use crate::{INGRESS_SUPPORTED_VERSIONS, VERSION_FORCE_NEGOTIATION};

/// The ingress node's QUIC reaction model.
#[derive(Debug, Clone)]
pub struct IngressQuicBehavior {
    /// Versions the node advertises in Version Negotiation.
    pub supported_versions: Vec<u32>,
}

impl Default for IngressQuicBehavior {
    fn default() -> Self {
        IngressQuicBehavior {
            supported_versions: INGRESS_SUPPORTED_VERSIONS.to_vec(),
        }
    }
}

impl IngressQuicBehavior {
    /// Processes one inbound datagram; returns the node's reply, if any.
    ///
    /// * Malformed / non-long-header packets: no reaction.
    /// * Initial with a *supported* version: dropped — the paper's
    ///   "connection attempt times out" observation.
    /// * Long-header packet with an *unsupported* version: Version
    ///   Negotiation.
    pub fn handle_datagram(&self, datagram: &[u8]) -> Option<Vec<u8>> {
        let packet = decode_packet(datagram).ok()?;
        match packet {
            QuicPacket::Initial { header, .. } => {
                if self.supported_versions.contains(&header.version) {
                    None // pinned-key handshake: silently ignore strangers
                } else {
                    Some(encode_version_negotiation(
                        &header.dcid,
                        &header.scid,
                        &self.supported_versions,
                    ))
                }
            }
            QuicPacket::Other(header) => {
                if self.supported_versions.contains(&header.version) {
                    None
                } else {
                    Some(encode_version_negotiation(
                        &header.dcid,
                        &header.scid,
                        &self.supported_versions,
                    ))
                }
            }
            // A server never reacts to Version Negotiation itself.
            QuicPacket::VersionNegotiation(_) => None,
        }
    }
}

/// What a probe attempt learned about a target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// No response at all (standard handshake attempt).
    Timeout,
    /// Version negotiation received, listing the advertised versions.
    VersionNegotiation(Vec<u32>),
    /// A response arrived but did not parse as QUIC.
    Garbage,
}

/// The scanner side of the experiment.
#[derive(Debug, Clone, Default)]
pub struct QuicProber;

impl QuicProber {
    /// Builds the standard-handshake probe (QUIC v1 Initial, 1200 bytes) —
    /// the QScanner/curl behaviour that gets no answer from ingress nodes.
    pub fn standard_initial(&self, dcid: &[u8], scid: &[u8]) -> Vec<u8> {
        encode_initial(crate::VERSION_V1, dcid, scid, 1200).unwrap_or_default()
    }

    /// Builds the forced-negotiation probe (reserved version) — the ZMap
    /// module behaviour that elicits Version Negotiation.
    pub fn negotiation_trigger(&self, dcid: &[u8], scid: &[u8]) -> Vec<u8> {
        encode_initial(VERSION_FORCE_NEGOTIATION, dcid, scid, 1200).unwrap_or_default()
    }

    /// Classifies a (possibly absent) reply to a probe.
    pub fn classify_reply(&self, reply: Option<&[u8]>) -> ProbeOutcome {
        match reply {
            None => ProbeOutcome::Timeout,
            Some(bytes) => match decode_packet(bytes) {
                Ok(QuicPacket::VersionNegotiation(vn)) => {
                    ProbeOutcome::VersionNegotiation(vn.supported_versions)
                }
                Ok(_) => ProbeOutcome::Garbage,
                Err(_) => ProbeOutcome::Garbage,
            },
        }
    }

    /// Runs both probes against an ingress behaviour model, returning
    /// `(standard_outcome, negotiation_outcome)` — the paper's two rows.
    pub fn probe_ingress(&self, ingress: &IngressQuicBehavior) -> (ProbeOutcome, ProbeOutcome) {
        let standard = self.standard_initial(b"probe-dcid", b"probe-scid");
        let standard_reply = ingress.handle_datagram(&standard);
        let trigger = self.negotiation_trigger(b"probe-dcid", b"probe-scid");
        let trigger_reply = ingress.handle_datagram(&trigger);
        (
            self.classify_reply(standard_reply.as_deref()),
            self.classify_reply(trigger_reply.as_deref()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{VERSION_DRAFT_27, VERSION_DRAFT_29, VERSION_V1};

    #[test]
    fn standard_initial_is_ignored() {
        let ingress = IngressQuicBehavior::default();
        let prober = QuicProber;
        let probe = prober.standard_initial(b"d", b"s");
        assert_eq!(ingress.handle_datagram(&probe), None);
    }

    #[test]
    fn unknown_version_triggers_negotiation() {
        let ingress = IngressQuicBehavior::default();
        let prober = QuicProber;
        let probe = prober.negotiation_trigger(b"d", b"s");
        let reply = ingress.handle_datagram(&probe).expect("VN expected");
        match decode_packet(&reply).unwrap() {
            QuicPacket::VersionNegotiation(vn) => {
                assert!(vn.supported_versions.contains(&VERSION_V1));
                assert!(vn.supported_versions.contains(&VERSION_DRAFT_29));
                assert!(vn.supported_versions.contains(&VERSION_DRAFT_27));
                // CIDs echoed crosswise so the client can match the reply.
                assert_eq!(vn.dcid, b"s");
                assert_eq!(vn.scid, b"d");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn probe_ingress_reproduces_paper_observation() {
        let (standard, negotiated) = QuicProber.probe_ingress(&IngressQuicBehavior::default());
        assert_eq!(standard, ProbeOutcome::Timeout);
        assert_eq!(
            negotiated,
            ProbeOutcome::VersionNegotiation(INGRESS_SUPPORTED_VERSIONS.to_vec())
        );
    }

    #[test]
    fn garbage_and_vn_inputs_ignored_by_ingress() {
        let ingress = IngressQuicBehavior::default();
        assert_eq!(ingress.handle_datagram(&[0x00, 0x01]), None);
        assert_eq!(ingress.handle_datagram(&[]), None);
        let vn = encode_version_negotiation(b"a", b"b", &[VERSION_V1]);
        assert_eq!(ingress.handle_datagram(&vn), None);
    }

    #[test]
    fn classify_handles_garbage_replies() {
        let prober = QuicProber;
        assert_eq!(prober.classify_reply(None), ProbeOutcome::Timeout);
        assert_eq!(
            prober.classify_reply(Some(&[1, 2, 3])),
            ProbeOutcome::Garbage
        );
        let initial = prober.standard_initial(b"d", b"s");
        assert_eq!(
            prober.classify_reply(Some(&initial)),
            ProbeOutcome::Garbage,
            "an Initial is not a valid probe reply"
        );
    }

    #[test]
    fn custom_version_set_is_advertised() {
        let ingress = IngressQuicBehavior {
            supported_versions: vec![VERSION_V1],
        };
        let (_, negotiated) = QuicProber.probe_ingress(&ingress);
        assert_eq!(
            negotiated,
            ProbeOutcome::VersionNegotiation(vec![VERSION_V1])
        );
    }
}
