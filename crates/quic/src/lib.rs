//! # tectonic-quic
//!
//! A QUIC v1 wire-format subset sized for the paper's §3 probing
//! experiment. The authors observed that iCloud Private Relay ingress nodes
//!
//! * do **not** respond to standard QUIC Initials (QScanner/curl time out —
//!   the pinned raw-public-key handshake rejects unintended clients), but
//! * **do** answer Version Negotiation triggers (a long-header packet with
//!   an unknown version), revealing support for QUIC v1 and drafts 29–27.
//!
//! [`packet`] implements the long-header encoding both sides need;
//! [`probe`] implements the scanner and the ingress responder model;
//! [`capsule`] adds the HTTP/3 capsule + HTTP Datagram framing the
//! CONNECT-UDP data plane (§4 traffic) rides on.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod capsule;
pub mod h3;
pub mod packet;
pub mod probe;
pub mod varint;

pub use capsule::{
    datagram_capsule, decode_capsule, decode_datagram, encode_capsule, encode_datagram,
    open_datagram_capsule, udp_datagram, Capsule, CapsuleError, HttpDatagram, CAPSULE_DATAGRAM,
    CONTEXT_UDP_PAYLOAD,
};
pub use h3::{decode_frame, encode_frame, Frame, FrameType, Headers};
pub use packet::{LongHeader, PacketType, QuicPacket, QuicWireError, VersionNegotiation};
pub use probe::{IngressQuicBehavior, ProbeOutcome, QuicProber};
pub use varint::{decode_varint, encode_varint};

/// QUIC version 1 (RFC 9000).
pub const VERSION_V1: u32 = 0x0000_0001;
/// Draft-29 version number.
pub const VERSION_DRAFT_29: u32 = 0xff00_001d;
/// Draft-28 version number.
pub const VERSION_DRAFT_28: u32 = 0xff00_001c;
/// Draft-27 version number.
pub const VERSION_DRAFT_27: u32 = 0xff00_001b;

/// The version set the paper observed ingress nodes advertising.
pub const INGRESS_SUPPORTED_VERSIONS: [u32; 4] = [
    VERSION_V1,
    VERSION_DRAFT_29,
    VERSION_DRAFT_28,
    VERSION_DRAFT_27,
];

/// A version number reserved to force negotiation (pattern `0x?a?a?a?a`).
pub const VERSION_FORCE_NEGOTIATION: u32 = 0x1a2a_3a4a;
