//! A minimal HTTP/3-flavoured framing layer for the MASQUE model.
//!
//! iCloud Private Relay tunnels traffic with the MASQUE working group's
//! QUIC-aware proxying over HTTP/3 (§2). The reproduction needs the
//! request framing both relay hops exchange — enough to express
//! `CONNECT`-style requests with authority and capsule-protocol headers —
//! without a full QPACK implementation. Headers are therefore encoded as
//! varint-length-prefixed name/value pairs inside a real HTTP/3 frame
//! layout (frame type varint + length varint + payload), which keeps the
//! codec honest while documenting the simplification.

use crate::varint::{decode_varint, encode_varint};

/// HTTP/3 frame types used by the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// DATA (0x0).
    Data,
    /// HEADERS (0x1).
    Headers,
    /// Any other frame type, kept by number.
    Other(u64),
}

impl FrameType {
    fn number(&self) -> u64 {
        match self {
            FrameType::Data => 0x0,
            FrameType::Headers => 0x1,
            FrameType::Other(n) => *n,
        }
    }

    fn from_number(n: u64) -> FrameType {
        match n {
            0x0 => FrameType::Data,
            0x1 => FrameType::Headers,
            other => FrameType::Other(other),
        }
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame type.
    pub frame_type: FrameType,
    /// Raw payload bytes.
    pub payload: Vec<u8>,
}

/// Errors from the framing codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum H3Error {
    /// Ran out of bytes.
    Truncated,
    /// A length exceeded the remaining buffer.
    BadLength,
    /// Header block failed to parse.
    BadHeaders,
}

impl std::fmt::Display for H3Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            H3Error::Truncated => write!(f, "frame truncated"),
            H3Error::BadLength => write!(f, "bad frame length"),
            H3Error::BadHeaders => write!(f, "bad header block"),
        }
    }
}

impl std::error::Error for H3Error {}

/// Encodes one frame.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(frame.payload.len() + 8);
    encode_varint(frame.frame_type.number(), &mut out);
    encode_varint(frame.payload.len() as u64, &mut out);
    out.extend_from_slice(&frame.payload);
    out
}

/// Decodes one frame from the start of `data`, returning the frame and the
/// bytes consumed.
pub fn decode_frame(data: &[u8]) -> Result<(Frame, usize), H3Error> {
    let (ftype, used1) = decode_varint(data).ok_or(H3Error::Truncated)?;
    let (len, used2) = decode_varint(&data[used1..]).ok_or(H3Error::Truncated)?;
    let start = used1 + used2;
    let end = start + len as usize;
    if data.len() < end {
        return Err(H3Error::BadLength);
    }
    Ok((
        Frame {
            frame_type: FrameType::from_number(ftype),
            payload: data[start..end].to_vec(),
        },
        end,
    ))
}

/// A header list (simplified QPACK stand-in: varint-length-prefixed pairs).
pub type Headers = Vec<(String, String)>;

/// Encodes a header list into a HEADERS frame payload.
pub fn encode_headers(headers: &Headers) -> Vec<u8> {
    let mut out = Vec::new();
    for (name, value) in headers {
        encode_varint(name.len() as u64, &mut out);
        out.extend_from_slice(name.as_bytes());
        encode_varint(value.len() as u64, &mut out);
        out.extend_from_slice(value.as_bytes());
    }
    out
}

/// Decodes a HEADERS frame payload.
pub fn decode_headers(payload: &[u8]) -> Result<Headers, H3Error> {
    let mut headers = Vec::new();
    let mut pos = 0;
    while pos < payload.len() {
        let take = |pos: &mut usize| -> Result<String, H3Error> {
            let (len, used) = decode_varint(&payload[*pos..]).ok_or(H3Error::BadHeaders)?;
            *pos += used;
            let end = *pos + len as usize;
            if payload.len() < end {
                return Err(H3Error::BadHeaders);
            }
            let s =
                String::from_utf8(payload[*pos..end].to_vec()).map_err(|_| H3Error::BadHeaders)?;
            *pos = end;
            Ok(s)
        };
        let name = take(&mut pos)?;
        let value = take(&mut pos)?;
        headers.push((name, value));
    }
    Ok(headers)
}

/// Convenience: build a HEADERS frame from a header list.
pub fn headers_frame(headers: &Headers) -> Frame {
    Frame {
        frame_type: FrameType::Headers,
        payload: encode_headers(headers),
    }
}

/// Looks up a pseudo-header or header value.
pub fn header<'a>(headers: &'a Headers, name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn connect_headers() -> Headers {
        vec![
            (":method".into(), "CONNECT".into()),
            (":protocol".into(), "connect-udp".into()),
            (":authority".into(), "egress.example.net:443".into()),
            (
                "proxy-authorization".into(),
                "PrivateToken token=abc".into(),
            ),
        ]
    }

    #[test]
    fn frame_round_trip() {
        let frame = headers_frame(&connect_headers());
        let wire = encode_frame(&frame);
        let (back, used) = decode_frame(&wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(back, frame);
        let headers = decode_headers(&back.payload).unwrap();
        assert_eq!(header(&headers, ":method"), Some("CONNECT"));
        assert_eq!(header(&headers, ":protocol"), Some("connect-udp"));
        assert_eq!(header(&headers, "missing"), None);
    }

    #[test]
    fn data_frame_round_trip() {
        let frame = Frame {
            frame_type: FrameType::Data,
            payload: b"tunnelled bytes".to_vec(),
        };
        let wire = encode_frame(&frame);
        let (back, _) = decode_frame(&wire).unwrap();
        assert_eq!(back.frame_type, FrameType::Data);
        assert_eq!(back.payload, b"tunnelled bytes");
    }

    #[test]
    fn multiple_frames_in_sequence() {
        let f1 = headers_frame(&connect_headers());
        let f2 = Frame {
            frame_type: FrameType::Data,
            payload: vec![1, 2, 3],
        };
        let mut wire = encode_frame(&f1);
        wire.extend(encode_frame(&f2));
        let (a, used) = decode_frame(&wire).unwrap();
        let (b, used2) = decode_frame(&wire[used..]).unwrap();
        assert_eq!(a, f1);
        assert_eq!(b, f2);
        assert_eq!(used + used2, wire.len());
    }

    #[test]
    fn truncation_and_length_errors() {
        let wire = encode_frame(&headers_frame(&connect_headers()));
        assert_eq!(decode_frame(&[]), Err(H3Error::Truncated));
        assert_eq!(decode_frame(&wire[..3]), Err(H3Error::BadLength));
        // Header block cut mid-value.
        let payload = encode_headers(&connect_headers());
        assert!(decode_headers(&payload[..payload.len() - 2]).is_err());
    }

    #[test]
    fn unknown_frame_types_survive() {
        let frame = Frame {
            frame_type: FrameType::Other(0x4242),
            payload: vec![9; 5],
        };
        let (back, _) = decode_frame(&encode_frame(&frame)).unwrap();
        assert_eq!(back.frame_type, FrameType::Other(0x4242));
    }

    #[test]
    fn empty_headers_round_trip() {
        let headers: Headers = vec![];
        assert_eq!(decode_headers(&encode_headers(&headers)).unwrap(), headers);
    }
}
