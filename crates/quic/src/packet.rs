//! QUIC long-header packets: Initial and Version Negotiation.
//!
//! Only the fields the probing experiment needs are modelled; payload
//! protection is out of scope (the paper could not complete handshakes
//! anyway — the pinned raw public key rejects unintended clients).

use crate::varint::{decode_varint, encode_varint};

/// Errors from the QUIC wire subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuicWireError {
    /// Not enough bytes.
    Truncated,
    /// First byte does not carry the long-header form bit.
    NotLongHeader,
    /// Connection ID longer than 20 bytes.
    CidTooLong,
    /// A length field was inconsistent with the buffer.
    BadLength,
}

impl std::fmt::Display for QuicWireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuicWireError::Truncated => write!(f, "packet truncated"),
            QuicWireError::NotLongHeader => write!(f, "not a long-header packet"),
            QuicWireError::CidTooLong => write!(f, "connection ID exceeds 20 bytes"),
            QuicWireError::BadLength => write!(f, "inconsistent length field"),
        }
    }
}

impl std::error::Error for QuicWireError {}

/// Long-header packet types (from the two type bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketType {
    /// Initial packet.
    Initial,
    /// 0-RTT.
    ZeroRtt,
    /// Handshake.
    Handshake,
    /// Retry.
    Retry,
}

impl PacketType {
    fn from_bits(b: u8) -> PacketType {
        match b & 0x03 {
            0 => PacketType::Initial,
            1 => PacketType::ZeroRtt,
            2 => PacketType::Handshake,
            _ => PacketType::Retry,
        }
    }
}

/// A parsed long header (common part of all long-header packets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LongHeader {
    /// Packet type from the type bits (meaningless for version 0).
    pub packet_type: PacketType,
    /// Wire version field. Zero identifies a Version Negotiation packet.
    pub version: u32,
    /// Destination connection ID.
    pub dcid: Vec<u8>,
    /// Source connection ID.
    pub scid: Vec<u8>,
}

/// A decoded long-header packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuicPacket {
    /// An Initial packet (header + opaque payload length).
    Initial {
        /// The header.
        header: LongHeader,
        /// Token bytes (usually empty for client Initials).
        token: Vec<u8>,
        /// Declared payload length.
        payload_len: u64,
    },
    /// A Version Negotiation packet.
    VersionNegotiation(VersionNegotiation),
    /// Any other long-header packet, header only.
    Other(LongHeader),
}

/// A Version Negotiation packet (version field = 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionNegotiation {
    /// DCID (echoes the client's SCID).
    pub dcid: Vec<u8>,
    /// SCID (echoes the client's DCID).
    pub scid: Vec<u8>,
    /// Versions the server supports.
    pub supported_versions: Vec<u32>,
}

/// Builds a client Initial packet for `version` with the given connection
/// IDs and a padded payload of `payload_len` bytes (QUIC requires client
/// Initials to be at least 1200 bytes on the wire; the caller picks).
pub fn encode_initial(
    version: u32,
    dcid: &[u8],
    scid: &[u8],
    payload_len: usize,
) -> Result<Vec<u8>, QuicWireError> {
    if dcid.len() > 20 || scid.len() > 20 {
        return Err(QuicWireError::CidTooLong);
    }
    let mut out = Vec::with_capacity(payload_len + 64);
    // Form (1) | fixed (1) | type Initial (00) | reserved/pn-len (0000+01).
    out.push(0b1100_0001);
    out.extend_from_slice(&version.to_be_bytes());
    out.push(dcid.len() as u8);
    out.extend_from_slice(dcid);
    out.push(scid.len() as u8);
    out.extend_from_slice(scid);
    encode_varint(0, &mut out); // token length
    encode_varint(payload_len as u64, &mut out);
    out.extend(std::iter::repeat_n(0u8, payload_len)); // PADDING frames
    Ok(out)
}

/// Builds a Version Negotiation packet echoing the client's CIDs.
pub fn encode_version_negotiation(
    client_dcid: &[u8],
    client_scid: &[u8],
    supported: &[u32],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + supported.len() * 4);
    out.push(0b1000_0000); // form bit set, rest unused
    out.extend_from_slice(&0u32.to_be_bytes()); // version 0
                                                // VN swaps the roles: its DCID is the client's SCID.
    out.push(client_scid.len() as u8);
    out.extend_from_slice(client_scid);
    out.push(client_dcid.len() as u8);
    out.extend_from_slice(client_dcid);
    for v in supported {
        out.extend_from_slice(&v.to_be_bytes());
    }
    out
}

/// Parses any long-header packet.
pub fn decode_packet(data: &[u8]) -> Result<QuicPacket, QuicWireError> {
    let &first = data.first().ok_or(QuicWireError::Truncated)?;
    if first & 0x80 == 0 {
        return Err(QuicWireError::NotLongHeader);
    }
    // Seven bytes is the smallest long header: first byte, version, and two
    // zero-length CID markers.
    let [_, v0, v1, v2, v3, _, _, ..] = data else {
        return Err(QuicWireError::Truncated);
    };
    let version = u32::from_be_bytes([*v0, *v1, *v2, *v3]);
    let mut pos = 5;
    let take_cid = |pos: &mut usize| -> Result<Vec<u8>, QuicWireError> {
        let len = *data.get(*pos).ok_or(QuicWireError::Truncated)? as usize;
        if len > 20 {
            return Err(QuicWireError::CidTooLong);
        }
        *pos += 1;
        if data.len() < *pos + len {
            return Err(QuicWireError::Truncated);
        }
        let cid = data[*pos..*pos + len].to_vec();
        *pos += len;
        Ok(cid)
    };
    let dcid = take_cid(&mut pos)?;
    let scid = take_cid(&mut pos)?;
    if version == 0 {
        // Version Negotiation: remaining bytes are 4-byte versions.
        let rest = &data[pos..];
        if rest.is_empty() || !rest.len().is_multiple_of(4) {
            return Err(QuicWireError::BadLength);
        }
        let supported_versions = rest
            .chunks_exact(4)
            .map(|c| u32::from_be_bytes(c.try_into().unwrap_or_default()))
            .collect();
        return Ok(QuicPacket::VersionNegotiation(VersionNegotiation {
            dcid,
            scid,
            supported_versions,
        }));
    }
    let header = LongHeader {
        packet_type: PacketType::from_bits((first >> 4) & 0x03),
        version,
        dcid,
        scid,
    };
    if header.packet_type == PacketType::Initial {
        let (token_len, used) = decode_varint(&data[pos..]).ok_or(QuicWireError::Truncated)?;
        pos += used;
        if data.len() < pos + token_len as usize {
            return Err(QuicWireError::Truncated);
        }
        let token = data[pos..pos + token_len as usize].to_vec();
        pos += token_len as usize;
        let (payload_len, used) = decode_varint(&data[pos..]).ok_or(QuicWireError::Truncated)?;
        pos += used;
        if data.len() < pos + payload_len as usize {
            return Err(QuicWireError::BadLength);
        }
        return Ok(QuicPacket::Initial {
            header,
            token,
            payload_len,
        });
    }
    Ok(QuicPacket::Other(header))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{INGRESS_SUPPORTED_VERSIONS, VERSION_FORCE_NEGOTIATION, VERSION_V1};

    #[test]
    fn initial_round_trips() {
        let wire = encode_initial(VERSION_V1, b"destcid0", b"srccid", 1200).unwrap();
        assert!(wire.len() >= 1200);
        match decode_packet(&wire).unwrap() {
            QuicPacket::Initial {
                header,
                token,
                payload_len,
            } => {
                assert_eq!(header.version, VERSION_V1);
                assert_eq!(header.packet_type, PacketType::Initial);
                assert_eq!(header.dcid, b"destcid0");
                assert_eq!(header.scid, b"srccid");
                assert!(token.is_empty());
                assert_eq!(payload_len, 1200);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn version_negotiation_round_trips_and_swaps_cids() {
        let wire =
            encode_version_negotiation(b"client-dcid", b"client-scid", &INGRESS_SUPPORTED_VERSIONS);
        match decode_packet(&wire).unwrap() {
            QuicPacket::VersionNegotiation(vn) => {
                assert_eq!(vn.dcid, b"client-scid");
                assert_eq!(vn.scid, b"client-dcid");
                assert_eq!(vn.supported_versions, INGRESS_SUPPORTED_VERSIONS.to_vec());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_version_initial_parses() {
        let wire = encode_initial(VERSION_FORCE_NEGOTIATION, b"d", b"s", 100).unwrap();
        match decode_packet(&wire).unwrap() {
            QuicPacket::Initial { header, .. } => {
                assert_eq!(header.version, VERSION_FORCE_NEGOTIATION);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn short_header_rejected() {
        assert_eq!(
            decode_packet(&[0x40, 1, 2, 3, 4, 5, 6, 7]),
            Err(QuicWireError::NotLongHeader)
        );
    }

    #[test]
    fn truncation_and_length_errors() {
        assert_eq!(decode_packet(&[]), Err(QuicWireError::Truncated));
        assert_eq!(
            decode_packet(&[0xC1, 0, 0, 0]),
            Err(QuicWireError::Truncated)
        );
        // VN with a ragged version list length.
        let mut vn = encode_version_negotiation(b"d", b"s", &[VERSION_V1]);
        vn.push(0xAA);
        assert_eq!(decode_packet(&vn), Err(QuicWireError::BadLength));
        // Initial whose declared payload exceeds the buffer.
        let mut init = encode_initial(VERSION_V1, b"d", b"s", 50).unwrap();
        init.truncate(init.len() - 10);
        assert_eq!(decode_packet(&init), Err(QuicWireError::BadLength));
    }

    #[test]
    fn cid_length_limits() {
        assert_eq!(
            encode_initial(VERSION_V1, &[0u8; 21], b"s", 10),
            Err(QuicWireError::CidTooLong)
        );
        // Hand-craft a packet with a 21-byte DCID length marker.
        let mut wire = vec![0xC1, 0, 0, 0, 1, 21];
        wire.extend_from_slice(&[0u8; 30]);
        assert_eq!(decode_packet(&wire), Err(QuicWireError::CidTooLong));
    }

    #[test]
    fn empty_vn_version_list_rejected() {
        let wire = encode_version_negotiation(b"d", b"s", &[]);
        assert_eq!(decode_packet(&wire), Err(QuicWireError::BadLength));
    }

    #[test]
    fn other_packet_types_surface_as_other() {
        // Handshake-type long header: type bits 10.
        let mut wire = vec![0b1110_0000];
        wire.extend_from_slice(&VERSION_V1.to_be_bytes());
        wire.push(1);
        wire.push(0xAB);
        wire.push(0);
        match decode_packet(&wire).unwrap() {
            QuicPacket::Other(h) => assert_eq!(h.packet_type, PacketType::Handshake),
            other => panic!("unexpected {other:?}"),
        }
    }
}
