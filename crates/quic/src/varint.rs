//! QUIC variable-length integers (RFC 9000 §16).
//!
//! Two-bit length prefix, big-endian payload, maximum value 2^62 − 1.

/// Maximum encodable value.
pub const VARINT_MAX: u64 = (1 << 62) - 1;

/// Encodes `value` into `out`, appending 1, 2, 4 or 8 bytes.
///
/// Returns `false` (and appends nothing) when the value exceeds
/// [`VARINT_MAX`].
///
/// ```
/// let mut buf = Vec::new();
/// assert!(tectonic_quic::encode_varint(15_293, &mut buf));
/// assert_eq!(buf, vec![0x7b, 0xbd]); // RFC 9000 Appendix A
/// assert_eq!(tectonic_quic::decode_varint(&buf), Some((15_293, 2)));
/// ```
pub fn encode_varint(value: u64, out: &mut Vec<u8>) -> bool {
    if value < 1 << 6 {
        // lintkit: allow(narrowing-cast) -- branch guard proves value < 2^6
        out.push(value as u8);
    } else if value < 1 << 14 {
        // lintkit: allow(narrowing-cast) -- branch guard proves value < 2^14
        out.extend_from_slice(&((value as u16) | 0x4000).to_be_bytes());
    } else if value < 1 << 30 {
        // lintkit: allow(narrowing-cast) -- branch guard proves value < 2^30
        out.extend_from_slice(&((value as u32) | 0x8000_0000).to_be_bytes());
    } else if value <= VARINT_MAX {
        out.extend_from_slice(&(value | 0xC000_0000_0000_0000).to_be_bytes());
    } else {
        return false;
    }
    true
}

/// Decodes a varint from the start of `data`, returning `(value, consumed)`.
pub fn decode_varint(data: &[u8]) -> Option<(u64, usize)> {
    let first = *data.first()?;
    let len = 1usize << (first >> 6);
    if data.len() < len {
        return None;
    }
    let mut value = u64::from(first & 0x3F);
    for b in &data[1..len] {
        // Shift amount is the constant 8; wrapping_shl spells out that the
        // accumulator (≤ 54 significant bits here) cannot overflow-panic.
        value = value.wrapping_shl(8) | u64::from(*b);
    }
    Some((value, len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: u64) -> (u64, usize) {
        let mut buf = Vec::new();
        assert!(encode_varint(v, &mut buf));
        decode_varint(&buf).unwrap()
    }

    #[test]
    fn rfc_9000_appendix_a_vectors() {
        // The four canonical examples from RFC 9000 Appendix A.1.
        let cases: [(&[u8], u64); 4] = [
            (&[0x25], 37),
            (&[0x7b, 0xbd], 15_293),
            (&[0x9d, 0x7f, 0x3e, 0x7d], 494_878_333),
            (
                &[0xc2, 0x19, 0x7c, 0x5e, 0xff, 0x14, 0xe8, 0x8c],
                151_288_809_941_952_652,
            ),
        ];
        for (bytes, want) in cases {
            let (got, used) = decode_varint(bytes).unwrap();
            assert_eq!(got, want);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn boundary_values_round_trip() {
        for v in [
            0,
            63,
            64,
            16_383,
            16_384,
            (1 << 30) - 1,
            1 << 30,
            VARINT_MAX,
        ] {
            let (got, _) = round_trip(v);
            assert_eq!(got, v);
        }
    }

    #[test]
    fn encoding_lengths() {
        let len_of = |v: u64| {
            let mut b = Vec::new();
            encode_varint(v, &mut b);
            b.len()
        };
        assert_eq!(len_of(0), 1);
        assert_eq!(len_of(63), 1);
        assert_eq!(len_of(64), 2);
        assert_eq!(len_of(16_383), 2);
        assert_eq!(len_of(16_384), 4);
        assert_eq!(len_of(1 << 30), 8);
    }

    #[test]
    fn overflow_rejected() {
        let mut buf = Vec::new();
        assert!(!encode_varint(VARINT_MAX + 1, &mut buf));
        assert!(buf.is_empty());
    }

    #[test]
    fn short_input_rejected() {
        assert!(decode_varint(&[]).is_none());
        assert!(decode_varint(&[0x40]).is_none()); // 2-byte form, 1 byte given
        assert!(decode_varint(&[0x80, 0, 0]).is_none()); // 4-byte form, 3 given
        assert!(decode_varint(&[0xC0; 7]).is_none()); // 8-byte form, 7 given
    }
}
