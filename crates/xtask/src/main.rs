//! Workspace automation: `cargo run -p xtask -- lint`.
//!
//! Subcommands:
//!
//! * `lint` — run the [`lintkit`] static-analysis pass over every workspace
//!   crate and the vendored-shim manifest; exits non-zero on any finding.
//! * `lint --update-manifest` — regenerate `vendor/API_MANIFEST.txt` from
//!   the current shim sources, then lint.
//!
//! The same pass runs as a tier-1 test (`crates/lintkit/tests/
//! workspace_gate.rs`) and as a CI job, so `xtask lint` passing locally
//! means the gates pass too.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use lintkit::{lint_workspace, manifest, Config};

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/crates/xtask; CARGO_MANIFEST_DIR is compiled in,
    // so the binary finds the root regardless of the invocation directory.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("usage: cargo run -p xtask -- lint [--update-manifest]");
        return ExitCode::FAILURE;
    };
    match cmd.as_str() {
        "lint" => lint(args.iter().any(|a| a == "--update-manifest")),
        other => {
            eprintln!("unknown subcommand `{other}`; expected `lint`");
            ExitCode::FAILURE
        }
    }
}

fn lint(update_manifest: bool) -> ExitCode {
    let root = workspace_root();
    let vendor = root.join("vendor");
    if update_manifest {
        let text = match manifest::generate(&vendor) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xtask lint: generating manifest: {e}");
                return ExitCode::FAILURE;
            }
        };
        let path = vendor.join(manifest::MANIFEST_FILE);
        if let Err(e) = fs::write(&path, text) {
            eprintln!("xtask lint: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("updated {}", path.display());
    }
    let config = Config::for_workspace(&root);
    let findings = match lint_workspace(&config) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    if findings.is_empty() {
        println!(
            "xtask lint: clean ({} strict-index paths, vendored-shim manifest verified)",
            config.strict_index.len()
        );
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        println!("{f}");
    }
    println!("xtask lint: {} finding(s)", findings.len());
    ExitCode::FAILURE
}
