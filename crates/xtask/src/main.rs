//! Workspace automation: `cargo run -p xtask -- lint`.
//!
//! Subcommands:
//!
//! * `lint` — run the [`lintkit`] static-analysis pass (per-file rules plus
//!   the interprocedural call-graph rules) over every workspace crate and
//!   the vendored-shim manifest, then apply the `lint-baseline.json`
//!   ratchet; exits non-zero on any unbaselined finding *or* any stale
//!   baseline entry.
//! * `lint --update-manifest` — regenerate `vendor/API_MANIFEST.txt` from
//!   the current shim sources, then lint.
//! * `lint --update-baseline` — regenerate `lint-baseline.json` from the
//!   current findings, then lint (always clean afterwards — review the
//!   diff before committing).
//! * `lint --graph[=PATH]` — dump the workspace call graph as GraphViz DOT
//!   to stdout (or PATH).
//! * `lint --json PATH` — write the machine-readable findings report
//!   (rule/file/line/message) for CI artifacts.
//! * `lint --sarif PATH` — write the same findings as a SARIF v2.1.0 log
//!   (one result per finding) for code-hosting annotation UIs.
//! * `bench-report [--suite lpm|scan|masque|all]` — run an ablation bench
//!   with the shim's `BENCH_JSON` line output enabled and distil it into
//!   `BENCH_lpm.json` / `BENCH_scan.json` / `BENCH_masque.json` (bench
//!   name → ns/op, median), the artifacts CI uploads. The scan suite
//!   appends derived `speedup_engine_w8_*` ratios; the lpm suite appends
//!   `speedup_churn_*` (full-refreeze over amortized-overlay update
//!   cost); the masque suite appends `sessions_per_sec_*` throughput and
//!   the serial/engine speedup. Default suite: `lpm`.
//! * `chaos` — run the fault-injection scenario matrix in-process:
//!   `--scenario NAME --seed N` for one cell, `--all --seeds K` for the
//!   whole registry, `--out PATH` for a JSON invariant report. Exits
//!   non-zero if any scenario violates its invariants (see DESIGN.md §10).
//!
//! The same pass runs as a tier-1 test (`crates/lintkit/tests/
//! workspace_gate.rs`) and as a CI job, so `xtask lint` passing locally
//! means the gates pass too.

use std::env;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use lintkit::{analyze_workspace, baseline, manifest, sarif, Config};

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/crates/xtask; CARGO_MANIFEST_DIR is compiled in,
    // so the binary finds the root regardless of the invocation directory.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

/// Parsed `lint` options.
struct LintOpts {
    update_manifest: bool,
    update_baseline: bool,
    /// Print per-phase wall times and cache hit/miss counts.
    timings: bool,
    /// `Some(None)` = DOT to stdout, `Some(Some(path))` = DOT to file.
    graph: Option<Option<String>>,
    json: Option<String>,
    sarif: Option<String>,
}

fn parse_lint_opts(args: &[String]) -> Result<LintOpts, String> {
    let mut opts = LintOpts {
        update_manifest: false,
        update_baseline: false,
        timings: false,
        graph: None,
        json: None,
        sarif: None,
    };
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if arg == "--update-manifest" {
            opts.update_manifest = true;
        } else if arg == "--update-baseline" {
            opts.update_baseline = true;
        } else if arg == "--timings" {
            opts.timings = true;
        } else if arg == "--graph" {
            opts.graph = Some(None);
        } else if let Some(path) = arg.strip_prefix("--graph=") {
            opts.graph = Some(Some(path.to_string()));
        } else if arg == "--json" {
            i += 1;
            let path = args.get(i).ok_or("--json needs a path")?;
            opts.json = Some(path.clone());
        } else if let Some(path) = arg.strip_prefix("--json=") {
            opts.json = Some(path.to_string());
        } else if arg == "--sarif" {
            i += 1;
            let path = args.get(i).ok_or("--sarif needs a path")?;
            opts.sarif = Some(path.clone());
        } else if let Some(path) = arg.strip_prefix("--sarif=") {
            opts.sarif = Some(path.to_string());
        } else {
            return Err(format!("unknown lint option `{arg}`"));
        }
        i += 1;
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!(
            "usage: cargo run -p xtask -- lint \
             [--update-manifest] [--update-baseline] [--timings] [--graph[=PATH]] [--json PATH] \
             [--sarif PATH]\n\
             \x20      cargo run -p xtask -- bench-report [--suite lpm|scan|masque|lint|all] [--out PATH]\n\
             \x20      cargo run -p xtask -- chaos (--scenario NAME | --all) \
             [--seed N] [--seeds K] [--out PATH]"
        );
        return ExitCode::FAILURE;
    };
    match cmd.as_str() {
        "lint" => match parse_lint_opts(&args[1..]) {
            Ok(opts) => lint(&opts),
            Err(e) => {
                eprintln!("xtask lint: {e}");
                ExitCode::FAILURE
            }
        },
        "bench-report" => bench_report(&args[1..]),
        "chaos" => chaos(&args[1..]),
        other => {
            eprintln!("unknown subcommand `{other}`; expected `lint`, `bench-report`, or `chaos`");
            ExitCode::FAILURE
        }
    }
}

/// Runs the chaos scenario matrix in-process and prints one line per
/// scenario-seed cell plus a final summary; exits non-zero on any
/// violated invariant.
fn chaos(args: &[String]) -> ExitCode {
    use tectonic::chaos::{check_invariants, run_pipeline, ChaosConfig, ChaosRun};
    use tectonic::simnet::scenarios;

    let mut scenario: Option<String> = None;
    let mut all = false;
    let mut seed: u64 = 1;
    let mut seeds: u64 = 3;
    let mut out: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let mut take = |name: &str| -> Result<String, String> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let result: Result<(), String> = (|| {
            if arg == "--scenario" {
                scenario = Some(take("--scenario")?);
            } else if let Some(v) = arg.strip_prefix("--scenario=") {
                scenario = Some(v.to_string());
            } else if arg == "--all" {
                all = true;
            } else if arg == "--seed" {
                seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            } else if let Some(v) = arg.strip_prefix("--seed=") {
                seed = v.parse().map_err(|e| format!("--seed: {e}"))?;
            } else if arg == "--seeds" {
                seeds = take("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?;
            } else if let Some(v) = arg.strip_prefix("--seeds=") {
                seeds = v.parse().map_err(|e| format!("--seeds: {e}"))?;
            } else if arg == "--out" {
                out = Some(PathBuf::from(take("--out")?));
            } else if let Some(v) = arg.strip_prefix("--out=") {
                out = Some(PathBuf::from(v));
            } else {
                return Err(format!("unknown option `{arg}`"));
            }
            Ok(())
        })();
        if let Err(e) = result {
            eprintln!("xtask chaos: {e}");
            return ExitCode::FAILURE;
        }
        i += 1;
    }
    let (names, run_seeds): (Vec<String>, Vec<u64>) = if all {
        (
            scenarios::ALL.iter().map(|s| s.to_string()).collect(),
            (1..=seeds.max(1)).collect(),
        )
    } else if let Some(name) = scenario {
        (vec![name], vec![seed])
    } else {
        eprintln!("xtask chaos: pass --scenario NAME or --all");
        return ExitCode::FAILURE;
    };

    let config = ChaosConfig::default();
    let mut goldens: Vec<(u64, ChaosRun)> = Vec::new();
    let golden_for = |s: u64, goldens: &mut Vec<(u64, ChaosRun)>| -> usize {
        if let Some(pos) = goldens.iter().position(|(gs, _)| *gs == s) {
            return pos;
        }
        goldens.push((s, run_pipeline(s, None, &config)));
        goldens.len() - 1
    };
    let mut report_lines: Vec<String> = Vec::new();
    let mut total_runs = 0u64;
    let mut total_violations = 0u64;
    for name in &names {
        let Some(plan) = scenarios::by_name(name) else {
            eprintln!(
                "xtask chaos: unknown scenario `{name}` (known: {})",
                scenarios::ALL.join(", ")
            );
            return ExitCode::FAILURE;
        };
        for &s in &run_seeds {
            let golden_idx = golden_for(s, &mut goldens);
            let run = run_pipeline(s, Some(&plan), &config);
            let violations = check_invariants(name, &run, &goldens[golden_idx].1);
            total_runs += 1;
            total_violations += violations.len() as u64;
            if violations.is_empty() {
                println!("chaos: scenario {name} seed {s}: OK (all invariants hold)");
            } else {
                println!(
                    "chaos: scenario {name} seed {s}: {} invariant violation(s)",
                    violations.len()
                );
                for v in &violations {
                    println!("chaos:   invariant violated: {v}");
                }
            }
            report_lines.push(format!(
                "  {{\"scenario\": \"{name}\", \"seed\": {s}, \"violations\": [{}]}}",
                violations
                    .iter()
                    .map(|v| format!("\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
    }
    println!("chaos: {total_runs} scenario-runs, {total_violations} invariant violation(s)");
    if let Some(path) = out {
        let body = format!("[\n{}\n]\n", report_lines.join(",\n"));
        if let Err(e) = fs::write(&path, body) {
            eprintln!("xtask chaos: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("chaos: wrote invariant report to {}", path.display());
    }
    if total_violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// One `bench-report` suite: which bench target to run and which report
/// file its medians land in.
struct BenchSuite {
    name: &'static str,
    bench: &'static str,
    report: &'static str,
}

const BENCH_SUITES: [BenchSuite; 3] = [
    BenchSuite {
        name: "lpm",
        bench: "ablation_rib_lpm",
        report: "BENCH_lpm.json",
    },
    BenchSuite {
        name: "scan",
        bench: "ablation_scan_engine",
        report: "BENCH_scan.json",
    },
    BenchSuite {
        name: "masque",
        bench: "ablation_masque",
        report: "BENCH_masque.json",
    },
];

/// Sessions per storm in `ablation_masque` (clients × rounds × 2 agents);
/// mirrors the `StormConfig::sized` calls in the bench so the report can
/// derive sessions/sec from ns/op medians.
const MASQUE_STORM_SESSIONS: [(&str, f64); 2] = [("small", 256.0), ("large", 4_800.0)];

/// Runs one or more ablation benches and condenses the shim's
/// `BENCH_JSON` lines into flat bench-name → ns/op (median) reports.
/// `--suite lpm` (the default, matching the original behaviour), `--suite
/// scan`, `--suite masque`, or `--suite all`; the scan suite appends
/// derived `speedup_engine_w8_*` ratios (serial median / engine-8-worker
/// median), the lpm suite appends `speedup_churn_*` ratios (full-refreeze
/// median / amortized-overlay median, per table size), and the masque
/// suite appends `sessions_per_sec_*` throughput rows plus the
/// serial/engine speedup per storm size.
fn bench_report(args: &[String]) -> ExitCode {
    let root = workspace_root();
    let mut out_path: Option<PathBuf> = None;
    let mut suite = "lpm".to_string();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if arg == "--out" {
            i += 1;
            match args.get(i) {
                Some(p) => out_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("xtask bench-report: --out needs a path");
                    return ExitCode::FAILURE;
                }
            }
        } else if let Some(p) = arg.strip_prefix("--out=") {
            out_path = Some(PathBuf::from(p));
        } else if arg == "--suite" {
            i += 1;
            match args.get(i) {
                Some(s) => suite = s.clone(),
                None => {
                    eprintln!("xtask bench-report: --suite needs a name");
                    return ExitCode::FAILURE;
                }
            }
        } else if let Some(s) = arg.strip_prefix("--suite=") {
            suite = s.to_string();
        } else {
            eprintln!("xtask bench-report: unknown option `{arg}`");
            return ExitCode::FAILURE;
        }
        i += 1;
    }
    // The lint suite is in-process (two analyze_workspace passes), not a
    // cargo-bench target, so it is dispatched before the table lookup.
    if suite == "lint" {
        let out = out_path.unwrap_or_else(|| root.join("BENCH_lint.json"));
        return match run_lint_bench(&root, &out) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("xtask bench-report: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let selected: Vec<&BenchSuite> = if suite == "all" {
        BENCH_SUITES.iter().collect()
    } else {
        match BENCH_SUITES.iter().find(|s| s.name == suite) {
            Some(s) => vec![s],
            None => {
                eprintln!(
                    "xtask bench-report: unknown suite `{suite}` (known: lpm, scan, masque, lint, all)"
                );
                return ExitCode::FAILURE;
            }
        }
    };
    if out_path.is_some() && selected.len() > 1 {
        eprintln!("xtask bench-report: --out only works with a single suite");
        return ExitCode::FAILURE;
    }
    for s in selected {
        let out = out_path.clone().unwrap_or_else(|| root.join(s.report));
        if let Err(e) = run_bench_suite(&root, s, &out) {
            eprintln!("xtask bench-report: {e}");
            return ExitCode::FAILURE;
        }
    }
    if suite == "all" {
        if let Err(e) = run_lint_bench(&root, &root.join("BENCH_lint.json")) {
            eprintln!("xtask bench-report: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// The incremental-lint benchmark: a cold pass (cache deleted first) and a
/// warm pass over the real workspace. Fails unless the warm pass serves
/// every file from cache, emits byte-identical findings, and spends less
/// wall time in the per-file pass — the cache's whole contract.
fn run_lint_bench(root: &Path, out_path: &Path) -> Result<(), String> {
    let config = Config::for_workspace(root);
    if let Some(cache) = &config.cache {
        let _ = fs::remove_file(cache);
    }
    let cold = analyze_workspace(&config).map_err(|e| format!("cold lint pass: {e}"))?;
    let warm = analyze_workspace(&config).map_err(|e| format!("warm lint pass: {e}"))?;
    if baseline::report_json(&cold.findings) != baseline::report_json(&warm.findings) {
        return Err("warm-cache findings are not byte-identical to the cold run".to_string());
    }
    if warm.stats.cache_hits != warm.stats.files || warm.stats.cache_misses != 0 {
        return Err(format!(
            "warm pass expected {} cache hits, got {} ({} misses)",
            warm.stats.files, warm.stats.cache_hits, warm.stats.cache_misses
        ));
    }
    if warm.stats.file_pass_ns >= cold.stats.file_pass_ns {
        return Err(format!(
            "warm file pass ({} ns) not faster than cold ({} ns)",
            warm.stats.file_pass_ns, cold.stats.file_pass_ns
        ));
    }
    let speedup = cold.stats.file_pass_ns as f64 / warm.stats.file_pass_ns.max(1) as f64;
    let rows = [
        ("files", cold.stats.files as f64),
        ("cold_file_pass_ns", cold.stats.file_pass_ns as f64),
        ("cold_graph_ns", cold.stats.graph_ns as f64),
        ("cold_total_ns", cold.stats.total_ns as f64),
        ("warm_file_pass_ns", warm.stats.file_pass_ns as f64),
        ("warm_graph_ns", warm.stats.graph_ns as f64),
        ("warm_total_ns", warm.stats.total_ns as f64),
        ("warm_cache_hits", warm.stats.cache_hits as f64),
        ("speedup_warm_file_pass", speedup),
    ];
    let body = rows
        .iter()
        .map(|(name, v)| format!("  \"{name}\": {v:.1}"))
        .collect::<Vec<_>>()
        .join(",\n");
    fs::write(out_path, format!("{{\n{body}\n}}\n"))
        .map_err(|e| format!("writing {}: {e}", out_path.display()))?;
    println!(
        "xtask bench-report: wrote {} (cold/warm lint pass, {:.1}x warm file-pass speedup)",
        out_path.display(),
        speedup
    );
    Ok(())
}

fn run_bench_suite(root: &PathBuf, suite: &BenchSuite, out_path: &PathBuf) -> Result<(), String> {
    let lines_path = root
        .join("target")
        .join(format!("bench-{}-lines.jsonl", suite.name));
    let _ = fs::remove_file(&lines_path);
    let status = std::process::Command::new(env::var("CARGO").unwrap_or_else(|_| "cargo".into()))
        .args(["bench", "-p", "tectonic-bench", "--bench", suite.bench])
        .env("BENCH_JSON", &lines_path)
        .current_dir(root)
        .status();
    match status {
        Ok(s) if s.success() => {}
        Ok(s) => return Err(format!("cargo bench failed: {s}")),
        Err(e) => return Err(format!("running cargo bench: {e}")),
    }
    let lines = fs::read_to_string(&lines_path)
        .map_err(|e| format!("no BENCH_JSON output at {}: {e}", lines_path.display()))?;
    let mut rows: Vec<(String, f64)> = Vec::new();
    for line in lines.lines().filter(|l| !l.trim().is_empty()) {
        let (Some(bench), Some(median)) = (json_str(line, "bench"), json_num(line, "median_ns"))
        else {
            return Err(format!("unparseable line: {line}"));
        };
        rows.push((bench.to_string(), median));
    }
    if rows.is_empty() {
        return Err("bench produced no measurements".to_string());
    }
    // The scan suite's headline numbers: wall-clock ratio of the serial
    // scanner over the 8-worker engine, per deployment size.
    if suite.name == "scan" {
        let mut derived: Vec<(String, f64)> = Vec::new();
        let median = |name: &str| rows.iter().find(|(n, _)| n == name).map(|(_, ns)| *ns);
        for size in ["small", "large"] {
            if let (Some(serial), Some(engine)) = (
                median(&format!("serial_{size}")),
                median(&format!("engine_w8_{size}")),
            ) {
                if engine > 0.0 {
                    derived.push((format!("speedup_engine_w8_{size}"), serial / engine));
                }
            }
        }
        rows.extend(derived);
    }
    // The masque suite's headline numbers: session throughput of the
    // serial driver and the 8-worker engine (sessions/sec, derived from
    // the ns/op median and the storm's fixed session count), plus the
    // wall-clock ratio between them.
    if suite.name == "masque" {
        let mut derived: Vec<(String, f64)> = Vec::new();
        let median = |name: &str| rows.iter().find(|(n, _)| n == name).map(|(_, ns)| *ns);
        for (size, sessions) in MASQUE_STORM_SESSIONS {
            let serial = median(&format!("serial_{size}"));
            let engine = median(&format!("engine_w8_{size}"));
            if let Some(ns) = serial {
                if ns > 0.0 {
                    derived.push((
                        format!("sessions_per_sec_serial_{size}"),
                        sessions * 1e9 / ns,
                    ));
                }
            }
            if let Some(ns) = engine {
                if ns > 0.0 {
                    derived.push((
                        format!("sessions_per_sec_engine_w8_{size}"),
                        sessions * 1e9 / ns,
                    ));
                }
            }
            if let (Some(serial), Some(engine)) = (serial, engine) {
                if engine > 0.0 {
                    derived.push((format!("speedup_engine_w8_{size}"), serial / engine));
                }
            }
        }
        rows.extend(derived);
    }
    // The churn suite's headline numbers: per-update cost of a whole-table
    // refreeze over the amortized overlay + subtree-compaction path.
    if suite.name == "lpm" {
        let mut derived: Vec<(String, f64)> = Vec::new();
        let median = |name: &str| rows.iter().find(|(n, _)| n == name).map(|(_, ns)| *ns);
        for size in ["100k", "900k"] {
            if let (Some(full), Some(overlay)) = (
                median(&format!("update_full_refreeze_{size}")),
                median(&format!("update_overlay_{size}")),
            ) {
                if overlay > 0.0 {
                    derived.push((format!("speedup_churn_{size}"), full / overlay));
                }
            }
        }
        rows.extend(derived);
    }
    let body = rows
        .iter()
        .map(|(name, ns)| format!("  \"{name}\": {ns:.1}"))
        .collect::<Vec<_>>()
        .join(",\n");
    fs::write(out_path, format!("{{\n{body}\n}}\n"))
        .map_err(|e| format!("writing {}: {e}", out_path.display()))?;
    println!(
        "xtask bench-report: wrote {} ({} entries, ns/op medians)",
        out_path.display(),
        rows.len()
    );
    Ok(())
}

/// Extracts a string field from one flat `BENCH_JSON` line.
fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = field_value(line, key)?;
    rest.strip_prefix('"')?.split('"').next()
}

/// Extracts a numeric field from one flat `BENCH_JSON` line.
fn json_num(line: &str, key: &str) -> Option<f64> {
    let rest = field_value(line, key)?;
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn field_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    Some(&line[start..])
}

fn lint(opts: &LintOpts) -> ExitCode {
    let root = workspace_root();
    let vendor = root.join("vendor");
    if opts.update_manifest {
        let text = match manifest::generate(&vendor) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xtask lint: generating manifest: {e}");
                return ExitCode::FAILURE;
            }
        };
        let path = vendor.join(manifest::MANIFEST_FILE);
        if let Err(e) = fs::write(&path, text) {
            eprintln!("xtask lint: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("updated {}", path.display());
    }
    let config = Config::for_workspace(&root);
    let analysis = match analyze_workspace(&config) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.timings {
        let s = &analysis.stats;
        println!(
            "xtask lint: timings — {} file(s), {} cache hit(s), {} miss(es); \
             file pass {:.1} ms, graph {:.1} ms, total {:.1} ms",
            s.files,
            s.cache_hits,
            s.cache_misses,
            s.file_pass_ns as f64 / 1e6,
            s.graph_ns as f64 / 1e6,
            s.total_ns as f64 / 1e6,
        );
    }
    if let Some(target) = &opts.graph {
        let dot = analysis.graph.to_dot(&analysis.entries);
        match target {
            None => print!("{dot}"),
            Some(path) => {
                if let Err(e) = fs::write(path, dot) {
                    eprintln!("xtask lint: writing {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote call graph to {path}");
            }
        }
    }
    if let Some(path) = &opts.json {
        let report = baseline::report_json(&analysis.findings);
        if let Err(e) = fs::write(path, report) {
            eprintln!("xtask lint: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote findings report to {path}");
    }
    if let Some(path) = &opts.sarif {
        let report = sarif::report_sarif(&analysis.findings);
        if let Err(e) = fs::write(path, report) {
            eprintln!("xtask lint: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote SARIF report to {path}");
    }
    let baseline_path = root.join(baseline::BASELINE_FILE);
    if opts.update_baseline {
        let text = baseline::generate(&analysis.findings);
        if let Err(e) = fs::write(&baseline_path, text) {
            eprintln!("xtask lint: writing {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!("updated {}", baseline_path.display());
    }
    let accepted = match fs::read_to_string(&baseline_path) {
        Ok(text) => match baseline::parse(&text) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("xtask lint: {e}");
                return ExitCode::FAILURE;
            }
        },
        // No baseline file means an empty baseline: every finding fails.
        Err(_) => Vec::new(),
    };
    let outcome = baseline::apply(&analysis.findings, &accepted);
    if outcome.is_clean() {
        println!(
            "xtask lint: clean — {} functions, {} entry points, {} baselined finding(s), \
             vendored-shim manifest verified",
            analysis.graph.funcs.len(),
            analysis.entries.len(),
            accepted.len(),
        );
        return ExitCode::SUCCESS;
    }
    for f in &outcome.unbaselined {
        println!("{f}");
    }
    for b in &outcome.stale {
        println!(
            "stale-baseline: {}:{}: `{}` no longer fires — delete the entry \
             (or run `cargo run -p xtask -- lint --update-baseline`)",
            b.file, b.line, b.rule
        );
    }
    println!(
        "xtask lint: {} unbaselined finding(s), {} stale baseline entr(y/ies)",
        outcome.unbaselined.len(),
        outcome.stale.len()
    );
    ExitCode::FAILURE
}
